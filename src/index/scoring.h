#ifndef IBSEG_INDEX_SCORING_H_
#define IBSEG_INDEX_SCORING_H_

#include <cstdint>
#include <vector>

#include "index/collection_stats.h"
#include "index/inverted_index.h"
#include "text/term_vector.h"

namespace ibseg {

/// A retrieval hit: a unit of an InvertedIndex and its relatedness score.
struct ScoredUnit {
  uint32_t unit = 0;
  double score = 0.0;
};

/// The probabilistic inverse document frequency of Eq. 9, adjusted for a
/// collection of `collection_size` units of which `df` contain the term:
///   log(|I| - |I^t|) / |I^t|   (as printed in the paper)
/// with 0.5 smoothing on both occurrences of |I^t| and a floor at 0 so that
/// a term contained in (almost) every unit contributes nothing rather than
/// a NaN or a negative score. See DESIGN.md "Known formula notes".
double probabilistic_idf(size_t collection_size, size_t df);

/// Selectable text-comparison function. The paper builds its own Eq. 7-9
/// variant but explicitly allows "one of the many TF/IDF or BM25 variants
/// or language-model based methods" as the segment comparator (Sec. 1/7);
/// all three families are provided.
enum class ScoringFunction {
  kPaperTfIdf,  ///< Eq. 8 weights x Eq. 9 probabilistic IDF (default)
  kBm25,        ///< Okapi BM25 (Robertson et al.)
  kQueryLikelihood,  ///< Jelinek-Mercer smoothed query-likelihood LM
};

/// Parameters of the selectable scoring functions; each function reads
/// only its own knobs.
struct ScoringOptions {
  ScoringFunction function = ScoringFunction::kPaperTfIdf;
  double bm25_k1 = 1.2;   ///< BM25 term-frequency saturation
  double bm25_b = 0.75;   ///< BM25 length-normalization slope
  /// Jelinek-Mercer interpolation weight of the collection model.
  double lm_lambda = 0.7;
};

/// Scores every unit of `index` against the query bag `query`.
/// Default (kPaperTfIdf): the paper's Eq. 9,
///   scr(q, u) = sum_t f_q(t) * w(t, u) * pidf(t)
/// with w the Eq. 7/8 weight stored in the index. kBm25 and
/// kQueryLikelihood evaluate the corresponding classic functions (the LM
/// uses the rank-equivalent sparse form
///   sum_t f_q(t) * log(1 + ((1-l)*tf/len) / (l*ctf/C))
/// so non-matching units keep score 0). Returns the units with positive
/// score, unordered. Term-at-a-time evaluation over the postings lists.
///
/// `global` switches every collection-dependent input — |I|, |I^t|, the NU
/// pivot average, the norm floor, the BM25 length pivot, the LM collection
/// model — from the index's own statistics to the supplied cross-shard
/// aggregate, and re-derives unit norms on the fly from the index's
/// per-unit lexical stats via pre_floor_unit_norm. A document-partitioned
/// shard scored this way produces, for each of its units, exactly the
/// bits a single unpartitioned index holding the full collection would
/// produce (same per-term accumulation order, same arithmetic, same skip
/// rules). nullptr (the default) keeps the classic local-statistics path.
std::vector<ScoredUnit> score_units(const InvertedIndex& index,
                                    const TermVector& query,
                                    const ScoringOptions& options = {},
                                    const ClusterCollectionStats* global =
                                        nullptr);

/// Sorts hits by descending score (ties by ascending unit id for
/// determinism) and truncates to `n`.
void keep_top_n(std::vector<ScoredUnit>& hits, size_t n);

/// Work counters of one scoring call (both paths fill them): how much of
/// the postings data was actually evaluated. The pruned-query bench and
/// the ibseg_pruned_docs_total serving counter read these.
struct PruneStats {
  uint64_t units_scored = 0;  ///< candidate units fully scored
  /// Candidate units rejected by the MaxScore upper-bound test (always 0
  /// on the exhaustive path) — either before their first contribution,
  /// when the matched terms' summed bounds already cannot beat the
  /// running threshold, or mid-accumulation. Compare units_scored across
  /// the two paths for the full savings picture.
  uint64_t units_abandoned = 0;
  uint64_t postings_scored = 0;  ///< per-(term, unit) contributions computed
  uint64_t postings_total = 0;   ///< postings of the admitted query terms
};

/// Exhaustive scoring with work counters (see score_units for semantics).
std::vector<ScoredUnit> score_units_counted(
    const InvertedIndex& index, const TermVector& query,
    const ScoringOptions& options, const ClusterCollectionStats* global,
    PruneStats* stats);

/// MaxScore-pruned replacement for the score → exclude → threshold →
/// select pipeline of IntentionMatcher::match_cluster_terms. Scores
/// `query` against `index`'s sealed flat postings document-at-a-time,
/// skipping candidates whose per-term upper bounds (FlatTermMeta maxima,
/// see flat_postings.h) prove they cannot enter the result:
///
///  * score_threshold <= 0 (top-n mode): returns the top `top_n` units
///    with positive score under (score desc, unit_doc[unit] asc) — the
///    PR-3 tie-order contract — among units whose doc != exclude_doc.
///  * score_threshold > 0 (threshold mode): returns EVERY such unit with
///    score >= score_threshold (top_n is ignored, matching the matcher's
///    keep-all threshold semantics).
///
/// Results are sorted by (score desc, doc asc) and are bit-identical —
/// scores included — to what the exhaustive path selects, because a
/// surviving candidate's score is accumulated over the same terms in the
/// same (TermId-ascending) order with the same arithmetic, and the skip
/// tests use conservative upper bounds (exact fp maxima plus a relative
/// slack covering fp re-association, so a bound failure can only admit
/// extra candidates, never drop a true one). Queries whose per-term
/// bounds are not provably sound (sub-unit tf with the paper function,
/// out-of-range BM25 parameters) are scored exhaustively inside this
/// call — same results, no pruning. `global` selects the sharded
/// (cross-shard statistics) arithmetic exactly as in score_units.
/// tests/differential_test.cc sweeps this equivalence.
std::vector<ScoredUnit> score_units_maxscore(
    const InvertedIndex& index, const TermVector& query,
    const ScoringOptions& options, const ClusterCollectionStats* global,
    const std::vector<uint32_t>& unit_doc, uint32_t exclude_doc,
    size_t top_n, double score_threshold, PruneStats* stats = nullptr);

}  // namespace ibseg

#endif  // IBSEG_INDEX_SCORING_H_
