#ifndef IBSEG_NET_FRAME_H_
#define IBSEG_NET_FRAME_H_

#include <cstddef>
#include <cstdint>
#include <string>
#include <string_view>
#include <vector>

#include "index/intention_matcher.h"
#include "seg/document.h"

namespace ibseg {
namespace net {

/// \file
/// Pure codecs for the ibseg wire protocol, version 1.
///
/// **docs/PROTOCOL.md is the normative specification** — byte-level frame
/// and payload tables, limits, error-code semantics and the versioning
/// policy. This header implements exactly that document; when the two
/// disagree, the document wins and the code is the bug. Everything here is
/// a pure function over byte buffers: no sockets, no I/O, no globals — so
/// the codec is testable (tests/net_frame_test.cc: goldens, every-prefix
/// truncation) and fuzzable (tests/fuzz/fuzz_net_frame.cc) in isolation.
///
/// Frame layout (PROTOCOL.md §2): a 12-byte header
///
///   offset size  field
///   0      4     magic "IBSN" (0x49 0x42 0x53 0x4E)
///   4      1     protocol version (1)
///   5      1     message type (MsgType)
///   6      2     reserved, must be zero
///   8      4     payload length (little-endian; <= kMaxPayloadBytes)
///
/// followed by `payload length` bytes of type-specific payload. All
/// integers little-endian; doubles travel as raw IEEE-754 bits (wire.h).

/// \brief Frame magic: "IBSN" as the first four bytes of every frame.
inline constexpr uint8_t kMagic[4] = {0x49, 0x42, 0x53, 0x4E};

/// \brief Wire protocol version carried in every frame header. Version 1
/// is the only version; see PROTOCOL.md §7 for the compatibility policy.
inline constexpr uint8_t kProtocolVersion = 1;

/// \brief Fixed frame header size in bytes.
inline constexpr size_t kFrameHeaderBytes = 12;

/// \brief Hard upper bound on a frame payload (16 MiB). A header
/// declaring more is malformed — the connection is closed without
/// allocating, the same allocation-bomb discipline the snapshot/WAL
/// readers adopted after the PR-5 fuzzing campaign.
inline constexpr uint32_t kMaxPayloadBytes = 16u * 1024u * 1024u;

/// \brief Maximum number of texts in one ADD_POSTS batch.
inline constexpr uint32_t kMaxBatchPosts = 1024;

/// \brief Maximum result count a RELATED response may declare (sanity
/// bound for client-side decoding; servers never exceed the requested k).
inline constexpr uint32_t kMaxRelatedResults = 1u << 20;

/// \brief Maximum length of a replica id in SUBSCRIBE_WAL / WAL_ACK.
inline constexpr uint32_t kMaxReplicaIdBytes = 256;

/// \brief Maximum file count a SNAPSHOT_LISTING may declare, and the
/// maximum length of one listed (relative) file name.
inline constexpr uint32_t kMaxSnapshotFiles = 1u << 16;
inline constexpr uint32_t kMaxSnapshotNameBytes = 4096;

/// \brief Maximum length of a tenant name in TENANT_OPEN /
/// TENANT_LISTING, and the maximum tenant count a listing may declare.
/// The name bound matches core (TenantRegistry::kMaxNameBytes — asserted
/// equal in net/server.cc).
inline constexpr uint32_t kMaxTenantNameBytes = 128;
inline constexpr uint32_t kMaxTenants = 1u << 16;

/// \brief Message type codes (frame header byte 5). Requests occupy
/// 0x01..0x7F, responses 0x81..0xFF; the split makes a frame's direction
/// recognizable in isolation (PROTOCOL.md §3).
enum class MsgType : uint8_t {
  // Requests (client -> server).
  kPing = 0x01,      ///< liveness + server coordinates; empty payload
  kQuery = 0x02,     ///< top-k related posts for an in-corpus doc id
  kAsk = 0x03,       ///< top-k related posts for an external post text
  kAddPost = 0x04,   ///< ingest one post; acked with its assigned id
  kAddPosts = 0x05,  ///< ingest a batch atomically; acked with all ids
  kSave = 0x06,       ///< persist serving state to the server's state dir
  kMetrics = 0x07,    ///< metrics snapshot (Prometheus text or JSON)
  kDrain = 0x08,      ///< begin graceful drain (admin)
  kRecluster = 0x09,  ///< run one background recluster now (admin)
  kSubscribeWal = 0x0A,   ///< replica pull: next WAL segment past a seq
  kWalAck = 0x0B,         ///< replica reports its applied seq (lag gauges)
  kSnapshotList = 0x0C,   ///< replica bootstrap: list snapshot files
  kSnapshotChunk = 0x0D,  ///< replica bootstrap: read one file range
  kTenantOpen = 0x0E,     ///< bind this connection to a tenant namespace
  kTenantList = 0x0F,     ///< enumerate the server's tenants

  // Responses (server -> client).
  kPong = 0x81,         ///< answers PING
  kRelated = 0x82,      ///< answers QUERY and ASK
  kAdded = 0x84,        ///< answers ADD_POST and ADD_POSTS
  kSaved = 0x86,        ///< answers SAVE
  kMetricsData = 0x87,  ///< answers METRICS
  kDraining = 0x88,     ///< answers DRAIN
  kReclustered = 0x89,  ///< answers RECLUSTER
  kWalSegment = 0x8A,       ///< answers SUBSCRIBE_WAL
  kWalAcked = 0x8B,         ///< answers WAL_ACK
  kSnapshotListing = 0x8C,  ///< answers SNAPSHOT_LIST
  kSnapshotData = 0x8D,     ///< answers SNAPSHOT_CHUNK
  kTenantOpened = 0x8E,     ///< answers TENANT_OPEN
  kTenantListing = 0x8F,    ///< answers TENANT_LIST
  kError = 0xE0,        ///< any request may be answered with an error
};

/// \brief Error codes carried by an ERROR response (PROTOCOL.md §5).
enum class ErrCode : uint8_t {
  kBadRequest = 1,   ///< well-framed but malformed/inconsistent payload
  kUnknownDoc = 2,   ///< QUERY doc id not in the corpus
  kOverloaded = 3,   ///< admission control rejected the request
  kDraining = 4,     ///< server is draining; no new work accepted
  kTimeout = 5,      ///< request expired before a worker picked it up
  kInternal = 6,     ///< server-side failure (e.g. SAVE I/O error)
  kUnsupported = 7,  ///< command not available (e.g. SAVE w/o state dir)
  kSnapshotNeeded = 8,  ///< SUBSCRIBE_WAL: the (seq, generation) cursor is
                        ///< not servable from frames — re-bootstrap from a
                        ///< snapshot (PROTOCOL.md §4.10)
  kUnknownTenant = 9,   ///< TENANT_OPEN: no tenant of that name (the set
                        ///< is fixed at server start; PROTOCOL.md §4.14)
};

/// \brief Decoded frame header (the payload follows separately).
struct FrameHeader {
  uint8_t version = 0;
  MsgType type = MsgType::kPing;
  uint32_t payload_len = 0;
};

/// \brief Outcome of decode_frame_header over a byte prefix.
enum class DecodeStatus {
  kOk,        ///< header decoded; *out is valid
  kNeedMore,  ///< fewer than kFrameHeaderBytes bytes so far — read on
  kMalformed, ///< bad magic/version/reserved/length — close the stream
};

/// \brief Decodes the 12-byte frame header at the front of `data`.
///
/// Validation is strict (PROTOCOL.md §2): magic must match, version must
/// equal kProtocolVersion, the reserved bytes must be zero and the payload
/// length must not exceed kMaxPayloadBytes. Any violation returns
/// kMalformed — after which the stream has lost framing and the only safe
/// recovery is closing the connection. The message *type* byte is NOT
/// validated here (an unknown type is a well-framed frame whose payload
/// can be skipped and answered with ERROR/kBadRequest; see PROTOCOL.md §3).
/// \param data start of the buffered stream
/// \param size bytes available at `data`
/// \param out decoded header (written only on kOk)
DecodeStatus decode_frame_header(const uint8_t* data, size_t size,
                                 FrameHeader* out);

/// \brief Appends a complete frame (header + payload) for `type` to
/// `*out`. The payload must not exceed kMaxPayloadBytes (checked by the
/// callers that build payloads; encode_frame clamps nothing).
void encode_frame(MsgType type, std::string_view payload, std::string* out);

// --- Request payloads (PROTOCOL.md §4). Every decoder returns false on
// any deviation from the documented layout: truncation anywhere, length
// fields inconsistent with the payload size, counts above the documented
// limits, or trailing bytes after the last field.

/// \brief QUERY: top-k related posts for an in-corpus document.
struct QueryRequest {
  DocId doc_id = 0;  ///< reference post id
  uint32_t k = 0;    ///< number of results requested (>= 1)
};

void encode_query(const QueryRequest& req, std::string* payload);
bool decode_query(std::string_view payload, QueryRequest* out);

/// \brief ASK: top-k related posts for an external (non-ingested) post.
struct AskRequest {
  uint32_t k = 0;    ///< number of results requested (>= 1)
  std::string text;  ///< the post text (UTF-8 expected, not enforced)
};

void encode_ask(const AskRequest& req, std::string* payload);
bool decode_ask(std::string_view payload, AskRequest* out);

/// \brief ADD_POST: ingest one post.
struct AddPostRequest {
  std::string text;  ///< the post text
};

void encode_add_post(const AddPostRequest& req, std::string* payload);
bool decode_add_post(std::string_view payload, AddPostRequest* out);

/// \brief ADD_POSTS: ingest a batch of posts atomically (queries observe
/// none or all of the batch — the add_posts publication contract).
struct AddPostsRequest {
  std::vector<std::string> texts;  ///< 1..kMaxBatchPosts post texts
};

void encode_add_posts(const AddPostsRequest& req, std::string* payload);
bool decode_add_posts(std::string_view payload, AddPostsRequest* out);

/// \brief METRICS: request a metrics snapshot.
struct MetricsRequest {
  /// 0 = Prometheus text exposition, 1 = JSON (PROTOCOL.md §4.7).
  uint8_t format = 0;
};

void encode_metrics(const MetricsRequest& req, std::string* payload);
bool decode_metrics(std::string_view payload, MetricsRequest* out);

/// \brief SUBSCRIBE_WAL: a replica pulls the segment of publications past
/// its applied cursor. Pull-based (one request, one response) so it rides
/// the existing strict request/response connection model — a replica polls
/// at its own cadence and a slow replica can never back-pressure the
/// leader's I/O thread.
struct SubscribeWalRequest {
  uint64_t from_seq = 0;            ///< publications already applied
  uint64_t replica_generation = 0;  ///< replica's offline generation
  uint32_t max_frames = 0;          ///< frame cap for this segment
  uint32_t max_bytes = 0;           ///< byte cap (one frame may exceed it)
  std::string replica_id;           ///< stable name for per-replica gauges
};

void encode_subscribe_wal(const SubscribeWalRequest& req,
                          std::string* payload);
bool decode_subscribe_wal(std::string_view payload, SubscribeWalRequest* out);

/// \brief WAL_ACK: a replica reports its durable applied position; the
/// leader updates its per-replica lag gauges from it.
struct WalAckRequest {
  uint64_t acked_seq = 0;  ///< publications applied on the replica
  std::string replica_id;
};

void encode_wal_ack(const WalAckRequest& req, std::string* payload);
bool decode_wal_ack(std::string_view payload, WalAckRequest* out);

/// \brief SNAPSHOT_CHUNK: read max_len bytes at offset of one listed
/// snapshot file (relative name exactly as SNAPSHOT_LISTING returned it).
struct SnapshotChunkRequest {
  std::string name;
  uint64_t offset = 0;
  uint32_t max_len = 0;  ///< 1 .. kMaxPayloadBytes minus framing overhead
};

void encode_snapshot_chunk(const SnapshotChunkRequest& req,
                           std::string* payload);
bool decode_snapshot_chunk(std::string_view payload,
                           SnapshotChunkRequest* out);

/// \brief TENANT_OPEN: bind this connection to a tenant namespace. Every
/// later tenant-scoped request on the connection (QUERY/ASK/ADD_POST/
/// ADD_POSTS/SAVE/RECLUSTER and the replication pulls) routes to the
/// bound tenant's corpus. Connections that never send TENANT_OPEN operate
/// on the implicit "default" tenant — which is how pre-tenant clients
/// keep working byte-identically (PROTOCOL.md §4.14).
struct TenantOpenRequest {
  std::string name;  ///< 1..kMaxTenantNameBytes bytes of [A-Za-z0-9_-]
};

void encode_tenant_open(const TenantOpenRequest& req, std::string* payload);
bool decode_tenant_open(std::string_view payload, TenantOpenRequest* out);

// PING, SAVE, DRAIN, RECLUSTER, SNAPSHOT_LIST and TENANT_LIST carry empty
// payloads: encoding is encode_frame with an empty payload; decoding
// succeeds iff the payload is empty.

// --- Response payloads (PROTOCOL.md §5).

/// \brief PONG: server liveness + serving coordinates.
struct PongResponse {
  uint64_t epoch = 0;     ///< combined publication epoch at response time
  uint64_t num_docs = 0;  ///< corpus size at response time
};

void encode_pong(const PongResponse& resp, std::string* payload);
bool decode_pong(std::string_view payload, PongResponse* out);

/// \brief RELATED: the answer to QUERY and ASK. Scores are transmitted as
/// raw IEEE-754 bits, so the decoded doubles compare bit-identically to
/// the in-process result (the loopback differential test's contract).
struct RelatedResponse {
  uint64_t epoch = 0;     ///< epoch observed under the query's read locks
  uint64_t num_docs = 0;  ///< corpus size at the same moment
  std::vector<ScoredDoc> results;  ///< (doc id, score), rank order
};

void encode_related(const RelatedResponse& resp, std::string* payload);
bool decode_related(std::string_view payload, RelatedResponse* out);

/// \brief ADDED: ids assigned to the ingested post(s), in request order.
struct AddedResponse {
  std::vector<DocId> ids;
};

void encode_added(const AddedResponse& resp, std::string* payload);
bool decode_added(std::string_view payload, AddedResponse* out);

/// \brief METRICS_DATA: the rendered metrics snapshot.
struct MetricsDataResponse {
  std::string body;  ///< Prometheus text or JSON, per the request's format
};

void encode_metrics_data(const MetricsDataResponse& resp,
                         std::string* payload);
bool decode_metrics_data(std::string_view payload, MetricsDataResponse* out);

/// \brief RECLUSTERED: the answer to RECLUSTER, after the offline rebuild
/// has swapped in (the request is synchronous; long corpora mean long
/// waits — admin clients should use a generous timeout).
struct ReclusteredResponse {
  uint64_t generation = 0;   ///< offline generation after the swap
  uint32_t num_clusters = 0; ///< cluster count of the new generation
};

void encode_reclustered(const ReclusteredResponse& resp,
                        std::string* payload);
bool decode_reclustered(std::string_view payload, ReclusteredResponse* out);

/// \brief ERROR: the failure answer to any request.
struct ErrorResponse {
  ErrCode code = ErrCode::kInternal;
  std::string message;  ///< human-readable detail (not for parsing)
};

void encode_error(const ErrorResponse& resp, std::string* payload);
bool decode_error(std::string_view payload, ErrorResponse* out);

/// \brief WAL_SEGMENT: the answer to SUBSCRIBE_WAL. `raw` carries
/// frame_count WAL-framed records back to back — byte-identical to the
/// storage-layer WAL encoding (storage/wal_codec.h), so the replica's
/// parser IS the recovery parser. frame_count == 0 with recluster_after
/// set means "recluster now, then resubscribe"; frame_count == 0 without
/// it means the replica is caught up.
struct WalSegmentResponse {
  uint64_t base_seq = 0;            ///< seq of the first frame in raw
  uint64_t leader_seq = 0;          ///< leader publication count (lag base)
  uint64_t leader_generation = 0;   ///< leader offline generation
  uint64_t segment_generation = 0;  ///< generation the frames belong to
  uint8_t recluster_after = 0;      ///< 1 = recluster after applying
  uint64_t recluster_target = 0;    ///< generation that recluster reaches
  uint32_t frame_count = 0;
  std::string raw;
};

void encode_wal_segment(const WalSegmentResponse& resp, std::string* payload);
bool decode_wal_segment(std::string_view payload, WalSegmentResponse* out);

/// \brief One file in a SNAPSHOT_LISTING: relative name (e.g. "MANIFEST",
/// "shard-0/snapshot.v2"), byte size, and whole-file CRC-32.
struct SnapshotFileEntry {
  std::string name;
  uint64_t size = 0;
  uint32_t crc = 0;
};

/// \brief SNAPSHOT_LISTING: the bootstrap file set. Fetching every listed
/// file (verified against size + crc) yields a directory restore() accepts
/// — a committed save is self-contained, so no WAL files are listed.
struct SnapshotListingResponse {
  uint64_t generation = 0;  ///< offline generation of the listed snapshot
  uint32_t num_shards = 0;
  std::vector<SnapshotFileEntry> files;
};

void encode_snapshot_listing(const SnapshotListingResponse& resp,
                             std::string* payload);
bool decode_snapshot_listing(std::string_view payload,
                             SnapshotListingResponse* out);

/// \brief SNAPSHOT_DATA: one chunk of a listed file. data may be shorter
/// than the requested max_len at EOF; empty data means offset >= size.
struct SnapshotDataResponse {
  uint64_t total_size = 0;  ///< full size of the file being read
  std::string data;
};

void encode_snapshot_data(const SnapshotDataResponse& resp,
                          std::string* payload);
bool decode_snapshot_data(std::string_view payload, SnapshotDataResponse* out);

/// \brief TENANT_OPENED: the answer to TENANT_OPEN — the bound tenant's
/// serving coordinates at bind time (same fields as PONG, observed on the
/// tenant the connection just bound to).
struct TenantOpenedResponse {
  uint64_t epoch = 0;     ///< tenant's combined publication epoch
  uint64_t num_docs = 0;  ///< tenant's corpus size
};

void encode_tenant_opened(const TenantOpenedResponse& resp,
                          std::string* payload);
bool decode_tenant_opened(std::string_view payload,
                          TenantOpenedResponse* out);

/// \brief One tenant in a TENANT_LISTING: name + live corpus size.
struct TenantEntry {
  std::string name;
  uint64_t num_docs = 0;
};

/// \brief TENANT_LISTING: the answer to TENANT_LIST — every tenant the
/// server hosts, in sorted name order (the set is fixed at server start).
struct TenantListingResponse {
  std::vector<TenantEntry> tenants;
};

void encode_tenant_listing(const TenantListingResponse& resp,
                           std::string* payload);
bool decode_tenant_listing(std::string_view payload,
                           TenantListingResponse* out);

// SAVED, DRAINING and WAL_ACKED carry empty payloads.

/// \brief Stable lowercase command name for a request type ("query",
/// "add_post", ...) — the `cmd` label of ibseg_net_requests_total.
/// Unknown types render as "unknown".
const char* msg_type_name(MsgType type);

}  // namespace net
}  // namespace ibseg

#endif  // IBSEG_NET_FRAME_H_
