#ifndef IBSEG_NET_CLIENT_H_
#define IBSEG_NET_CLIENT_H_

#include <cstdint>
#include <memory>
#include <string>
#include <string_view>

#include "net/frame.h"

namespace ibseg {
namespace net {

/// \brief Outcome of one request/response exchange. ok() is true only for
/// the expected success response type; a server-side ERROR lands in
/// `error` with ok() false, and transport failures (connect/write/read/
/// decode) set `transport_error`.
struct CallResult {
  bool transport_ok = false;   ///< frame went out and a valid frame came back
  MsgType response_type = MsgType::kError;
  ErrorResponse error;         ///< filled when response_type == kError
  std::string transport_error; ///< human-readable transport failure detail

  /// \brief True when the exchange succeeded and the server did not
  /// answer with ERROR.
  bool ok() const {
    return transport_ok && response_type != MsgType::kError;
  }
};

/// \brief Minimal blocking client for the docs/PROTOCOL.md wire protocol:
/// one TCP connection, one outstanding request at a time (request, then
/// read exactly one response frame). This is the reference client the
/// loopback tests, the CLI's --connect mode and the operational tooling
/// use; the load generator (bench/server_qps) deliberately does NOT use
/// it — it hand-rolls its frames from the protocol document to keep the
/// document honest.
///
/// Not thread-safe: one Client per thread.
class Client {
 public:
  /// \brief Connects to host:port with a connect/IO deadline.
  /// \param host IPv4 address or "localhost"
  /// \param port TCP port
  /// \param timeout_sec applied to connect and to every send/recv
  /// \return nullptr on connection failure
  static std::unique_ptr<Client> connect(const std::string& host,
                                         uint16_t port,
                                         double timeout_sec = 10.0);

  ~Client();
  Client(const Client&) = delete;
  Client& operator=(const Client&) = delete;

  /// \brief Low-level exchange: send one `type` frame with `payload`,
  /// read one response frame into *resp_type/*resp_payload. Exposed for
  /// tests that need to send unusual (e.g. deliberately malformed-payload)
  /// requests.
  CallResult call(MsgType type, std::string_view payload, MsgType* resp_type,
                  std::string* resp_payload);

  // Typed helpers — each sends the request and decodes the documented
  // success response; a server ERROR is reported via the CallResult.

  CallResult ping(PongResponse* out);
  CallResult query(DocId doc_id, uint32_t k, RelatedResponse* out);
  CallResult ask(const std::string& text, uint32_t k, RelatedResponse* out);
  CallResult add_post(const std::string& text, DocId* id_out);
  CallResult add_posts(const std::vector<std::string>& texts,
                       std::vector<DocId>* ids_out);
  CallResult save();
  /// \param format 0 = Prometheus text, 1 = JSON
  CallResult metrics(uint8_t format, std::string* body_out);
  CallResult drain();
  /// Synchronous: returns after the new generation is serving. Long
  /// corpora rebuild for a while — pass a generous connect timeout.
  CallResult recluster(ReclusteredResponse* out);

  // Tenant helpers (PROTOCOL.md §4.14–§4.15). The binding is
  // connection-scoped: after a successful tenant_open every subsequent
  // request on this connection operates on that tenant's corpus.

  /// Binds this connection to `name`'s corpus. An unknown name is
  /// reported as an UNKNOWN_TENANT server error via the CallResult.
  CallResult tenant_open(const std::string& name, TenantOpenedResponse* out);
  /// Lists every tenant the server hosts with its corpus size.
  CallResult tenant_list(TenantListingResponse* out);

  // Replication helpers (PROTOCOL.md §4.10–§4.13) — used by
  // replication/replica.h; exposed here so tests and tooling can drive
  // the replication protocol directly.

  /// Pulls the next WAL segment past the follower's applied cursor. A
  /// SNAPSHOT_NEEDED server error is reported via the CallResult's error.
  CallResult subscribe_wal(const SubscribeWalRequest& req,
                           WalSegmentResponse* out);
  CallResult wal_ack(uint64_t acked_seq, const std::string& replica_id);
  CallResult snapshot_list(SnapshotListingResponse* out);
  CallResult snapshot_chunk(const SnapshotChunkRequest& req,
                            SnapshotDataResponse* out);

 private:
  Client(int fd, double timeout_sec);

  bool send_all(std::string_view bytes, std::string* error);
  bool recv_frame(MsgType* type, std::string* payload, std::string* error);

  int fd_;
  double timeout_sec_;
  std::string buffer_;  ///< bytes read beyond the current frame
};

}  // namespace net
}  // namespace ibseg

#endif  // IBSEG_NET_CLIENT_H_
