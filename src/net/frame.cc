#include "net/frame.h"

#include <cstring>

#include "net/wire.h"

namespace ibseg {
namespace net {

DecodeStatus decode_frame_header(const uint8_t* data, size_t size,
                                 FrameHeader* out) {
  if (size < kFrameHeaderBytes) return DecodeStatus::kNeedMore;
  if (std::memcmp(data, kMagic, sizeof(kMagic)) != 0) {
    return DecodeStatus::kMalformed;
  }
  WireReader r(std::string_view(reinterpret_cast<const char*>(data) + 4,
                                kFrameHeaderBytes - 4));
  uint8_t version = r.read_u8();
  uint8_t type = r.read_u8();
  uint16_t reserved = r.read_u16();
  uint32_t payload_len = r.read_u32();
  if (version != kProtocolVersion || reserved != 0 ||
      payload_len > kMaxPayloadBytes) {
    return DecodeStatus::kMalformed;
  }
  out->version = version;
  out->type = static_cast<MsgType>(type);
  out->payload_len = payload_len;
  return DecodeStatus::kOk;
}

void encode_frame(MsgType type, std::string_view payload, std::string* out) {
  out->reserve(out->size() + kFrameHeaderBytes + payload.size());
  WireWriter w(out);
  w.write_bytes(std::string_view(reinterpret_cast<const char*>(kMagic),
                                 sizeof(kMagic)));
  w.write_u8(kProtocolVersion);
  w.write_u8(static_cast<uint8_t>(type));
  w.write_u16(0);  // reserved
  w.write_u32(static_cast<uint32_t>(payload.size()));
  w.write_bytes(payload);
}

void encode_query(const QueryRequest& req, std::string* payload) {
  WireWriter w(payload);
  w.write_u32(req.doc_id);
  w.write_u32(req.k);
}

bool decode_query(std::string_view payload, QueryRequest* out) {
  WireReader r(payload);
  out->doc_id = r.read_u32();
  out->k = r.read_u32();
  return r.exhausted() && out->k >= 1;
}

void encode_ask(const AskRequest& req, std::string* payload) {
  WireWriter w(payload);
  w.write_u32(req.k);
  w.write_u32(static_cast<uint32_t>(req.text.size()));
  w.write_bytes(req.text);
}

bool decode_ask(std::string_view payload, AskRequest* out) {
  WireReader r(payload);
  out->k = r.read_u32();
  uint32_t len = r.read_u32();
  // The explicit length must account for every remaining byte: a shorter
  // value would leave trailing garbage, a longer one truncates.
  if (!r.ok() || len != r.remaining()) return false;
  out->text.assign(r.read_bytes(len));
  return r.exhausted() && out->k >= 1;
}

void encode_add_post(const AddPostRequest& req, std::string* payload) {
  WireWriter w(payload);
  w.write_u32(static_cast<uint32_t>(req.text.size()));
  w.write_bytes(req.text);
}

bool decode_add_post(std::string_view payload, AddPostRequest* out) {
  WireReader r(payload);
  uint32_t len = r.read_u32();
  if (!r.ok() || len != r.remaining()) return false;
  out->text.assign(r.read_bytes(len));
  return r.exhausted();
}

void encode_add_posts(const AddPostsRequest& req, std::string* payload) {
  WireWriter w(payload);
  w.write_u32(static_cast<uint32_t>(req.texts.size()));
  for (const std::string& text : req.texts) {
    w.write_u32(static_cast<uint32_t>(text.size()));
    w.write_bytes(text);
  }
}

bool decode_add_posts(std::string_view payload, AddPostsRequest* out) {
  WireReader r(payload);
  uint32_t count = r.read_u32();
  if (!r.ok() || count == 0 || count > kMaxBatchPosts) return false;
  out->texts.clear();
  out->texts.reserve(count);
  for (uint32_t i = 0; i < count; ++i) {
    uint32_t len = r.read_u32();
    // Each element's length is bounded by what is actually left, so a
    // hostile length field can never drive an allocation past the frame.
    if (!r.ok() || len > r.remaining()) return false;
    out->texts.emplace_back(r.read_bytes(len));
  }
  return r.exhausted();
}

void encode_metrics(const MetricsRequest& req, std::string* payload) {
  WireWriter w(payload);
  w.write_u8(req.format);
}

bool decode_metrics(std::string_view payload, MetricsRequest* out) {
  WireReader r(payload);
  out->format = r.read_u8();
  return r.exhausted() && out->format <= 1;
}

void encode_pong(const PongResponse& resp, std::string* payload) {
  WireWriter w(payload);
  w.write_u64(resp.epoch);
  w.write_u64(resp.num_docs);
}

bool decode_pong(std::string_view payload, PongResponse* out) {
  WireReader r(payload);
  out->epoch = r.read_u64();
  out->num_docs = r.read_u64();
  return r.exhausted();
}

void encode_related(const RelatedResponse& resp, std::string* payload) {
  WireWriter w(payload);
  w.write_u64(resp.epoch);
  w.write_u64(resp.num_docs);
  w.write_u32(static_cast<uint32_t>(resp.results.size()));
  for (const ScoredDoc& sd : resp.results) {
    w.write_u32(sd.doc);
    w.write_f64(sd.score);
  }
}

bool decode_related(std::string_view payload, RelatedResponse* out) {
  WireReader r(payload);
  out->epoch = r.read_u64();
  out->num_docs = r.read_u64();
  uint32_t count = r.read_u32();
  if (!r.ok() || count > kMaxRelatedResults) return false;
  // 12 bytes per element; checking against the remaining payload before
  // reserving keeps a hostile count from allocating gigabytes.
  if (static_cast<uint64_t>(count) * 12 != r.remaining()) return false;
  out->results.clear();
  out->results.reserve(count);
  for (uint32_t i = 0; i < count; ++i) {
    ScoredDoc sd;
    sd.doc = r.read_u32();
    sd.score = r.read_f64();
    out->results.push_back(sd);
  }
  return r.exhausted();
}

void encode_added(const AddedResponse& resp, std::string* payload) {
  WireWriter w(payload);
  w.write_u32(static_cast<uint32_t>(resp.ids.size()));
  for (DocId id : resp.ids) w.write_u32(id);
}

bool decode_added(std::string_view payload, AddedResponse* out) {
  WireReader r(payload);
  uint32_t count = r.read_u32();
  if (!r.ok() || static_cast<uint64_t>(count) * 4 != r.remaining()) {
    return false;
  }
  out->ids.clear();
  out->ids.reserve(count);
  for (uint32_t i = 0; i < count; ++i) out->ids.push_back(r.read_u32());
  return r.exhausted();
}

void encode_metrics_data(const MetricsDataResponse& resp,
                         std::string* payload) {
  WireWriter w(payload);
  w.write_u32(static_cast<uint32_t>(resp.body.size()));
  w.write_bytes(resp.body);
}

bool decode_metrics_data(std::string_view payload, MetricsDataResponse* out) {
  WireReader r(payload);
  uint32_t len = r.read_u32();
  if (!r.ok() || len != r.remaining()) return false;
  out->body.assign(r.read_bytes(len));
  return r.exhausted();
}

void encode_reclustered(const ReclusteredResponse& resp,
                        std::string* payload) {
  WireWriter w(payload);
  w.write_u64(resp.generation);
  w.write_u32(resp.num_clusters);
}

bool decode_reclustered(std::string_view payload, ReclusteredResponse* out) {
  WireReader r(payload);
  out->generation = r.read_u64();
  out->num_clusters = r.read_u32();
  return r.exhausted();
}

void encode_error(const ErrorResponse& resp, std::string* payload) {
  WireWriter w(payload);
  w.write_u8(static_cast<uint8_t>(resp.code));
  w.write_u32(static_cast<uint32_t>(resp.message.size()));
  w.write_bytes(resp.message);
}

bool decode_error(std::string_view payload, ErrorResponse* out) {
  WireReader r(payload);
  uint8_t code = r.read_u8();
  uint32_t len = r.read_u32();
  if (!r.ok() || len != r.remaining()) return false;
  out->code = static_cast<ErrCode>(code);
  out->message.assign(r.read_bytes(len));
  return r.exhausted();
}

void encode_subscribe_wal(const SubscribeWalRequest& req,
                          std::string* payload) {
  WireWriter w(payload);
  w.write_u64(req.from_seq);
  w.write_u64(req.replica_generation);
  w.write_u32(req.max_frames);
  w.write_u32(req.max_bytes);
  w.write_u32(static_cast<uint32_t>(req.replica_id.size()));
  w.write_bytes(req.replica_id);
}

bool decode_subscribe_wal(std::string_view payload, SubscribeWalRequest* out) {
  WireReader r(payload);
  out->from_seq = r.read_u64();
  out->replica_generation = r.read_u64();
  out->max_frames = r.read_u32();
  out->max_bytes = r.read_u32();
  uint32_t len = r.read_u32();
  if (!r.ok() || len > kMaxReplicaIdBytes || len != r.remaining()) {
    return false;
  }
  out->replica_id.assign(r.read_bytes(len));
  return r.exhausted();
}

void encode_wal_ack(const WalAckRequest& req, std::string* payload) {
  WireWriter w(payload);
  w.write_u64(req.acked_seq);
  w.write_u32(static_cast<uint32_t>(req.replica_id.size()));
  w.write_bytes(req.replica_id);
}

bool decode_wal_ack(std::string_view payload, WalAckRequest* out) {
  WireReader r(payload);
  out->acked_seq = r.read_u64();
  uint32_t len = r.read_u32();
  if (!r.ok() || len > kMaxReplicaIdBytes || len != r.remaining()) {
    return false;
  }
  out->replica_id.assign(r.read_bytes(len));
  return r.exhausted();
}

void encode_snapshot_chunk(const SnapshotChunkRequest& req,
                           std::string* payload) {
  WireWriter w(payload);
  w.write_u32(static_cast<uint32_t>(req.name.size()));
  w.write_bytes(req.name);
  w.write_u64(req.offset);
  w.write_u32(req.max_len);
}

bool decode_snapshot_chunk(std::string_view payload,
                           SnapshotChunkRequest* out) {
  WireReader r(payload);
  uint32_t name_len = r.read_u32();
  if (!r.ok() || name_len > kMaxSnapshotNameBytes ||
      name_len > r.remaining()) {
    return false;
  }
  out->name.assign(r.read_bytes(name_len));
  out->offset = r.read_u64();
  out->max_len = r.read_u32();
  return r.exhausted() && out->max_len >= 1;
}

void encode_wal_segment(const WalSegmentResponse& resp, std::string* payload) {
  WireWriter w(payload);
  w.write_u64(resp.base_seq);
  w.write_u64(resp.leader_seq);
  w.write_u64(resp.leader_generation);
  w.write_u64(resp.segment_generation);
  w.write_u8(resp.recluster_after);
  w.write_u64(resp.recluster_target);
  w.write_u32(resp.frame_count);
  w.write_u32(static_cast<uint32_t>(resp.raw.size()));
  w.write_bytes(resp.raw);
}

bool decode_wal_segment(std::string_view payload, WalSegmentResponse* out) {
  WireReader r(payload);
  out->base_seq = r.read_u64();
  out->leader_seq = r.read_u64();
  out->leader_generation = r.read_u64();
  out->segment_generation = r.read_u64();
  uint8_t recluster_after = r.read_u8();
  out->recluster_target = r.read_u64();
  out->frame_count = r.read_u32();
  uint32_t raw_len = r.read_u32();
  if (!r.ok() || recluster_after > 1 || raw_len != r.remaining()) {
    return false;
  }
  // The thinnest possible WAL frame is 8 header bytes + a 4-byte id, so a
  // frame_count the raw bytes cannot possibly hold is rejected before the
  // caller ever scans them (the scan itself re-validates every frame).
  if (static_cast<uint64_t>(out->frame_count) * 12 > raw_len) return false;
  if (out->frame_count == 0 && raw_len != 0) return false;
  out->recluster_after = recluster_after;
  out->raw.assign(r.read_bytes(raw_len));
  return r.exhausted();
}

void encode_snapshot_listing(const SnapshotListingResponse& resp,
                             std::string* payload) {
  WireWriter w(payload);
  w.write_u64(resp.generation);
  w.write_u32(resp.num_shards);
  w.write_u32(static_cast<uint32_t>(resp.files.size()));
  for (const SnapshotFileEntry& f : resp.files) {
    w.write_u32(static_cast<uint32_t>(f.name.size()));
    w.write_bytes(f.name);
    w.write_u64(f.size);
    w.write_u32(f.crc);
  }
}

bool decode_snapshot_listing(std::string_view payload,
                             SnapshotListingResponse* out) {
  WireReader r(payload);
  out->generation = r.read_u64();
  out->num_shards = r.read_u32();
  uint32_t count = r.read_u32();
  if (!r.ok() || count > kMaxSnapshotFiles) return false;
  out->files.clear();
  out->files.reserve(count);
  for (uint32_t i = 0; i < count; ++i) {
    SnapshotFileEntry f;
    uint32_t name_len = r.read_u32();
    // Bounded by what is actually left, so a hostile length can never
    // drive an allocation past the frame.
    if (!r.ok() || name_len > kMaxSnapshotNameBytes ||
        name_len > r.remaining()) {
      return false;
    }
    f.name.assign(r.read_bytes(name_len));
    f.size = r.read_u64();
    f.crc = r.read_u32();
    if (!r.ok()) return false;
    out->files.push_back(std::move(f));
  }
  return r.exhausted();
}

void encode_snapshot_data(const SnapshotDataResponse& resp,
                          std::string* payload) {
  WireWriter w(payload);
  w.write_u64(resp.total_size);
  w.write_u32(static_cast<uint32_t>(resp.data.size()));
  w.write_bytes(resp.data);
}

bool decode_snapshot_data(std::string_view payload,
                          SnapshotDataResponse* out) {
  WireReader r(payload);
  out->total_size = r.read_u64();
  uint32_t len = r.read_u32();
  if (!r.ok() || len != r.remaining()) return false;
  out->data.assign(r.read_bytes(len));
  return r.exhausted();
}

void encode_tenant_open(const TenantOpenRequest& req, std::string* payload) {
  WireWriter w(payload);
  w.write_u32(static_cast<uint32_t>(req.name.size()));
  w.write_bytes(req.name);
}

bool decode_tenant_open(std::string_view payload, TenantOpenRequest* out) {
  WireReader r(payload);
  uint32_t len = r.read_u32();
  if (!r.ok() || len == 0 || len > kMaxTenantNameBytes ||
      len != r.remaining()) {
    return false;
  }
  out->name.assign(r.read_bytes(len));
  return r.exhausted();
}

void encode_tenant_opened(const TenantOpenedResponse& resp,
                          std::string* payload) {
  WireWriter w(payload);
  w.write_u64(resp.epoch);
  w.write_u64(resp.num_docs);
}

bool decode_tenant_opened(std::string_view payload,
                          TenantOpenedResponse* out) {
  WireReader r(payload);
  out->epoch = r.read_u64();
  out->num_docs = r.read_u64();
  return r.exhausted();
}

void encode_tenant_listing(const TenantListingResponse& resp,
                           std::string* payload) {
  WireWriter w(payload);
  w.write_u32(static_cast<uint32_t>(resp.tenants.size()));
  for (const TenantEntry& t : resp.tenants) {
    w.write_u32(static_cast<uint32_t>(t.name.size()));
    w.write_bytes(t.name);
    w.write_u64(t.num_docs);
  }
}

bool decode_tenant_listing(std::string_view payload,
                           TenantListingResponse* out) {
  WireReader r(payload);
  uint32_t count = r.read_u32();
  if (!r.ok() || count == 0 || count > kMaxTenants) return false;
  out->tenants.clear();
  out->tenants.reserve(count);
  for (uint32_t i = 0; i < count; ++i) {
    TenantEntry t;
    uint32_t name_len = r.read_u32();
    // Bounded by what is actually left, so a hostile length can never
    // drive an allocation past the frame.
    if (!r.ok() || name_len == 0 || name_len > kMaxTenantNameBytes ||
        name_len > r.remaining()) {
      return false;
    }
    t.name.assign(r.read_bytes(name_len));
    t.num_docs = r.read_u64();
    if (!r.ok()) return false;
    out->tenants.push_back(std::move(t));
  }
  return r.exhausted();
}

const char* msg_type_name(MsgType type) {
  switch (type) {
    case MsgType::kPing: return "ping";
    case MsgType::kQuery: return "query";
    case MsgType::kAsk: return "ask";
    case MsgType::kAddPost: return "add_post";
    case MsgType::kAddPosts: return "add_posts";
    case MsgType::kSave: return "save";
    case MsgType::kMetrics: return "metrics";
    case MsgType::kDrain: return "drain";
    case MsgType::kRecluster: return "recluster";
    case MsgType::kSubscribeWal: return "subscribe_wal";
    case MsgType::kWalAck: return "wal_ack";
    case MsgType::kSnapshotList: return "snapshot_list";
    case MsgType::kSnapshotChunk: return "snapshot_chunk";
    case MsgType::kTenantOpen: return "tenant_open";
    case MsgType::kTenantList: return "tenant_list";
    case MsgType::kPong: return "pong";
    case MsgType::kRelated: return "related";
    case MsgType::kAdded: return "added";
    case MsgType::kSaved: return "saved";
    case MsgType::kMetricsData: return "metrics_data";
    case MsgType::kDraining: return "draining";
    case MsgType::kReclustered: return "reclustered";
    case MsgType::kWalSegment: return "wal_segment";
    case MsgType::kWalAcked: return "wal_acked";
    case MsgType::kSnapshotListing: return "snapshot_listing";
    case MsgType::kSnapshotData: return "snapshot_data";
    case MsgType::kTenantOpened: return "tenant_opened";
    case MsgType::kTenantListing: return "tenant_listing";
    case MsgType::kError: return "error";
  }
  return "unknown";
}

}  // namespace net
}  // namespace ibseg
