#include "net/frame.h"

#include <cstring>

#include "net/wire.h"

namespace ibseg {
namespace net {

DecodeStatus decode_frame_header(const uint8_t* data, size_t size,
                                 FrameHeader* out) {
  if (size < kFrameHeaderBytes) return DecodeStatus::kNeedMore;
  if (std::memcmp(data, kMagic, sizeof(kMagic)) != 0) {
    return DecodeStatus::kMalformed;
  }
  WireReader r(std::string_view(reinterpret_cast<const char*>(data) + 4,
                                kFrameHeaderBytes - 4));
  uint8_t version = r.read_u8();
  uint8_t type = r.read_u8();
  uint16_t reserved = r.read_u16();
  uint32_t payload_len = r.read_u32();
  if (version != kProtocolVersion || reserved != 0 ||
      payload_len > kMaxPayloadBytes) {
    return DecodeStatus::kMalformed;
  }
  out->version = version;
  out->type = static_cast<MsgType>(type);
  out->payload_len = payload_len;
  return DecodeStatus::kOk;
}

void encode_frame(MsgType type, std::string_view payload, std::string* out) {
  out->reserve(out->size() + kFrameHeaderBytes + payload.size());
  WireWriter w(out);
  w.write_bytes(std::string_view(reinterpret_cast<const char*>(kMagic),
                                 sizeof(kMagic)));
  w.write_u8(kProtocolVersion);
  w.write_u8(static_cast<uint8_t>(type));
  w.write_u16(0);  // reserved
  w.write_u32(static_cast<uint32_t>(payload.size()));
  w.write_bytes(payload);
}

void encode_query(const QueryRequest& req, std::string* payload) {
  WireWriter w(payload);
  w.write_u32(req.doc_id);
  w.write_u32(req.k);
}

bool decode_query(std::string_view payload, QueryRequest* out) {
  WireReader r(payload);
  out->doc_id = r.read_u32();
  out->k = r.read_u32();
  return r.exhausted() && out->k >= 1;
}

void encode_ask(const AskRequest& req, std::string* payload) {
  WireWriter w(payload);
  w.write_u32(req.k);
  w.write_u32(static_cast<uint32_t>(req.text.size()));
  w.write_bytes(req.text);
}

bool decode_ask(std::string_view payload, AskRequest* out) {
  WireReader r(payload);
  out->k = r.read_u32();
  uint32_t len = r.read_u32();
  // The explicit length must account for every remaining byte: a shorter
  // value would leave trailing garbage, a longer one truncates.
  if (!r.ok() || len != r.remaining()) return false;
  out->text.assign(r.read_bytes(len));
  return r.exhausted() && out->k >= 1;
}

void encode_add_post(const AddPostRequest& req, std::string* payload) {
  WireWriter w(payload);
  w.write_u32(static_cast<uint32_t>(req.text.size()));
  w.write_bytes(req.text);
}

bool decode_add_post(std::string_view payload, AddPostRequest* out) {
  WireReader r(payload);
  uint32_t len = r.read_u32();
  if (!r.ok() || len != r.remaining()) return false;
  out->text.assign(r.read_bytes(len));
  return r.exhausted();
}

void encode_add_posts(const AddPostsRequest& req, std::string* payload) {
  WireWriter w(payload);
  w.write_u32(static_cast<uint32_t>(req.texts.size()));
  for (const std::string& text : req.texts) {
    w.write_u32(static_cast<uint32_t>(text.size()));
    w.write_bytes(text);
  }
}

bool decode_add_posts(std::string_view payload, AddPostsRequest* out) {
  WireReader r(payload);
  uint32_t count = r.read_u32();
  if (!r.ok() || count == 0 || count > kMaxBatchPosts) return false;
  out->texts.clear();
  out->texts.reserve(count);
  for (uint32_t i = 0; i < count; ++i) {
    uint32_t len = r.read_u32();
    // Each element's length is bounded by what is actually left, so a
    // hostile length field can never drive an allocation past the frame.
    if (!r.ok() || len > r.remaining()) return false;
    out->texts.emplace_back(r.read_bytes(len));
  }
  return r.exhausted();
}

void encode_metrics(const MetricsRequest& req, std::string* payload) {
  WireWriter w(payload);
  w.write_u8(req.format);
}

bool decode_metrics(std::string_view payload, MetricsRequest* out) {
  WireReader r(payload);
  out->format = r.read_u8();
  return r.exhausted() && out->format <= 1;
}

void encode_pong(const PongResponse& resp, std::string* payload) {
  WireWriter w(payload);
  w.write_u64(resp.epoch);
  w.write_u64(resp.num_docs);
}

bool decode_pong(std::string_view payload, PongResponse* out) {
  WireReader r(payload);
  out->epoch = r.read_u64();
  out->num_docs = r.read_u64();
  return r.exhausted();
}

void encode_related(const RelatedResponse& resp, std::string* payload) {
  WireWriter w(payload);
  w.write_u64(resp.epoch);
  w.write_u64(resp.num_docs);
  w.write_u32(static_cast<uint32_t>(resp.results.size()));
  for (const ScoredDoc& sd : resp.results) {
    w.write_u32(sd.doc);
    w.write_f64(sd.score);
  }
}

bool decode_related(std::string_view payload, RelatedResponse* out) {
  WireReader r(payload);
  out->epoch = r.read_u64();
  out->num_docs = r.read_u64();
  uint32_t count = r.read_u32();
  if (!r.ok() || count > kMaxRelatedResults) return false;
  // 12 bytes per element; checking against the remaining payload before
  // reserving keeps a hostile count from allocating gigabytes.
  if (static_cast<uint64_t>(count) * 12 != r.remaining()) return false;
  out->results.clear();
  out->results.reserve(count);
  for (uint32_t i = 0; i < count; ++i) {
    ScoredDoc sd;
    sd.doc = r.read_u32();
    sd.score = r.read_f64();
    out->results.push_back(sd);
  }
  return r.exhausted();
}

void encode_added(const AddedResponse& resp, std::string* payload) {
  WireWriter w(payload);
  w.write_u32(static_cast<uint32_t>(resp.ids.size()));
  for (DocId id : resp.ids) w.write_u32(id);
}

bool decode_added(std::string_view payload, AddedResponse* out) {
  WireReader r(payload);
  uint32_t count = r.read_u32();
  if (!r.ok() || static_cast<uint64_t>(count) * 4 != r.remaining()) {
    return false;
  }
  out->ids.clear();
  out->ids.reserve(count);
  for (uint32_t i = 0; i < count; ++i) out->ids.push_back(r.read_u32());
  return r.exhausted();
}

void encode_metrics_data(const MetricsDataResponse& resp,
                         std::string* payload) {
  WireWriter w(payload);
  w.write_u32(static_cast<uint32_t>(resp.body.size()));
  w.write_bytes(resp.body);
}

bool decode_metrics_data(std::string_view payload, MetricsDataResponse* out) {
  WireReader r(payload);
  uint32_t len = r.read_u32();
  if (!r.ok() || len != r.remaining()) return false;
  out->body.assign(r.read_bytes(len));
  return r.exhausted();
}

void encode_reclustered(const ReclusteredResponse& resp,
                        std::string* payload) {
  WireWriter w(payload);
  w.write_u64(resp.generation);
  w.write_u32(resp.num_clusters);
}

bool decode_reclustered(std::string_view payload, ReclusteredResponse* out) {
  WireReader r(payload);
  out->generation = r.read_u64();
  out->num_clusters = r.read_u32();
  return r.exhausted();
}

void encode_error(const ErrorResponse& resp, std::string* payload) {
  WireWriter w(payload);
  w.write_u8(static_cast<uint8_t>(resp.code));
  w.write_u32(static_cast<uint32_t>(resp.message.size()));
  w.write_bytes(resp.message);
}

bool decode_error(std::string_view payload, ErrorResponse* out) {
  WireReader r(payload);
  uint8_t code = r.read_u8();
  uint32_t len = r.read_u32();
  if (!r.ok() || len != r.remaining()) return false;
  out->code = static_cast<ErrCode>(code);
  out->message.assign(r.read_bytes(len));
  return r.exhausted();
}

const char* msg_type_name(MsgType type) {
  switch (type) {
    case MsgType::kPing: return "ping";
    case MsgType::kQuery: return "query";
    case MsgType::kAsk: return "ask";
    case MsgType::kAddPost: return "add_post";
    case MsgType::kAddPosts: return "add_posts";
    case MsgType::kSave: return "save";
    case MsgType::kMetrics: return "metrics";
    case MsgType::kDrain: return "drain";
    case MsgType::kRecluster: return "recluster";
    case MsgType::kPong: return "pong";
    case MsgType::kRelated: return "related";
    case MsgType::kAdded: return "added";
    case MsgType::kSaved: return "saved";
    case MsgType::kMetricsData: return "metrics_data";
    case MsgType::kDraining: return "draining";
    case MsgType::kReclustered: return "reclustered";
    case MsgType::kError: return "error";
  }
  return "unknown";
}

}  // namespace net
}  // namespace ibseg
