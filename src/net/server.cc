#include "net/server.h"

#include <arpa/inet.h>
#include <fcntl.h>
#include <netinet/in.h>
#include <netinet/tcp.h>
#include <poll.h>
#include <sys/socket.h>
#include <unistd.h>

#include <algorithm>
#include <cerrno>
#include <chrono>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <fstream>
#include <optional>
#include <utility>

#include "net/client.h"
#include "seg/document.h"
#include "storage/format_util.h"
#include "storage/shard_manifest.h"

namespace ibseg {
namespace net {

namespace {

/// During drain, a connection whose response bytes the peer refuses to
/// read is force-closed after this long — a dead client must not be able
/// to hold the whole process open (docs/OPERATIONS.md §4).
constexpr double kDrainFlushTimeoutSec = 5.0;

/// poll(2) tick; bounds how late idle/drain timeouts can fire.
constexpr int kPollTimeoutMs = 100;

bool set_nonblocking(int fd) {
  int flags = ::fcntl(fd, F_GETFL, 0);
  return flags >= 0 && ::fcntl(fd, F_SETFL, flags | O_NONBLOCK) == 0;
}

/// External ASK posts get an id far above any real corpus id; the id only
/// labels the transient Document, nothing is ingested (same convention as
/// ibseg_cli's ask command).
constexpr DocId kExternalQueryId = 1u << 30;

/// The exact file set a committed save leaves behind (and bootstrap must
/// fetch): the manifest plus one generation-qualified snapshot per shard.
/// Re-derived from the manifest on every SNAPSHOT_LIST/SNAPSHOT_CHUNK, so
/// chunk requests can never name a path outside the state directory.
std::vector<std::string> snapshot_file_names(const ShardManifest& m) {
  std::vector<std::string> names;
  names.push_back("MANIFEST");
  for (uint32_t s = 0; s < m.num_shards; ++s) {
    std::string name = "shard-" + std::to_string(s) + "/snapshot";
    if (m.generation != 0) name += ".g" + std::to_string(m.generation);
    name += ".v2";
    names.push_back(std::move(name));
  }
  return names;
}

}  // namespace

/// One client connection. The I/O thread owns the input side (buffer,
/// parsing, lifecycle); the output side (out/out_offset/closing) is
/// mutex-guarded because workers append response bytes concurrently.
struct Server::Connection {
  explicit Connection(int fd_in) : fd(fd_in) {}

  int fd;
  std::string input;  ///< buffered unparsed request bytes (I/O thread only)
  /// Tenant this connection is bound to (TENANT_OPEN; PROTOCOL.md §4.14).
  /// Written and read only on the I/O thread — dispatch snapshots the
  /// resolved backend into the Work, so workers never look at this.
  std::string tenant = TenantRegistry::kDefaultTenant;
  std::atomic<bool> in_flight{false};  ///< one admitted request outstanding
  std::atomic<bool> closed{false};

  std::mutex out_mu;
  std::string out;        ///< encoded, not-yet-written response bytes
  size_t out_offset = 0;  ///< bytes of `out` already written
  bool closing = false;   ///< close once `out` fully flushes

  obs::Clock::time_point last_activity = obs::Clock::now();

  size_t pending_output() {
    std::lock_guard<std::mutex> lock(out_mu);
    return out.size() - out_offset;
  }
};

/// One admitted request travelling from the I/O thread to a worker. The
/// tenant routing (backend + state dir) is resolved at dispatch time on
/// the I/O thread, so workers never read mutable connection state.
struct Server::Work {
  std::shared_ptr<Connection> conn;
  MsgType type = MsgType::kPing;
  std::string payload;
  obs::Clock::time_point enqueued;
  std::string tenant;                  ///< tenant the request routes to
  ShardedServing* backend = nullptr;   ///< that tenant's corpus
  std::string state_dir;               ///< that tenant's durable state root
  size_t cost = 0;                     ///< DRR cost: frame bytes
};

/// The ibseg_net_* instrument set (docs/OPERATIONS.md §5 catalogs it).
/// Registered eagerly so an idle server still renders every series at
/// zero — the same discipline as the serving-layer metrics.
struct Server::Metrics {
  Metrics()
      : connections(obs::MetricsRegistry::global().gauge(
            "ibseg_net_connections",
            "Currently open client connections on the network front-end.")),
        request_seconds(obs::MetricsRegistry::global().histogram(
            "ibseg_net_request_seconds",
            "Queue wait plus execution time of admitted requests, in "
            "seconds.")),
        fanout_forwarded(obs::MetricsRegistry::global().counter(
            "ibseg_net_fanout_total",
            "QUERY/ASK requests on a fan-out-enabled server, by where the "
            "answer came from.",
            {{"answered_by", "replica"}})),
        fanout_local(obs::MetricsRegistry::global().counter(
            "ibseg_net_fanout_total",
            "QUERY/ASK requests on a fan-out-enabled server, by where the "
            "answer came from.",
            {{"answered_by", "local"}})) {
    obs::MetricsRegistry& r = obs::MetricsRegistry::global();
    static constexpr MsgType kCommands[] = {
        MsgType::kPing,         MsgType::kQuery,   MsgType::kAsk,
        MsgType::kAddPost,      MsgType::kAddPosts, MsgType::kSave,
        MsgType::kMetrics,      MsgType::kDrain,    MsgType::kRecluster,
        MsgType::kSubscribeWal, MsgType::kWalAck,   MsgType::kSnapshotList,
        MsgType::kSnapshotChunk, MsgType::kTenantOpen, MsgType::kTenantList};
    for (MsgType cmd : kCommands) {
      requests[static_cast<uint8_t>(cmd)] = &r.counter(
          "ibseg_net_requests_total",
          "Well-framed requests received, by command.",
          {{"cmd", msg_type_name(cmd)}});
    }
    static constexpr const char* kReasons[] = {
        "bad_frame", "bad_request", "overloaded",
        "draining",  "timeout",     "conn_limit", "unknown_tenant"};
    for (const char* reason : kReasons) {
      rejected[reason] = &r.counter(
          "ibseg_net_rejected_total",
          "Requests and connections refused before execution, by reason.",
          {{"reason", reason}});
    }
  }

  void reject(const char* reason) { rejected.at(reason)->inc(); }

  obs::Gauge& connections;
  obs::Histogram& request_seconds;
  obs::Counter& fanout_forwarded;
  obs::Counter& fanout_local;
  std::map<uint8_t, obs::Counter*> requests;
  std::map<std::string, obs::Counter*> rejected;
};

/// One pooled leader-side connection to a read replica. A worker try-locks
/// a channel for the duration of one forwarded call; a busy channel is
/// skipped rather than waited on. The Client connects lazily and, after
/// any transport failure, is dropped and the channel sits out
/// replica_retry_sec before the next attempt.
struct Server::ReplicaChannel {
  std::string host;
  uint16_t port = 0;

  std::mutex mu;  ///< guards client + cooldown_until
  std::unique_ptr<Client> client;
  obs::Clock::time_point cooldown_until{};  ///< epoch value = no cooldown
};

// The wire-level name bound and the registry's directory-name bound must
// agree, or a name the codec accepts could be unopenable (or vice versa).
static_assert(TenantRegistry::kMaxNameBytes == kMaxTenantNameBytes,
              "core and wire tenant-name limits diverged");

Server::Server(TenantRegistry* tenants, ServerOptions options)
    : Server(tenants->default_backend(), std::move(options)) {
  tenants_ = tenants;
  // One queue + one wait histogram per tenant, eagerly — the tenant set
  // is fixed, so an idle tenant still renders its series at zero.
  obs::MetricsRegistry& r = obs::MetricsRegistry::global();
  for (const std::string& name : tenants_->names()) {
    TenantQueue& tq = tenant_queues_[name];
    tq.queue_seconds = &r.histogram(
        "ibseg_tenant_queue_seconds",
        "Dispatch-queue wait of admitted requests, by tenant (the "
        "fairness scheduler's observable).",
        {{"tenant", name}});
  }
}

Server::Server(ShardedServing* backend, ServerOptions options)
    : backend_(backend),
      options_(std::move(options)),
      metrics_(std::make_unique<Metrics>()) {
  if (options_.num_workers < 1) options_.num_workers = 1;
  if (options_.max_in_flight < 1) options_.max_in_flight = 1;
  // Single-tenant mode still schedules through the (single) default
  // tenant queue — one code path, no special cases.
  TenantQueue& tq = tenant_queues_[TenantRegistry::kDefaultTenant];
  tq.queue_seconds = &obs::MetricsRegistry::global().histogram(
      "ibseg_tenant_queue_seconds",
      "Dispatch-queue wait of admitted requests, by tenant (the "
      "fairness scheduler's observable).",
      {{"tenant", TenantRegistry::kDefaultTenant}});
  for (const std::string& addr : options_.read_replicas) {
    const size_t colon = addr.rfind(':');
    unsigned long port = 0;
    if (colon != std::string::npos) {
      port = std::strtoul(addr.c_str() + colon + 1, nullptr, 10);
    }
    if (colon == std::string::npos || colon == 0 || port == 0 ||
        port > 65535) {
      std::fprintf(stderr, "ibseg_server: ignoring bad replica address %s\n",
                   addr.c_str());
      continue;
    }
    auto channel = std::make_unique<ReplicaChannel>();
    channel->host = addr.substr(0, colon);
    channel->port = static_cast<uint16_t>(port);
    replica_channels_.push_back(std::move(channel));
  }
}

Server::~Server() {
  if (started_.load(std::memory_order_acquire)) drain();
  if (wake_fds_[0] >= 0) ::close(wake_fds_[0]);
  if (wake_fds_[1] >= 0) ::close(wake_fds_[1]);
}

bool Server::start() {
  if (::pipe(wake_fds_) != 0 || !set_nonblocking(wake_fds_[0]) ||
      !set_nonblocking(wake_fds_[1])) {
    std::perror("ibseg_server: pipe");
    return false;
  }

  listen_fd_ = ::socket(AF_INET, SOCK_STREAM, 0);
  if (listen_fd_ < 0) {
    std::perror("ibseg_server: socket");
    return false;
  }
  int one = 1;
  ::setsockopt(listen_fd_, SOL_SOCKET, SO_REUSEADDR, &one, sizeof(one));

  sockaddr_in addr;
  std::memset(&addr, 0, sizeof(addr));
  addr.sin_family = AF_INET;
  addr.sin_port = htons(options_.port);
  if (::inet_pton(AF_INET, options_.bind_address.c_str(), &addr.sin_addr) !=
      1) {
    std::fprintf(stderr, "ibseg_server: bad bind address %s\n",
                 options_.bind_address.c_str());
    ::close(listen_fd_);
    listen_fd_ = -1;
    return false;
  }
  if (::bind(listen_fd_, reinterpret_cast<sockaddr*>(&addr), sizeof(addr)) !=
          0 ||
      ::listen(listen_fd_, 64) != 0 || !set_nonblocking(listen_fd_)) {
    std::perror("ibseg_server: bind/listen");
    ::close(listen_fd_);
    listen_fd_ = -1;
    return false;
  }

  socklen_t len = sizeof(addr);
  if (::getsockname(listen_fd_, reinterpret_cast<sockaddr*>(&addr), &len) ==
      0) {
    port_ = ntohs(addr.sin_port);
  }

  started_.store(true, std::memory_order_release);
  if (ReclusterPolicy p = options_.recluster;
      p.max_pending > 0 || p.max_docs_since > 0) {
    recluster_worker_ = std::make_unique<ReclusterWorker>(*backend_, p);
    recluster_worker_->start();
  }
  io_thread_ = std::thread([this] { io_loop(); });
  workers_.reserve(static_cast<size_t>(options_.num_workers));
  for (int i = 0; i < options_.num_workers; ++i) {
    workers_.emplace_back([this] { worker_loop(); });
  }
  return true;
}

void Server::wake_io() {
  char byte = 1;
  // A full pipe already guarantees a pending wake; EAGAIN is success.
  [[maybe_unused]] ssize_t n = ::write(wake_fds_[1], &byte, 1);
}

void Server::request_drain() {
  draining_.store(true, std::memory_order_release);
  wake_io();
}

void Server::drain() {
  if (!started_.load(std::memory_order_acquire)) return;
  request_drain();
  finish_drain();
}

void Server::wait_drained() {
  if (!started_.load(std::memory_order_acquire)) return;
  {
    // Wait for *someone* to initiate a drain (DRAIN command, another
    // thread's drain() call) ...
    std::unique_lock<std::mutex> lock(lifecycle_mu_);
    lifecycle_cv_.wait(lock, [this] {
      return draining_.load(std::memory_order_acquire);
    });
  }
  // ... then make sure the tail work runs (first caller does it).
  finish_drain();
}

void Server::finish_drain() {
  {
    std::unique_lock<std::mutex> lock(lifecycle_mu_);
    if (drain_finished_) return;
    if (drain_finishing_) {
      lifecycle_cv_.wait(lock, [this] { return drain_finished_; });
      return;
    }
    drain_finishing_ = true;
  }

  // Network side first: the I/O thread exits once nothing is in flight
  // and every output buffer is flushed (or its flush deadline passed).
  {
    std::unique_lock<std::mutex> lock(lifecycle_mu_);
    lifecycle_cv_.wait(lock, [this] {
      return net_quiesced_.load(std::memory_order_acquire);
    });
  }
  io_thread_.join();

  workers_stop_.store(true, std::memory_order_release);
  queue_cv_.notify_all();
  for (std::thread& w : workers_) w.join();
  workers_.clear();

  // Quiesce the background recluster loop before the save: stop() joins,
  // so after it no shadow rebuild is running and none will start — the
  // saved generation is whichever epoch last swapped in, never a torn
  // intermediate (reclusters are atomic anyway; this just pins WHICH
  // generation the drain persists).
  if (recluster_worker_ != nullptr) {
    recluster_worker_->stop();
    recluster_worker_.reset();
  }

  // The final publication barrier: with a state dir configured, persist
  // every acknowledged ingest (snapshot + manifest commit + WAL
  // truncation) before reporting the drain complete. In registry mode
  // every tenant is saved — each into its own tenant-<name> directory.
  if (tenants_ != nullptr) {
    if (!tenants_->save_all()) {
      std::fprintf(stderr, "ibseg_server: drain-time tenant save failed\n");
    }
  } else if (!options_.state_dir.empty()) {
    if (!backend_->save(options_.state_dir)) {
      std::fprintf(stderr, "ibseg_server: drain-time save to %s failed\n",
                   options_.state_dir.c_str());
    }
  }

  started_.store(false, std::memory_order_release);
  {
    std::lock_guard<std::mutex> lock(lifecycle_mu_);
    drain_finished_ = true;
  }
  lifecycle_cv_.notify_all();
}

void Server::io_loop() {
  std::vector<pollfd> fds;
  std::vector<std::shared_ptr<Connection>> polled;
  bool drain_seen = false;
  obs::Clock::time_point drain_started{};

  while (true) {
    const bool draining = draining_.load(std::memory_order_acquire);
    if (draining && !drain_seen) {
      drain_seen = true;
      drain_started = obs::Clock::now();
      if (listen_fd_ >= 0) {
        ::close(listen_fd_);
        listen_fd_ = -1;
      }
    }

    // A worker finishing its request may have unblocked parsing of
    // already-buffered pipelined frames; give every eligible connection a
    // parse pass before sleeping.
    for (auto& [fd, conn] : connections_) {
      if (!conn->closed.load(std::memory_order_acquire) &&
          !conn->in_flight.load(std::memory_order_acquire) &&
          !conn->input.empty() &&
          conn->pending_output() < options_.max_output_bytes) {
        if (!parse_frames(conn)) close_connection(conn);
      }
    }

    const obs::Clock::time_point now = obs::Clock::now();

    // Idle timeout + deferred closes + drain force-close sweep.
    for (auto& [fd, conn] : connections_) {
      if (conn->closed.load(std::memory_order_acquire)) continue;
      bool closing;
      size_t pending;
      {
        std::lock_guard<std::mutex> lock(conn->out_mu);
        closing = conn->closing;
        pending = conn->out.size() - conn->out_offset;
      }
      if (closing && pending == 0) {
        close_connection(conn);
      } else if (options_.idle_timeout_sec > 0 && !closing && pending == 0 &&
                 !conn->in_flight.load(std::memory_order_acquire) &&
                 obs::seconds_between(conn->last_activity, now) >
                     options_.idle_timeout_sec) {
        close_connection(conn);
      } else if (drain_seen && pending > 0 &&
                 obs::seconds_between(drain_started, now) >
                     kDrainFlushTimeoutSec) {
        close_connection(conn);
      }
    }
    for (auto it = connections_.begin(); it != connections_.end();) {
      if (it->second->closed.load(std::memory_order_acquire)) {
        it = connections_.erase(it);
      } else {
        ++it;
      }
    }

    // Drain exit: nothing admitted, nothing buffered, nothing half-read.
    if (drain_seen && in_flight_.load(std::memory_order_acquire) == 0) {
      bool flushed = true;
      for (auto& [fd, conn] : connections_) {
        if (conn->pending_output() > 0 ||
            conn->in_flight.load(std::memory_order_acquire)) {
          flushed = false;
          break;
        }
      }
      if (flushed) break;
    }

    fds.clear();
    polled.clear();
    fds.push_back({wake_fds_[0], POLLIN, 0});
    if (listen_fd_ >= 0) fds.push_back({listen_fd_, POLLIN, 0});
    const size_t first_conn = fds.size();
    for (auto& [fd, conn] : connections_) {
      short events = 0;
      if (conn->pending_output() > 0) events |= POLLOUT;
      bool closing;
      {
        std::lock_guard<std::mutex> lock(conn->out_mu);
        closing = conn->closing;
      }
      if (!closing && !conn->in_flight.load(std::memory_order_acquire) &&
          conn->pending_output() < options_.max_output_bytes) {
        events |= POLLIN;
      }
      if (events == 0) continue;
      fds.push_back({fd, events, 0});
      polled.push_back(conn);
    }

    ::poll(fds.data(), fds.size(), kPollTimeoutMs);

    if ((fds[0].revents & POLLIN) != 0) {
      char buf[64];
      while (::read(wake_fds_[0], buf, sizeof(buf)) > 0) {
      }
    }
    if (listen_fd_ >= 0 && fds.size() > 1 && fds[1].fd == listen_fd_ &&
        (fds[1].revents & POLLIN) != 0) {
      accept_ready();
    }
    for (size_t i = first_conn; i < fds.size(); ++i) {
      const std::shared_ptr<Connection>& conn = polled[i - first_conn];
      if (conn->closed.load(std::memory_order_acquire)) continue;
      if ((fds[i].revents & (POLLERR | POLLNVAL)) != 0) {
        close_connection(conn);
        continue;
      }
      if ((fds[i].revents & POLLOUT) != 0) connection_writable(conn);
      if ((fds[i].revents & (POLLIN | POLLHUP)) != 0) {
        connection_readable(conn);
      }
    }
  }

  for (auto& [fd, conn] : connections_) {
    if (!conn->closed.load(std::memory_order_acquire)) {
      close_connection(conn);
    }
  }
  connections_.clear();

  net_quiesced_.store(true, std::memory_order_release);
  {
    std::lock_guard<std::mutex> lock(lifecycle_mu_);
  }
  lifecycle_cv_.notify_all();
}

void Server::accept_ready() {
  while (true) {
    int fd = ::accept(listen_fd_, nullptr, nullptr);
    if (fd < 0) return;  // EAGAIN or transient error: done for this tick
    if (!set_nonblocking(fd)) {
      ::close(fd);
      continue;
    }
    int one = 1;
    ::setsockopt(fd, IPPROTO_TCP, TCP_NODELAY, &one, sizeof(one));

    if (connections_.size() >= options_.max_connections) {
      // Explicit rejection, never a silent drop: best-effort OVERLOADED
      // response, then close (PROTOCOL.md §6).
      metrics_->reject("conn_limit");
      std::string payload, frame;
      encode_error({ErrCode::kOverloaded, "connection limit reached"},
                   &payload);
      encode_frame(MsgType::kError, payload, &frame);
      [[maybe_unused]] ssize_t n =
          ::send(fd, frame.data(), frame.size(), MSG_NOSIGNAL);
      ::close(fd);
      continue;
    }
    auto conn = std::make_shared<Connection>(fd);
    connections_.emplace(fd, std::move(conn));
    metrics_->connections.set(static_cast<double>(connections_.size()));
  }
}

void Server::connection_readable(const std::shared_ptr<Connection>& conn) {
  char buf[65536];
  while (true) {
    ssize_t n = ::read(conn->fd, buf, sizeof(buf));
    if (n > 0) {
      conn->input.append(buf, static_cast<size_t>(n));
      conn->last_activity = obs::Clock::now();
      // One read chunk may complete many frames but at most one request is
      // admitted; stop pulling more bytes once a request is in flight so
      // the input buffer stays bounded by the socket buffer + one frame.
      if (conn->in_flight.load(std::memory_order_acquire)) break;
      continue;
    }
    if (n == 0) {  // peer closed
      close_connection(conn);
      return;
    }
    if (errno == EAGAIN || errno == EWOULDBLOCK) break;
    if (errno == EINTR) continue;
    close_connection(conn);
    return;
  }
  if (!parse_frames(conn)) close_connection(conn);
}

void Server::connection_writable(const std::shared_ptr<Connection>& conn) {
  std::lock_guard<std::mutex> lock(conn->out_mu);
  while (conn->out_offset < conn->out.size()) {
    ssize_t n = ::send(conn->fd, conn->out.data() + conn->out_offset,
                       conn->out.size() - conn->out_offset, MSG_NOSIGNAL);
    if (n > 0) {
      conn->out_offset += static_cast<size_t>(n);
      conn->last_activity = obs::Clock::now();
      continue;
    }
    if (n < 0 && (errno == EAGAIN || errno == EWOULDBLOCK)) return;
    if (n < 0 && errno == EINTR) continue;
    conn->closing = true;  // broken pipe; sweep closes it
    return;
  }
  conn->out.clear();
  conn->out_offset = 0;
}

bool Server::parse_frames(const std::shared_ptr<Connection>& conn) {
  while (!conn->in_flight.load(std::memory_order_acquire)) {
    {
      std::lock_guard<std::mutex> lock(conn->out_mu);
      if (conn->closing) return true;
      if (conn->out.size() - conn->out_offset >= options_.max_output_bytes) {
        return true;  // backpressure: resume once the client drains
      }
    }
    FrameHeader header;
    DecodeStatus status = decode_frame_header(
        reinterpret_cast<const uint8_t*>(conn->input.data()),
        conn->input.size(), &header);
    if (status == DecodeStatus::kNeedMore) return true;
    if (status == DecodeStatus::kMalformed) {
      // Framing is lost; the only safe recovery is closing (PROTOCOL.md
      // §2). No error response — we cannot know where a reply would land
      // in the byte stream the client thinks it is speaking.
      metrics_->reject("bad_frame");
      return false;
    }
    const size_t total = kFrameHeaderBytes + header.payload_len;
    if (conn->input.size() < total) return true;  // payload still arriving
    std::string payload = conn->input.substr(kFrameHeaderBytes,
                                             header.payload_len);
    conn->input.erase(0, total);
    dispatch(conn, header.type, std::move(payload));
  }
  return true;
}

void Server::dispatch(const std::shared_ptr<Connection>& conn, MsgType type,
                      std::string payload) {
  const uint8_t code = static_cast<uint8_t>(type);
  auto it = metrics_->requests.find(code);
  if (it == metrics_->requests.end()) {
    // Well-framed but not a request we know (including response-typed
    // frames sent at us). The stream is still in sync: answer and go on.
    metrics_->reject("bad_request");
    send_error(conn, ErrCode::kBadRequest, "unknown request type");
    return;
  }
  it->second->inc();

  if (draining_.load(std::memory_order_acquire)) {
    metrics_->reject("draining");
    send_error(conn, ErrCode::kDraining, "server is draining");
    std::lock_guard<std::mutex> lock(conn->out_mu);
    conn->closing = true;
    return;
  }

  // The tenant envelope executes inline on the I/O thread: both commands
  // are registry lookups (no corpus work), and handling them here makes
  // conn->tenant I/O-thread-private — no admission slot, no queueing.
  if (type == MsgType::kTenantOpen) {
    TenantOpenRequest req;
    if (!decode_tenant_open(payload, &req)) {
      metrics_->reject("bad_request");
      send_error(conn, ErrCode::kBadRequest, "malformed tenant_open payload");
      return;
    }
    ShardedServing* bound =
        tenants_ != nullptr
            ? tenants_->find(req.name)
            : (req.name == TenantRegistry::kDefaultTenant ? backend_
                                                          : nullptr);
    if (bound == nullptr) {
      metrics_->reject("unknown_tenant");
      send_error(conn, ErrCode::kUnknownTenant, "no such tenant: " + req.name);
      return;
    }
    conn->tenant = req.name;
    std::string resp;
    encode_tenant_opened({bound->epoch(), bound->num_docs()}, &resp);
    send_frame(conn, MsgType::kTenantOpened, resp);
    return;
  }
  if (type == MsgType::kTenantList) {
    if (!payload.empty()) {
      metrics_->reject("bad_request");
      send_error(conn, ErrCode::kBadRequest, "tenant_list carries no payload");
      return;
    }
    TenantListingResponse listing;
    if (tenants_ != nullptr) {
      for (const std::string& name : tenants_->names()) {
        listing.tenants.push_back({name, tenants_->find(name)->num_docs()});
      }
    } else {
      listing.tenants.push_back(
          {TenantRegistry::kDefaultTenant, backend_->num_docs()});
    }
    std::string resp;
    encode_tenant_listing(listing, &resp);
    send_frame(conn, MsgType::kTenantListing, resp);
    return;
  }

  // Resolve the tenant once, on the I/O thread. conn->tenant is always a
  // name TENANT_OPEN validated (or the default), so the lookup cannot
  // fail on an open registry.
  Work work;
  work.conn = conn;
  work.type = type;
  work.tenant = conn->tenant;
  if (tenants_ != nullptr) {
    work.backend = tenants_->find(conn->tenant);
    work.state_dir = tenants_->state_dir(conn->tenant);
  } else {
    work.backend = backend_;
    work.state_dir = options_.state_dir;
  }
  work.cost = kFrameHeaderBytes + payload.size();
  work.payload = std::move(payload);
  work.enqueued = obs::Clock::now();

  // Admission control: the global bound covers queued + executing
  // requests across all tenants ...
  size_t current = in_flight_.load(std::memory_order_relaxed);
  while (true) {
    if (current >= options_.max_in_flight) {
      metrics_->reject("overloaded");
      send_error(conn, ErrCode::kOverloaded, "too many requests in flight");
      return;
    }
    if (in_flight_.compare_exchange_weak(current, current + 1,
                                         std::memory_order_acq_rel)) {
      break;
    }
  }

  conn->in_flight.store(true, std::memory_order_release);
  {
    std::lock_guard<std::mutex> lock(queue_mu_);
    TenantQueue& tq = tenant_queues_.at(work.tenant);
    // ... and the per-tenant bound keeps one flooding tenant from
    // consuming every slot (0 = no tighter bound).
    const size_t tenant_cap = options_.tenant_max_in_flight > 0
                                  ? options_.tenant_max_in_flight
                                  : options_.max_in_flight;
    if (tq.in_flight >= tenant_cap) {
      conn->in_flight.store(false, std::memory_order_release);
      in_flight_.fetch_sub(1, std::memory_order_acq_rel);
      metrics_->reject("overloaded");
      send_error(conn, ErrCode::kOverloaded,
                 "too many requests in flight for tenant " + work.tenant);
      return;
    }
    ++tq.in_flight;
    tq.queue.push_back(std::move(work));
    if (!tq.active) {
      tq.active = true;
      active_.push_back(tq.queue.back().tenant);
    }
    ++queued_total_;
  }
  queue_cv_.notify_one();
}

Server::Work Server::pop_next_locked() {
  // Deficit round robin over the active-tenant ring: each turn at the
  // front of the ring tops a tenant's byte deficit up by one quantum;
  // its head request is served only once the deficit covers the
  // request's frame size. Small frames (queries) are served every turn;
  // a tenant streaming jumbo batches accumulates deficit over several
  // rotations while light tenants keep being served — that is the
  // no-starvation argument (docs/ARCHITECTURE.md §11). Terminates: every
  // full rotation grows the front-most deficits by a quantum and costs
  // are bounded by kMaxPayloadBytes.
  while (true) {
    TenantQueue& tq = tenant_queues_.at(active_.front());
    if (tq.queue.empty()) {  // emptied by earlier pops; drop from the ring
      tq.active = false;
      tq.deficit = 0;
      active_.pop_front();
      continue;
    }
    const size_t cost = tq.queue.front().cost;
    if (tq.deficit < cost) {
      tq.deficit += options_.fair_quantum_bytes;
      if (tq.deficit < cost) {
        // Still short: rotate so other tenants are served while this
        // one's budget builds up.
        active_.push_back(active_.front());
        active_.pop_front();
        continue;
      }
    }
    tq.deficit -= cost;
    Work work = std::move(tq.queue.front());
    tq.queue.pop_front();
    --queued_total_;
    if (tq.queue.empty()) {
      tq.active = false;
      tq.deficit = 0;  // budget does not accumulate while idle
      active_.pop_front();
    } else {
      // One serve per turn: rotate to the back even though the leftover
      // deficit could cover the next request. Without this a tenant whose
      // closed-loop clients refill the queue as fast as it drains never
      // leaves the front and starves everyone else; with it, the worst
      // wait for any active tenant is one small frame per other tenant.
      active_.push_back(active_.front());
      active_.pop_front();
    }
    return work;
  }
}

void Server::worker_loop() {
  while (true) {
    Work work;
    {
      std::unique_lock<std::mutex> lock(queue_mu_);
      queue_cv_.wait(lock, [this] {
        return queued_total_ > 0 ||
               workers_stop_.load(std::memory_order_acquire);
      });
      if (queued_total_ == 0) return;  // stop requested and drained
      work = pop_next_locked();
    }

    MsgType resp_type;
    std::string resp_payload;
    const double waited =
        obs::seconds_between(work.enqueued, obs::Clock::now());
    // Histogram writes are atomic; no queue_mu_ needed, and the pointer
    // is stable (the tenant map's key set is fixed at construction).
    tenant_queues_.at(work.tenant).queue_seconds->observe(waited);
    if (options_.request_timeout_sec > 0 &&
        waited > options_.request_timeout_sec) {
      metrics_->reject("timeout");
      resp_type = MsgType::kError;
      encode_error({ErrCode::kTimeout, "request expired in queue"},
                   &resp_payload);
    } else {
      execute(work, &resp_type, &resp_payload);
      if (tenants_ != nullptr) {
        tenants_->count_query(work.tenant);
        if (work.type == MsgType::kAddPost ||
            work.type == MsgType::kAddPosts) {
          tenants_->refresh_doc_gauge(work.tenant);
        }
      }
    }

    if (!work.conn->closed.load(std::memory_order_acquire)) {
      send_frame(work.conn, resp_type, resp_payload);
    }
    metrics_->request_seconds.observe(
        obs::seconds_between(work.enqueued, obs::Clock::now()));
    work.conn->in_flight.store(false, std::memory_order_release);
    {
      std::lock_guard<std::mutex> lock(queue_mu_);
      --tenant_queues_.at(work.tenant).in_flight;
    }
    in_flight_.fetch_sub(1, std::memory_order_acq_rel);
    wake_io();
  }
}

void Server::execute(const Work& work, MsgType* type, std::string* payload) {
  if (options_.debug_handler_delay_ms > 0) {
    std::this_thread::sleep_for(
        std::chrono::milliseconds(options_.debug_handler_delay_ms));
  }
  payload->clear();
  auto bad_request = [&](const char* message) {
    metrics_->reject("bad_request");
    *type = MsgType::kError;
    encode_error({ErrCode::kBadRequest, message}, payload);
  };

  switch (work.type) {
    case MsgType::kPing: {
      if (!work.payload.empty()) return bad_request("ping carries no payload");
      *type = MsgType::kPong;
      encode_pong({work.backend->epoch(), work.backend->num_docs()}, payload);
      return;
    }
    case MsgType::kQuery: {
      QueryRequest req;
      if (!decode_query(work.payload, &req)) {
        return bad_request("malformed query payload");
      }
      if (req.doc_id >= work.backend->next_id()) {
        *type = MsgType::kError;
        encode_error({ErrCode::kUnknownDoc, "document id not in corpus"},
                     payload);
        return;
      }
      // Replica fan-out is a leader/default-tenant concept: replicas tail
      // the default tenant's WAL, so only its reads may be offloaded.
      if (!replica_channels_.empty() &&
          work.tenant == TenantRegistry::kDefaultTenant) {
        std::string forwarded;
        if (forward_to_replica(MsgType::kQuery, work.payload, &forwarded)) {
          metrics_->fanout_forwarded.inc();
          *type = MsgType::kRelated;
          *payload = std::move(forwarded);
          return;
        }
        metrics_->fanout_local.inc();
      }
      ShardedServing::QueryResult result =
          work.backend->find_related(req.doc_id, static_cast<int>(req.k));
      *type = MsgType::kRelated;
      encode_related({result.epoch, result.num_docs, std::move(result.results)},
                     payload);
      return;
    }
    case MsgType::kAsk: {
      AskRequest req;
      if (!decode_ask(work.payload, &req)) {
        return bad_request("malformed ask payload");
      }
      Document doc = Document::analyze(kExternalQueryId, req.text);
      if (doc.num_units() == 0) return bad_request("empty post");
      if (!replica_channels_.empty() &&
          work.tenant == TenantRegistry::kDefaultTenant) {
        std::string forwarded;
        if (forward_to_replica(MsgType::kAsk, work.payload, &forwarded)) {
          metrics_->fanout_forwarded.inc();
          *type = MsgType::kRelated;
          *payload = std::move(forwarded);
          return;
        }
        metrics_->fanout_local.inc();
      }
      ShardedServing::QueryResult result =
          work.backend->find_related_external(doc, static_cast<int>(req.k));
      *type = MsgType::kRelated;
      encode_related({result.epoch, result.num_docs, std::move(result.results)},
                     payload);
      return;
    }
    case MsgType::kAddPost: {
      if (options_.read_only) {
        *type = MsgType::kError;
        encode_error({ErrCode::kUnsupported,
                      "replica is read-only; ingest on the leader"},
                     payload);
        return;
      }
      AddPostRequest req;
      if (!decode_add_post(work.payload, &req) || req.text.empty()) {
        return bad_request("malformed or empty add_post payload");
      }
      DocId id = work.backend->add_post(std::move(req.text));
      *type = MsgType::kAdded;
      encode_added({{id}}, payload);
      return;
    }
    case MsgType::kAddPosts: {
      if (options_.read_only) {
        *type = MsgType::kError;
        encode_error({ErrCode::kUnsupported,
                      "replica is read-only; ingest on the leader"},
                     payload);
        return;
      }
      AddPostsRequest req;
      if (!decode_add_posts(work.payload, &req)) {
        return bad_request("malformed add_posts payload");
      }
      for (const std::string& text : req.texts) {
        if (text.empty()) return bad_request("empty post in batch");
      }
      std::vector<DocId> ids = work.backend->add_posts(std::move(req.texts));
      *type = MsgType::kAdded;
      encode_added({std::move(ids)}, payload);
      return;
    }
    case MsgType::kSave: {
      if (!work.payload.empty()) return bad_request("save carries no payload");
      if (work.state_dir.empty()) {
        *type = MsgType::kError;
        encode_error({ErrCode::kUnsupported, "server has no state directory"},
                     payload);
        return;
      }
      if (!work.backend->save(work.state_dir)) {
        *type = MsgType::kError;
        encode_error({ErrCode::kInternal, "save failed"}, payload);
        return;
      }
      *type = MsgType::kSaved;
      return;
    }
    case MsgType::kMetrics: {
      MetricsRequest req;
      if (!decode_metrics(work.payload, &req)) {
        return bad_request("malformed metrics payload");
      }
      MetricsDataResponse resp;
      resp.body = req.format == 1 ? obs::render_json() : obs::render_text();
      *type = MsgType::kMetricsData;
      encode_metrics_data(resp, payload);
      return;
    }
    case MsgType::kRecluster: {
      if (!work.payload.empty()) {
        return bad_request("recluster carries no payload");
      }
      if (options_.read_only) {
        // Replicas mirror the leader's recluster boundaries from shipped
        // segments; a locally-forced epoch would fork their label history.
        *type = MsgType::kError;
        encode_error({ErrCode::kUnsupported,
                      "replica is read-only; recluster on the leader"},
                     payload);
        return;
      }
      // Synchronous: the response is sent only after the new generation
      // has swapped in, so a RECLUSTER -> QUERY sequence on one
      // connection observes the new clustering. The worker executing this
      // holds no serving lock; queries on other workers keep flowing
      // through the shadow build exactly as with the background worker.
      uint64_t generation = work.backend->recluster();
      *type = MsgType::kReclustered;
      encode_reclustered(
          {generation, static_cast<uint32_t>(work.backend->num_clusters())},
          payload);
      return;
    }
    case MsgType::kSubscribeWal: {
      SubscribeWalRequest req;
      if (!decode_subscribe_wal(work.payload, &req)) {
        return bad_request("malformed subscribe_wal payload");
      }
      ShardedServing::ShipSegment seg = work.backend->ship_segment(
          req.from_seq, req.replica_generation, req.max_frames,
          req.max_bytes);
      using Status = ShardedServing::ShipSegment::Status;
      if (seg.status == Status::kAhead) {
        return bad_request("from_seq is ahead of the leader's epoch");
      }
      if (seg.status == Status::kSnapshotNeeded) {
        *type = MsgType::kError;
        encode_error({ErrCode::kSnapshotNeeded,
                      "cursor not servable from frames; re-bootstrap from "
                      "a snapshot"},
                     payload);
        return;
      }
      WalSegmentResponse resp;
      resp.base_seq = seg.base_seq;
      resp.leader_seq = seg.leader_seq;
      resp.leader_generation = seg.leader_generation;
      resp.segment_generation = seg.segment_generation;
      resp.recluster_after = seg.recluster_after ? 1 : 0;
      resp.recluster_target = seg.recluster_target;
      resp.frame_count = seg.frame_count;
      resp.raw = std::move(seg.raw);
      encode_wal_segment(resp, payload);
      if (payload->size() > kMaxPayloadBytes) {
        // Only reachable when a single locally-ingested post exceeds the
        // frame limit (wire ingests cannot: ADD_POST payloads are already
        // bounded by it). Such a follower must bootstrap from a snapshot.
        payload->clear();
        *type = MsgType::kError;
        encode_error({ErrCode::kSnapshotNeeded,
                      "segment frame exceeds the wire payload limit"},
                     payload);
        return;
      }
      *type = MsgType::kWalSegment;
      return;
    }
    case MsgType::kWalAck: {
      WalAckRequest req;
      if (!decode_wal_ack(work.payload, &req)) {
        return bad_request("malformed wal_ack payload");
      }
      const uint64_t epoch = work.backend->epoch();
      const uint64_t lag = epoch > req.acked_seq ? epoch - req.acked_seq : 0;
      // Single-tenant servers keep the historical series shape; registry
      // mode adds the tenant label so per-tenant followers stay distinct.
      obs::Labels lag_labels{{"replica", req.replica_id}};
      if (tenants_ != nullptr) lag_labels.push_back({"tenant", work.tenant});
      obs::MetricsRegistry::global()
          .gauge("ibseg_leader_replica_lag_frames",
                 "Publications the leader is ahead of each replica's last "
                 "acknowledged position, by replica id.",
                 std::move(lag_labels))
          .set(static_cast<double>(lag));
      *type = MsgType::kWalAcked;
      return;
    }
    case MsgType::kSnapshotList: {
      if (!work.payload.empty()) {
        return bad_request("snapshot_list carries no payload");
      }
      if (work.state_dir.empty()) {
        *type = MsgType::kError;
        encode_error({ErrCode::kUnsupported, "server has no state directory"},
                     payload);
        return;
      }
      // Save first: the listing must describe a committed, self-contained
      // state (shard WALs truncated, manifest covering every publication),
      // so a bootstrap that fetches exactly the listed files restores to a
      // clean frame boundary.
      if (!work.backend->save(work.state_dir)) {
        *type = MsgType::kError;
        encode_error({ErrCode::kInternal, "snapshot save failed"}, payload);
        return;
      }
      std::optional<ShardManifest> manifest =
          load_shard_manifest_file(work.state_dir + "/MANIFEST");
      if (!manifest.has_value()) {
        *type = MsgType::kError;
        encode_error({ErrCode::kInternal, "manifest unreadable after save"},
                     payload);
        return;
      }
      SnapshotListingResponse resp;
      resp.generation = manifest->generation;
      resp.num_shards = manifest->num_shards;
      for (const std::string& name : snapshot_file_names(*manifest)) {
        std::ifstream in(work.state_dir + "/" + name, std::ios::binary);
        uint32_t crc = 0;
        uint64_t size = 0;
        char buf[65536];
        bool ok = static_cast<bool>(in);
        while (ok) {
          in.read(buf, sizeof(buf));
          const std::streamsize got = in.gcount();
          if (got > 0) {
            crc = crc32(buf, static_cast<size_t>(got), crc);
            size += static_cast<uint64_t>(got);
          }
          if (in.bad()) ok = false;
          if (got < static_cast<std::streamsize>(sizeof(buf))) break;
        }
        if (!ok) {
          *type = MsgType::kError;
          encode_error({ErrCode::kInternal,
                        "snapshot file unreadable: " + name},
                       payload);
          return;
        }
        resp.files.push_back({name, size, crc});
      }
      *type = MsgType::kSnapshotListing;
      encode_snapshot_listing(resp, payload);
      return;
    }
    case MsgType::kSnapshotChunk: {
      SnapshotChunkRequest req;
      if (!decode_snapshot_chunk(work.payload, &req)) {
        return bad_request("malformed snapshot_chunk payload");
      }
      if (work.state_dir.empty()) {
        *type = MsgType::kError;
        encode_error({ErrCode::kUnsupported, "server has no state directory"},
                     payload);
        return;
      }
      // Only names the CURRENT manifest lists are servable — re-derived
      // here rather than trusting the request, so a chunk request can
      // never traverse outside the state directory.
      std::optional<ShardManifest> manifest =
          load_shard_manifest_file(work.state_dir + "/MANIFEST");
      if (!manifest.has_value()) {
        *type = MsgType::kError;
        encode_error({ErrCode::kSnapshotNeeded,
                      "no committed snapshot; SNAPSHOT_LIST first"},
                     payload);
        return;
      }
      const std::vector<std::string> names = snapshot_file_names(*manifest);
      if (std::find(names.begin(), names.end(), req.name) == names.end()) {
        return bad_request("name not in the current snapshot listing");
      }
      std::ifstream in(work.state_dir + "/" + req.name,
                       std::ios::binary | std::ios::ate);
      if (!in) {
        // Listed a moment ago but gone now: a newer save swapped
        // generations. The fetcher restarts from a fresh listing.
        *type = MsgType::kError;
        encode_error({ErrCode::kSnapshotNeeded,
                      "snapshot file superseded; re-list"},
                     payload);
        return;
      }
      SnapshotDataResponse resp;
      resp.total_size = static_cast<uint64_t>(in.tellg());
      // Clamp so the response payload (fixed fields + data) always fits
      // the frame limit, whatever max_len the client asked for.
      const uint32_t cap = kMaxPayloadBytes - 64;
      const uint32_t max_len = std::min(req.max_len, cap);
      if (req.offset < resp.total_size) {
        const uint64_t avail = resp.total_size - req.offset;
        const size_t want =
            static_cast<size_t>(std::min<uint64_t>(avail, max_len));
        resp.data.resize(want);
        in.seekg(static_cast<std::streamoff>(req.offset));
        if (!in.read(resp.data.data(),
                     static_cast<std::streamsize>(want))) {
          *type = MsgType::kError;
          encode_error({ErrCode::kInternal, "snapshot file short read"},
                       payload);
          return;
        }
      }
      *type = MsgType::kSnapshotData;
      encode_snapshot_data(resp, payload);
      return;
    }
    case MsgType::kDrain: {
      if (!work.payload.empty()) {
        return bad_request("drain carries no payload");
      }
      // Acknowledge first (the response rides the output buffer the drain
      // flush waits on), then initiate.
      *type = MsgType::kDraining;
      request_drain();
      {
        std::lock_guard<std::mutex> lock(lifecycle_mu_);
      }
      lifecycle_cv_.notify_all();  // unblock wait_drained()
      return;
    }
    default:
      return bad_request("unknown request type");
  }
}

bool Server::forward_to_replica(MsgType type, const std::string& payload,
                                std::string* resp_payload) {
  const size_t n = replica_channels_.size();
  if (n == 0) return false;
  // The staleness reference is the local epoch observed BEFORE the call:
  // an ingest racing the forwarded query may advance the local epoch past
  // the replica's answer, but that answer was current when the query
  // arrived — exactly the bound a local execution would have given.
  const uint64_t local_epoch = backend_->epoch();
  const auto cooldown = std::chrono::duration_cast<obs::Clock::duration>(
      std::chrono::duration<double>(options_.replica_retry_sec));
  const size_t start = replica_rr_.fetch_add(1, std::memory_order_relaxed);
  for (size_t i = 0; i < n; ++i) {
    ReplicaChannel& channel = *replica_channels_[(start + i) % n];
    std::unique_lock<std::mutex> lock(channel.mu, std::try_to_lock);
    if (!lock.owns_lock()) continue;  // busy with another worker's call
    if (channel.cooldown_until != obs::Clock::time_point{} &&
        obs::Clock::now() < channel.cooldown_until) {
      continue;
    }
    if (channel.client == nullptr) {
      const double timeout = options_.request_timeout_sec > 0
                                 ? options_.request_timeout_sec
                                 : 5.0;
      channel.client = Client::connect(channel.host, channel.port, timeout);
      if (channel.client == nullptr) {
        channel.cooldown_until = obs::Clock::now() + cooldown;
        continue;
      }
    }
    MsgType resp_type = MsgType::kError;
    std::string raw;
    CallResult result = channel.client->call(type, payload, &resp_type, &raw);
    if (!result.transport_ok) {
      channel.client.reset();
      channel.cooldown_until = obs::Clock::now() + cooldown;
      continue;
    }
    if (resp_type != MsgType::kRelated) continue;  // replica-side refusal
    RelatedResponse related;
    if (!decode_related(raw, &related)) {
      channel.client.reset();
      channel.cooldown_until = obs::Clock::now() + cooldown;
      continue;
    }
    if (local_epoch > related.epoch &&
        local_epoch - related.epoch > options_.replica_staleness) {
      continue;  // healthy but too far behind; try the next channel
    }
    // Replicas are bit-identical to the leader at frame boundaries, so
    // the replica's RELATED bytes pass through verbatim.
    *resp_payload = std::move(raw);
    return true;
  }
  return false;
}

void Server::send_frame(const std::shared_ptr<Connection>& conn, MsgType type,
                        std::string_view payload) {
  std::string frame;
  encode_frame(type, payload, &frame);
  std::lock_guard<std::mutex> lock(conn->out_mu);
  conn->out.append(frame);
}

void Server::send_error(const std::shared_ptr<Connection>& conn, ErrCode code,
                        const std::string& message) {
  std::string payload;
  encode_error({code, message}, &payload);
  send_frame(conn, MsgType::kError, payload);
}

void Server::close_connection(const std::shared_ptr<Connection>& conn) {
  if (conn->closed.exchange(true, std::memory_order_acq_rel)) return;
  ::shutdown(conn->fd, SHUT_RDWR);
  ::close(conn->fd);
  size_t open = 0;
  for (auto& [fd, c] : connections_) {
    if (!c->closed.load(std::memory_order_acquire)) ++open;
  }
  metrics_->connections.set(static_cast<double>(open));
}

}  // namespace net
}  // namespace ibseg
