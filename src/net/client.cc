#include "net/client.h"

#include <arpa/inet.h>
#include <netinet/in.h>
#include <netinet/tcp.h>
#include <sys/socket.h>
#include <sys/time.h>
#include <unistd.h>

#include <cerrno>
#include <cmath>
#include <cstring>
#include <utility>

namespace ibseg {
namespace net {

namespace {

void set_io_timeout(int fd, double seconds) {
  if (seconds <= 0) return;
  timeval tv;
  tv.tv_sec = static_cast<time_t>(seconds);
  tv.tv_usec = static_cast<suseconds_t>(
      (seconds - std::floor(seconds)) * 1e6);
  ::setsockopt(fd, SOL_SOCKET, SO_RCVTIMEO, &tv, sizeof(tv));
  ::setsockopt(fd, SOL_SOCKET, SO_SNDTIMEO, &tv, sizeof(tv));
}

}  // namespace

std::unique_ptr<Client> Client::connect(const std::string& host,
                                        uint16_t port, double timeout_sec) {
  const std::string addr_text = host == "localhost" ? "127.0.0.1" : host;
  sockaddr_in addr;
  std::memset(&addr, 0, sizeof(addr));
  addr.sin_family = AF_INET;
  addr.sin_port = htons(port);
  if (::inet_pton(AF_INET, addr_text.c_str(), &addr.sin_addr) != 1) {
    return nullptr;
  }
  int fd = ::socket(AF_INET, SOCK_STREAM, 0);
  if (fd < 0) return nullptr;
  set_io_timeout(fd, timeout_sec);
  if (::connect(fd, reinterpret_cast<sockaddr*>(&addr), sizeof(addr)) != 0) {
    ::close(fd);
    return nullptr;
  }
  int one = 1;
  ::setsockopt(fd, IPPROTO_TCP, TCP_NODELAY, &one, sizeof(one));
  return std::unique_ptr<Client>(new Client(fd, timeout_sec));
}

Client::Client(int fd, double timeout_sec)
    : fd_(fd), timeout_sec_(timeout_sec) {}

Client::~Client() {
  if (fd_ >= 0) ::close(fd_);
}

bool Client::send_all(std::string_view bytes, std::string* error) {
  size_t off = 0;
  while (off < bytes.size()) {
    ssize_t n = ::send(fd_, bytes.data() + off, bytes.size() - off,
                       MSG_NOSIGNAL);
    if (n > 0) {
      off += static_cast<size_t>(n);
      continue;
    }
    if (n < 0 && errno == EINTR) continue;
    *error = std::string("send: ") + std::strerror(errno);
    return false;
  }
  return true;
}

bool Client::recv_frame(MsgType* type, std::string* payload,
                        std::string* error) {
  char buf[65536];
  while (true) {
    FrameHeader header;
    DecodeStatus status = decode_frame_header(
        reinterpret_cast<const uint8_t*>(buffer_.data()), buffer_.size(),
        &header);
    if (status == DecodeStatus::kMalformed) {
      *error = "malformed response frame";
      return false;
    }
    if (status == DecodeStatus::kOk &&
        buffer_.size() >= kFrameHeaderBytes + header.payload_len) {
      *type = header.type;
      payload->assign(buffer_, kFrameHeaderBytes, header.payload_len);
      buffer_.erase(0, kFrameHeaderBytes + header.payload_len);
      return true;
    }
    ssize_t n = ::recv(fd_, buf, sizeof(buf), 0);
    if (n > 0) {
      buffer_.append(buf, static_cast<size_t>(n));
      continue;
    }
    if (n < 0 && errno == EINTR) continue;
    *error = n == 0 ? "connection closed by server"
                    : std::string("recv: ") + std::strerror(errno);
    return false;
  }
}

CallResult Client::call(MsgType type, std::string_view payload,
                        MsgType* resp_type, std::string* resp_payload) {
  CallResult result;
  *resp_type = MsgType::kError;
  std::string frame;
  encode_frame(type, payload, &frame);
  if (!send_all(frame, &result.transport_error)) return result;
  if (!recv_frame(resp_type, resp_payload, &result.transport_error)) {
    return result;
  }
  result.transport_ok = true;
  result.response_type = *resp_type;
  if (*resp_type == MsgType::kError &&
      !decode_error(*resp_payload, &result.error)) {
    result.transport_ok = false;
    result.transport_error = "undecodable error response";
  }
  return result;
}

namespace {

/// Shared tail of the typed helpers: expect `want`, decode with `decode`.
template <typename T, typename DecodeFn>
CallResult expect(CallResult result, MsgType got, MsgType want,
                  const std::string& payload, DecodeFn decode, T* out) {
  if (!result.transport_ok || got == MsgType::kError) return result;
  if (got != want || !decode(payload, out)) {
    result.transport_ok = false;
    result.transport_error = "unexpected or undecodable response";
  }
  return result;
}

}  // namespace

CallResult Client::ping(PongResponse* out) {
  MsgType type = MsgType::kError;
  std::string payload;
  CallResult result = call(MsgType::kPing, {}, &type, &payload);
  return expect(std::move(result), type, MsgType::kPong, payload, decode_pong,
                out);
}

CallResult Client::query(DocId doc_id, uint32_t k, RelatedResponse* out) {
  std::string req;
  encode_query({doc_id, k}, &req);
  MsgType type = MsgType::kError;
  std::string payload;
  CallResult result = call(MsgType::kQuery, req, &type, &payload);
  return expect(std::move(result), type, MsgType::kRelated, payload,
                decode_related, out);
}

CallResult Client::ask(const std::string& text, uint32_t k,
                       RelatedResponse* out) {
  std::string req;
  encode_ask({k, text}, &req);
  MsgType type = MsgType::kError;
  std::string payload;
  CallResult result = call(MsgType::kAsk, req, &type, &payload);
  return expect(std::move(result), type, MsgType::kRelated, payload,
                decode_related, out);
}

CallResult Client::add_post(const std::string& text, DocId* id_out) {
  std::string req;
  encode_add_post({text}, &req);
  MsgType type = MsgType::kError;
  std::string payload;
  AddedResponse added;
  CallResult call_result = call(MsgType::kAddPost, req, &type, &payload);
  CallResult result = expect(std::move(call_result), type, MsgType::kAdded,
                             payload, decode_added, &added);
  if (result.ok()) {
    if (added.ids.size() != 1) {
      result.transport_ok = false;
      result.transport_error = "add_post acked with != 1 id";
    } else {
      *id_out = added.ids[0];
    }
  }
  return result;
}

CallResult Client::add_posts(const std::vector<std::string>& texts,
                             std::vector<DocId>* ids_out) {
  AddPostsRequest request;
  request.texts = texts;
  std::string req;
  encode_add_posts(request, &req);
  MsgType type = MsgType::kError;
  std::string payload;
  AddedResponse added;
  CallResult call_result = call(MsgType::kAddPosts, req, &type, &payload);
  CallResult result = expect(std::move(call_result), type, MsgType::kAdded,
                             payload, decode_added, &added);
  if (result.ok()) *ids_out = std::move(added.ids);
  return result;
}

CallResult Client::save() {
  MsgType type = MsgType::kError;
  std::string payload;
  CallResult result = call(MsgType::kSave, {}, &type, &payload);
  if (result.transport_ok && type != MsgType::kError &&
      (type != MsgType::kSaved || !payload.empty())) {
    result.transport_ok = false;
    result.transport_error = "unexpected save response";
  }
  return result;
}

CallResult Client::metrics(uint8_t format, std::string* body_out) {
  std::string req;
  encode_metrics({format}, &req);
  MsgType type = MsgType::kError;
  std::string payload;
  MetricsDataResponse data;
  CallResult call_result = call(MsgType::kMetrics, req, &type, &payload);
  CallResult result = expect(std::move(call_result), type,
                             MsgType::kMetricsData, payload,
                             decode_metrics_data, &data);
  if (result.ok()) *body_out = std::move(data.body);
  return result;
}

CallResult Client::recluster(ReclusteredResponse* out) {
  MsgType type = MsgType::kError;
  std::string payload;
  CallResult result = call(MsgType::kRecluster, {}, &type, &payload);
  return expect(std::move(result), type, MsgType::kReclustered, payload,
                decode_reclustered, out);
}

CallResult Client::tenant_open(const std::string& name,
                               TenantOpenedResponse* out) {
  std::string req_payload;
  encode_tenant_open({name}, &req_payload);
  MsgType type = MsgType::kError;
  std::string payload;
  CallResult result = call(MsgType::kTenantOpen, req_payload, &type,
                           &payload);
  return expect(std::move(result), type, MsgType::kTenantOpened, payload,
                decode_tenant_opened, out);
}

CallResult Client::tenant_list(TenantListingResponse* out) {
  MsgType type = MsgType::kError;
  std::string payload;
  CallResult result = call(MsgType::kTenantList, {}, &type, &payload);
  return expect(std::move(result), type, MsgType::kTenantListing, payload,
                decode_tenant_listing, out);
}

CallResult Client::subscribe_wal(const SubscribeWalRequest& req,
                                 WalSegmentResponse* out) {
  std::string req_payload;
  encode_subscribe_wal(req, &req_payload);
  MsgType type = MsgType::kError;
  std::string payload;
  CallResult result = call(MsgType::kSubscribeWal, req_payload, &type,
                           &payload);
  return expect(std::move(result), type, MsgType::kWalSegment, payload,
                decode_wal_segment, out);
}

CallResult Client::wal_ack(uint64_t acked_seq, const std::string& replica_id) {
  std::string req_payload;
  encode_wal_ack({acked_seq, replica_id}, &req_payload);
  MsgType type = MsgType::kError;
  std::string payload;
  CallResult result = call(MsgType::kWalAck, req_payload, &type, &payload);
  if (result.transport_ok && type != MsgType::kError &&
      (type != MsgType::kWalAcked || !payload.empty())) {
    result.transport_ok = false;
    result.transport_error = "unexpected wal_ack response";
  }
  return result;
}

CallResult Client::snapshot_list(SnapshotListingResponse* out) {
  MsgType type = MsgType::kError;
  std::string payload;
  CallResult result = call(MsgType::kSnapshotList, {}, &type, &payload);
  return expect(std::move(result), type, MsgType::kSnapshotListing, payload,
                decode_snapshot_listing, out);
}

CallResult Client::snapshot_chunk(const SnapshotChunkRequest& req,
                                  SnapshotDataResponse* out) {
  std::string req_payload;
  encode_snapshot_chunk(req, &req_payload);
  MsgType type = MsgType::kError;
  std::string payload;
  CallResult result = call(MsgType::kSnapshotChunk, req_payload, &type,
                           &payload);
  return expect(std::move(result), type, MsgType::kSnapshotData, payload,
                decode_snapshot_data, out);
}

CallResult Client::drain() {
  MsgType type = MsgType::kError;
  std::string payload;
  CallResult result = call(MsgType::kDrain, {}, &type, &payload);
  if (result.transport_ok && type != MsgType::kError &&
      (type != MsgType::kDraining || !payload.empty())) {
    result.transport_ok = false;
    result.transport_error = "unexpected drain response";
  }
  return result;
}

}  // namespace net
}  // namespace ibseg
