#ifndef IBSEG_NET_SERVER_H_
#define IBSEG_NET_SERVER_H_

#include <atomic>
#include <condition_variable>
#include <cstdint>
#include <deque>
#include <map>
#include <memory>
#include <mutex>
#include <string>
#include <thread>
#include <vector>

#include "core/recluster.h"
#include "core/sharded_serving.h"
#include "core/tenant_registry.h"
#include "net/frame.h"
#include "obs/clock.h"
#include "obs/metrics.h"

namespace ibseg {
namespace net {

/// \brief Tuning knobs of the network front-end. Every limit here is part
/// of the documented operator surface — docs/OPERATIONS.md explains how
/// to size them and which ibseg_net_* metric watches each one.
struct ServerOptions {
  /// Address to bind (default loopback; use "0.0.0.0" to serve remotely).
  std::string bind_address = "127.0.0.1";

  /// TCP port; 0 binds an ephemeral port (read it back via Server::port()
  /// — the test/bench path, and ibseg_server --port-file).
  uint16_t port = 0;

  /// Worker threads executing requests against the backend. Queries run
  /// under the backend's shared locks, so workers scale reads; sizing
  /// guidance in docs/OPERATIONS.md §3.
  int num_workers = 2;

  /// Maximum simultaneously open client connections. The accept loop
  /// answers the connection beyond the limit with ERROR/OVERLOADED and
  /// closes it (counted in ibseg_net_rejected_total{reason="conn_limit"}).
  size_t max_connections = 256;

  /// Admission control: maximum requests admitted (queued + executing)
  /// across all connections. A request arriving above the bound is
  /// answered immediately with ERROR/OVERLOADED — never silently dropped
  /// (ibseg_net_rejected_total{reason="overloaded"}).
  size_t max_in_flight = 64;

  /// Per-connection write backpressure: while a connection's pending
  /// output exceeds this, the server neither reads nor parses further
  /// requests from it (a client that pipelines but does not drain
  /// responses throttles only itself).
  size_t max_output_bytes = 4u * 1024u * 1024u;

  /// Deadline for a request to *start executing*. A request that waited
  /// in the dispatch queue longer than this is answered with
  /// ERROR/TIMEOUT instead of being executed
  /// (ibseg_net_rejected_total{reason="timeout"}). Requests already
  /// executing are never cancelled mid-scoring.
  double request_timeout_sec = 5.0;

  /// Connections with no traffic in either direction for this long are
  /// closed (0 disables). Keeps abandoned sockets from pinning
  /// max_connections slots.
  double idle_timeout_sec = 300.0;

  /// Directory the SAVE command persists to, and the drain path's final
  /// publication barrier (ShardedServing::save: snapshot every shard,
  /// commit the manifest, truncate the WALs). Empty disables SAVE
  /// (answered with ERROR/UNSUPPORTED) and skips the save-on-drain.
  std::string state_dir;

  /// Background re-clustering triggers (docs/ARCHITECTURE.md §9). With
  /// any trigger enabled the server owns a ReclusterWorker: started with
  /// the listener, stopped (joined, any in-flight epoch completed) during
  /// drain BEFORE the final save. Admin clients can also force an epoch
  /// at any time with the RECLUSTER command, worker or not.
  ReclusterPolicy recluster;

  /// Test-only: artificial delay inside every request handler, to make
  /// overload/timeout windows deterministic in tests. Never set in
  /// production.
  int debug_handler_delay_ms = 0;

  /// Read fan-out (docs/ARCHITECTURE.md §10): "host:port" addresses of
  /// read replicas QUERY/ASK requests are load-balanced across
  /// (round-robin, skipping unhealthy or busy channels). Empty disables
  /// fan-out — every query executes locally.
  std::vector<std::string> read_replicas;

  /// Staleness bound for fan-out: a replica answer whose observed epoch
  /// trails the local backend's by more than this many publications is
  /// discarded and the query is served locally. 0 = replicas must be
  /// fully caught up at answer time for their answer to be used.
  uint64_t replica_staleness = 0;

  /// After a replica channel fails (connect or call), it is skipped for
  /// this long before the next attempt.
  double replica_retry_sec = 1.0;

  /// Replica role: reject the mutating commands (ADD_POST, ADD_POSTS,
  /// RECLUSTER) with ERROR/UNSUPPORTED. Replicas mutate only through
  /// applied WAL segments — a local ingest would fork their history.
  /// SAVE/DRAIN stay available (they persist the replica's own state),
  /// and SUBSCRIBE_WAL stays available too (chained replication).
  bool read_only = false;

  /// Per-tenant admission cap: maximum requests admitted (queued +
  /// executing) for any single tenant. 0 (the default) means no tighter
  /// bound than max_in_flight. With multiple tenants, setting this below
  /// max_in_flight guarantees a flooding tenant leaves admission slots
  /// for the others — the first half of the fairness story; the
  /// deficit-round-robin dequeue is the second
  /// (ibseg_net_rejected_total{reason="overloaded"} counts both caps).
  size_t tenant_max_in_flight = 0;

  /// Deficit-round-robin quantum, in frame bytes per scheduling turn.
  /// Workers dequeue per-tenant queues round-robin; each turn a tenant's
  /// deficit grows by this many bytes and requests are only served while
  /// the deficit covers their frame size (header + payload). Cheap
  /// QUERY frames cost ~20 bytes, jumbo ADD_POSTS batches cost their
  /// full payload — so a tenant streaming megabyte batches consumes its
  /// turns proportionally and cannot starve light tenants
  /// (docs/ARCHITECTURE.md §11).
  size_t fair_quantum_bytes = 8192;
};

/// \brief The TCP serving front-end: speaks the docs/PROTOCOL.md wire
/// protocol and dispatches into a ShardedServing backend.
///
/// Threading model (docs/ARCHITECTURE.md §8): one I/O thread owns every
/// socket and runs a poll(2) readiness loop — accepting, reading frames
/// into per-connection buffers, writing queued responses, enforcing the
/// connection limit, write backpressure and idle timeouts. Complete
/// well-framed requests are handed to a fixed worker pool through a
/// bounded queue (the max_in_flight admission bound); workers execute
/// against the backend (queries under its shared locks, ingests through
/// its global publication path), encode the response and hand the bytes
/// back to the I/O thread via the connection's output buffer and a wake
/// pipe. At most one request per connection is admitted at a time:
/// responses are therefore trivially in request order, and a pipelining
/// client's buffered requests are parsed one-by-one as its responses
/// drain (PROTOCOL.md §6).
///
/// Lifecycle: construct over a backend (not owned), start(), then either
/// wait_drained() — blocks until a DRAIN command or drain() call — or
/// drain() directly (the SIGTERM handler path in ibseg_server). Drain
/// stops accepting, answers new requests with ERROR/DRAINING, lets
/// in-flight requests finish, flushes every output buffer, closes all
/// sockets, stops the workers, and finally — when state_dir is set —
/// runs ShardedServing::save(state_dir) under the global publication
/// lock, so every acknowledged ingest is durable before drain() returns
/// (the drain-loses-nothing test's contract).
class Server {
 public:
  /// \param backend the serving deployment requests execute against; not
  ///   owned, must outlive the server
  /// \param options tuning knobs (copied)
  Server(ShardedServing* backend, ServerOptions options);

  /// Multi-tenant serving: requests route to the tenant their connection
  /// bound with TENANT_OPEN (default tenant otherwise — pre-tenant
  /// clients keep working byte-identically). SAVE and the snapshot
  /// bootstrap serve each tenant's own state directory
  /// (registry->state_dir), options.state_dir is ignored, and the drain
  /// barrier saves EVERY tenant. The recluster worker (when enabled)
  /// watches the default tenant only; other tenants recluster via the
  /// wire command on a bound connection.
  /// \param tenants the tenant set; not owned, must outlive the server
  /// \param options tuning knobs (copied)
  Server(TenantRegistry* tenants, ServerOptions options);

  /// Drains (if still running) and releases everything.
  ~Server();

  Server(const Server&) = delete;
  Server& operator=(const Server&) = delete;

  /// \brief Binds, listens and spawns the I/O thread + worker pool.
  /// Returns false (with errno-style detail on stderr) when the socket
  /// cannot be bound.
  bool start();

  /// \brief The bound TCP port (valid after start(); resolves port 0).
  uint16_t port() const { return port_; }

  /// \brief True once a drain was initiated (DRAIN command, drain(), or
  /// destructor).
  bool draining() const {
    return draining_.load(std::memory_order_acquire);
  }

  /// \brief Initiates a graceful drain (idempotent, callable from any
  /// non-worker thread and from signal-handler-adjacent contexts via
  /// Server::drain on the main thread) and blocks until the drain is
  /// complete — network quiesced, workers joined, state saved.
  void drain();

  /// \brief Blocks until a drain completes, whichever side initiates it
  /// (a remote DRAIN command or a local drain() call). The serve loop of
  /// ibseg_server is exactly this call.
  void wait_drained();

 private:
  struct Connection;
  struct Work;
  struct Metrics;
  struct ReplicaChannel;

  void io_loop();
  void worker_loop();

  /// Accepts as many pending connections as the limit allows; beyond it,
  /// answers ERROR/OVERLOADED and closes immediately.
  void accept_ready();

  /// Reads available bytes, then parses + dispatches complete frames
  /// while the connection may admit work (no in-flight request, output
  /// under the backpressure bound).
  void connection_readable(const std::shared_ptr<Connection>& conn);

  /// Flushes as much pending output as the socket accepts.
  void connection_writable(const std::shared_ptr<Connection>& conn);

  /// Parses frames out of conn->input; returns false when the stream is
  /// unrecoverable (malformed frame) and the connection must close.
  bool parse_frames(const std::shared_ptr<Connection>& conn);

  /// Admission + queueing of one well-framed request. TENANT_OPEN /
  /// TENANT_LIST execute inline here on the I/O thread (registry lookups,
  /// no backend work) — which makes the connection's tenant binding
  /// I/O-thread-private state, no lock needed.
  void dispatch(const std::shared_ptr<Connection>& conn, MsgType type,
                std::string payload);

  /// Deficit-round-robin dequeue across the per-tenant queues. Caller
  /// holds queue_mu_ and guarantees queued_total_ > 0.
  Work pop_next_locked();

  /// Executes one request against the backend (worker context).
  void execute(const Work& work, MsgType* type, std::string* payload);

  /// Tries to answer a QUERY/ASK by forwarding its raw payload to a read
  /// replica (round-robin over healthy, idle channels). On success the
  /// replica's RELATED payload is passed through byte-for-byte — replicas
  /// are bit-identical at frame boundaries, so the bytes ARE the local
  /// answer. Returns false (serve locally) when no channel is usable or
  /// every usable answer violates the staleness bound.
  bool forward_to_replica(MsgType type, const std::string& payload,
                          std::string* resp_payload);

  /// Appends an encoded frame to the connection's output (any thread).
  void send_frame(const std::shared_ptr<Connection>& conn, MsgType type,
                  std::string_view payload);

  void send_error(const std::shared_ptr<Connection>& conn, ErrCode code,
                  const std::string& message);

  void close_connection(const std::shared_ptr<Connection>& conn);

  /// Marks drain as requested and wakes the I/O thread (lock-free; safe
  /// from workers).
  void request_drain();

  /// Runs the quiesce-join-save tail of a drain exactly once.
  void finish_drain();

  void wake_io();

  ShardedServing* backend_;
  /// Non-null in multi-tenant mode; backend_ is then the default
  /// tenant's backend. The tenant set (and thus every map below keyed by
  /// tenant name) is fixed at construction.
  TenantRegistry* tenants_ = nullptr;
  ServerOptions options_;
  uint16_t port_ = 0;

  /// Present iff options_.recluster enables a trigger; lifecycle bound to
  /// start()/finish_drain().
  std::unique_ptr<ReclusterWorker> recluster_worker_;

  int listen_fd_ = -1;
  int wake_fds_[2] = {-1, -1};  ///< self-pipe: [0] read (polled), [1] write

  std::thread io_thread_;
  std::vector<std::thread> workers_;

  std::atomic<bool> started_{false};
  std::atomic<bool> draining_{false};
  std::atomic<bool> net_quiesced_{false};
  std::atomic<bool> workers_stop_{false};

  /// Admitted (queued + executing) request count — the admission bound.
  std::atomic<size_t> in_flight_{0};

  /// Connections, keyed by fd. Owned by the I/O thread; the map itself is
  /// only touched there. Workers hold shared_ptrs and touch only the
  /// mutex-guarded output side of a Connection.
  std::map<int, std::shared_ptr<Connection>> connections_;

  /// Per-tenant scheduling state. The worker queue is one FIFO per
  /// tenant plus a round-robin ring of tenants with queued work;
  /// pop_next_locked() implements deficit round robin over the ring
  /// (docs/ARCHITECTURE.md §11). Everything here is guarded by
  /// queue_mu_; the map's KEY SET is fixed at construction (one entry
  /// per tenant), so holding a TenantQueue* across an unlock is safe.
  struct TenantQueue {
    std::deque<Work> queue;
    size_t deficit = 0;    ///< DRR byte budget carried into this turn
    size_t in_flight = 0;  ///< admitted (queued + executing) requests
    bool active = false;   ///< true iff present in active_
    obs::Histogram* queue_seconds = nullptr;  ///< ibseg_tenant_queue_seconds
  };
  std::mutex queue_mu_;
  std::condition_variable queue_cv_;
  std::map<std::string, TenantQueue> tenant_queues_;  ///< guarded by queue_mu_
  std::deque<std::string> active_;  ///< DRR ring, guarded by queue_mu_
  size_t queued_total_ = 0;         ///< guarded by queue_mu_

  std::mutex lifecycle_mu_;
  std::condition_variable lifecycle_cv_;
  bool drain_finishing_ = false;  ///< guarded by lifecycle_mu_
  bool drain_finished_ = false;   ///< guarded by lifecycle_mu_

  /// One pooled connection per configured read replica (built in the
  /// constructor, connected lazily). Workers try-lock a channel; a busy
  /// channel is simply skipped for the next one.
  std::vector<std::unique_ptr<ReplicaChannel>> replica_channels_;
  std::atomic<size_t> replica_rr_{0};  ///< round-robin cursor

  std::unique_ptr<Metrics> metrics_;
};

}  // namespace net
}  // namespace ibseg

#endif  // IBSEG_NET_SERVER_H_
