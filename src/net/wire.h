#ifndef IBSEG_NET_WIRE_H_
#define IBSEG_NET_WIRE_H_

#include <bit>
#include <cstddef>
#include <cstdint>
#include <cstring>
#include <string>
#include <string_view>

namespace ibseg {
namespace net {

/// \brief Bounds-checked little-endian primitive codec shared by every
/// wire-format reader and writer in `src/net`.
///
/// All multi-byte integers on the wire are **little-endian** and all
/// floating-point values travel as the raw IEEE-754 bit pattern of a
/// little-endian u64 (docs/PROTOCOL.md §2). Encoding through std::bit_cast
/// of the double's bits — never through a textual round trip — is what
/// lets a remote client compare scores **bit-identically** against an
/// in-process query: the differential loopback test asserts operator== on
/// the reassembled doubles.
///
/// WireReader is a non-owning cursor over a payload view. Every read
/// checks the remaining byte count first and, on underrun, marks the
/// reader failed and returns a zero value; callers check ok() once at the
/// end (or at structural decision points such as list counts) instead of
/// after every field. A failed reader never reads further — the failure
/// latches — so truncation anywhere inside a compound payload is always
/// detected, which the every-prefix-truncation tests rely on.
class WireReader {
 public:
  /// \param data payload bytes (not owned; must outlive the reader)
  explicit WireReader(std::string_view data) : data_(data) {}

  /// \brief True while no read has underrun the buffer.
  bool ok() const { return ok_; }

  /// \brief Bytes not yet consumed.
  size_t remaining() const { return data_.size() - pos_; }

  /// \brief True when the payload was consumed exactly (and nothing
  /// failed). Decoders require this: trailing garbage is a malformed
  /// payload, not padding (docs/PROTOCOL.md §2).
  bool exhausted() const { return ok_ && pos_ == data_.size(); }

  uint8_t read_u8() {
    if (!require(1)) return 0;
    return static_cast<uint8_t>(data_[pos_++]);
  }

  uint16_t read_u16() {
    if (!require(2)) return 0;
    uint16_t v = static_cast<uint16_t>(
        static_cast<uint8_t>(data_[pos_]) |
        static_cast<uint16_t>(static_cast<uint8_t>(data_[pos_ + 1])) << 8);
    pos_ += 2;
    return v;
  }

  uint32_t read_u32() {
    if (!require(4)) return 0;
    uint32_t v = 0;
    for (int i = 3; i >= 0; --i) {
      v = (v << 8) | static_cast<uint8_t>(data_[pos_ + static_cast<size_t>(i)]);
    }
    pos_ += 4;
    return v;
  }

  uint64_t read_u64() {
    if (!require(8)) return 0;
    uint64_t v = 0;
    for (int i = 7; i >= 0; --i) {
      v = (v << 8) | static_cast<uint8_t>(data_[pos_ + static_cast<size_t>(i)]);
    }
    pos_ += 8;
    return v;
  }

  /// \brief A double as its raw IEEE-754 bits in a little-endian u64 —
  /// the bit-identity-preserving float encoding.
  double read_f64() { return std::bit_cast<double>(read_u64()); }

  /// \brief `len` raw bytes (typically preceded by a length field).
  /// Returns an empty view on underrun.
  std::string_view read_bytes(size_t len) {
    if (!require(len)) return {};
    std::string_view v = data_.substr(pos_, len);
    pos_ += len;
    return v;
  }

 private:
  bool require(size_t n) {
    if (!ok_ || data_.size() - pos_ < n) {
      ok_ = false;
      return false;
    }
    return true;
  }

  std::string_view data_;
  size_t pos_ = 0;
  bool ok_ = true;
};

/// \brief Append-only little-endian writer over a caller-owned string.
/// The inverse of WireReader; infallible (the string grows).
class WireWriter {
 public:
  /// \param out destination buffer, appended to (not cleared)
  explicit WireWriter(std::string* out) : out_(out) {}

  void write_u8(uint8_t v) { out_->push_back(static_cast<char>(v)); }

  void write_u16(uint16_t v) {
    write_u8(static_cast<uint8_t>(v));
    write_u8(static_cast<uint8_t>(v >> 8));
  }

  void write_u32(uint32_t v) {
    for (int i = 0; i < 4; ++i) write_u8(static_cast<uint8_t>(v >> (8 * i)));
  }

  void write_u64(uint64_t v) {
    for (int i = 0; i < 8; ++i) write_u8(static_cast<uint8_t>(v >> (8 * i)));
  }

  /// \brief IEEE-754 bits as a little-endian u64 (see WireReader::read_f64).
  void write_f64(double v) { write_u64(std::bit_cast<uint64_t>(v)); }

  void write_bytes(std::string_view bytes) {
    out_->append(bytes.data(), bytes.size());
  }

 private:
  std::string* out_;
};

}  // namespace net
}  // namespace ibseg

#endif  // IBSEG_NET_WIRE_H_
