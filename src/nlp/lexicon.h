#ifndef IBSEG_NLP_LEXICON_H_
#define IBSEG_NLP_LEXICON_H_

#include <optional>
#include <string>
#include <string_view>
#include <unordered_map>
#include <unordered_set>

#include "nlp/pos_tag.h"

namespace ibseg {

/// Entry for an irregular verb form.
struct IrregularVerbForm {
  Pos tag;  // kVerbPast or kVerbPastPart (or kVerbBase for suppletives)
};

/// Hand-built English lexicon backing the rule-based POS tagger. Covers the
/// closed classes exhaustively and the open classes through (a) a frequent
/// verb list tuned to forum language and (b) an irregular-verb table; the
/// tagger falls back to suffix morphology for everything else.
///
/// Thread-safe after construction; obtain the process-wide instance through
/// `lexicon()`.
class Lexicon {
 public:
  Lexicon();

  Lexicon(const Lexicon&) = delete;
  Lexicon& operator=(const Lexicon&) = delete;

  /// Closed-class lookup: returns the tag when `lower` is a known
  /// closed-class word (pronoun, aux, modal, determiner, preposition,
  /// conjunction, wh-word, negation, "to").
  std::optional<Pos> closed_class(std::string_view lower) const;

  /// Irregular verb-form lookup ("went" -> past, "gone" -> past participle).
  std::optional<IrregularVerbForm> irregular_verb(std::string_view lower) const;

  /// True when `lower` is the base form of a known (frequent) verb.
  bool is_known_verb_base(std::string_view lower) const;

  /// True when `lower` is a known adjective that suffix rules misclassify.
  bool is_known_adjective(std::string_view lower) const;

  /// True when `lower` is a known adverb without the -ly suffix.
  bool is_known_adverb(std::string_view lower) const;

  /// True when `lower` is a known common noun that looks like a verb form
  /// ("meeting", "building", "rating").
  bool is_known_noun(std::string_view lower) const;

 private:
  std::unordered_map<std::string, Pos> closed_;
  std::unordered_map<std::string, IrregularVerbForm> irregular_;
  std::unordered_set<std::string> verbs_;
  std::unordered_set<std::string> adjectives_;
  std::unordered_set<std::string> adverbs_;
  std::unordered_set<std::string> nouns_;
};

/// Process-wide lexicon instance (constructed on first use, never freed).
const Lexicon& lexicon();

}  // namespace ibseg

#endif  // IBSEG_NLP_LEXICON_H_
