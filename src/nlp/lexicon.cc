#include "nlp/lexicon.h"

#include <initializer_list>

namespace ibseg {
namespace {

void insert_all(std::unordered_map<std::string, Pos>& map, Pos tag,
                std::initializer_list<const char*> words) {
  for (const char* w : words) map.emplace(w, tag);
}

}  // namespace

Lexicon::Lexicon() {
  // --- Closed classes -------------------------------------------------
  insert_all(closed_, Pos::kPronoun1,
             {"i", "we", "me", "us", "my", "our", "mine", "ours", "myself",
              "ourselves"});
  insert_all(closed_, Pos::kPronoun2,
             {"you", "your", "yours", "yourself", "yourselves"});
  insert_all(closed_, Pos::kPronoun3,
             {"he", "she", "it", "they", "him", "her", "them", "his", "its",
              "their", "theirs", "hers", "himself", "herself", "itself",
              "themselves", "someone", "somebody", "anyone", "anybody",
              "everyone", "everybody", "something", "anything", "everything",
              "one"});
  insert_all(closed_, Pos::kAuxBe,
             {"am", "is", "are", "was", "were", "be", "been", "being", "'m",
              "'re"});
  insert_all(closed_, Pos::kAuxHave, {"have", "has", "had", "having", "'ve"});
  insert_all(closed_, Pos::kAuxDo, {"do", "does", "did"});
  insert_all(closed_, Pos::kModal,
             {"will", "would", "shall", "should", "can", "could", "may",
              "might", "must", "'ll", "'d", "cannot"});
  insert_all(closed_, Pos::kWhWord,
             {"what", "which", "who", "whom", "whose", "where", "when", "why",
              "how", "whether"});
  insert_all(closed_, Pos::kNegation,
             {"not", "n't", "never", "no", "none", "nothing", "nobody",
              "neither", "nor"});
  insert_all(closed_, Pos::kDeterminer,
             {"a", "an", "the", "this", "that", "these", "those", "some",
              "any", "each", "every", "all", "both", "another", "such"});
  insert_all(closed_, Pos::kPreposition,
             {"of", "in", "for", "with", "on", "at", "by", "from", "about",
              "as", "into", "like", "through", "after", "over", "between",
              "out", "against", "during", "without", "before", "under",
              "around", "among", "within", "across", "behind", "beyond",
              "near", "since", "despite", "onto", "upon", "via", "per",
              "off", "up", "down", "inside", "outside"});
  insert_all(closed_, Pos::kConjunction,
             {"and", "but", "or", "so", "because", "although", "though",
              "while", "if", "unless", "whereas", "until", "once", "than"});
  closed_.emplace("to", Pos::kTo);
  insert_all(closed_, Pos::kAdverb,
             {"very", "too", "also", "just", "still", "already", "again",
              "always", "often", "sometimes", "usually", "now", "then",
              "here", "there", "yesterday", "today", "tomorrow", "soon",
              "later", "recently", "finally", "really", "quite", "rather",
              "almost", "even", "only", "maybe", "perhaps", "however",
              "instead", "anyway", "meanwhile", "moreover", "please",
              "ago", "yet", "twice", "once", "definitely", "probably",
              "unfortunately", "luckily", "immediately", "eventually",
              "somewhere", "anywhere", "everywhere", "elsewhere", "voila",
              "ok", "okay", "well", "far", "ever"});

  // --- Irregular verbs -------------------------------------------------
  // Past tense forms.
  for (const char* w :
       {"went",  "said",    "made",   "got",     "took",   "came",  "saw",
        "knew",  "gave",    "found",  "thought", "told",   "became", "left",
        "felt",  "kept",    "held",   "wrote",   "stood",  "heard", "meant",
        "met",   "ran",     "paid",   "sat",     "spoke",  "lay",   "led",
        "grew",  "lost",    "fell",   "sent",    "built",  "understood",
        "drew",  "broke",   "spent",  "rose",    "drove",  "bought", "wore",
        "chose", "ate",     "began",  "woke",    "threw",  "flew",  "rode",
        "sold",  "brought", "caught", "taught",  "fought", "sought", "slept",
        "swam",  "sang",    "rang",   "won",     "shook",  "froze", "forgot",
        "bit",   "hid",     "laid",   "lent",    "bent",   "dealt", "dug",
        "hung",  "stuck",   "struck", "swept",   "tore",   "wound", "upgraded"}) {
    irregular_.emplace(w, IrregularVerbForm{Pos::kVerbPast});
  }
  // Past participles that differ from the simple past.
  for (const char* w :
       {"gone",   "taken",   "seen",    "known",   "given",  "written",
        "spoken", "grown",   "fallen",  "broken",  "risen",  "driven",
        "worn",   "chosen",  "eaten",   "begun",   "woken",  "thrown",
        "flown",  "ridden",  "sung",    "rung",    "shaken", "frozen",
        "forgotten", "bitten", "hidden", "torn",    "done",   "drawn",
        "swum",   "stood",   "become",  "come",    "run"}) {
    irregular_.emplace(w, IrregularVerbForm{Pos::kVerbPastPart});
  }
  // Invariant forms usable as past (context decides); tagged past here and
  // corrected to base by the tagger when preceded by to/modal.
  for (const char* w : {"put", "let", "cut", "set", "hit", "cost", "read",
                        "quit", "split", "shut", "hurt", "upset"}) {
    irregular_.emplace(w, IrregularVerbForm{Pos::kVerbBase});
  }

  // --- Frequent verb base forms (forum register) ------------------------
  for (const char* w :
       {"install",  "work",      "try",       "call",     "ask",
        "need",     "want",      "think",     "know",     "use",
        "run",      "stop",      "fail",      "get",      "make",
        "go",       "see",       "look",      "find",     "give",
        "tell",     "recommend", "stay",      "book",     "love",
        "hate",     "suggest",   "add",       "remove",   "upgrade",
        "download", "update",    "click",     "restart",  "reboot",
        "fix",      "solve",     "help",      "wonder",   "appreciate",
        "thank",    "hope",      "expect",    "plan",     "decide",
        "visit",    "arrive",    "return",    "check",    "buy",
        "pay",      "enjoy",     "describe",  "explain",  "write",
        "read",     "post",      "reply",     "happen",   "occur",
        "crash",    "freeze",    "print",     "connect",  "boot",
        "compile",  "throw",     "import",    "export",   "configure",
        "change",   "replace",   "degrade",   "perform",  "improve",
        "rebuild",  "reformat",  "suppose",   "seem",     "consider",
        "believe",  "guess",     "notice",    "report",   "manage",
        "attempt",  "start",     "begin",     "finish",   "complete",
        "open",     "close",     "turn",      "move",     "bring",
        "keep",     "hold",      "follow",    "search",   "browse",
        "order",    "cancel",    "confirm",   "travel",   "fly",
        "drive",    "walk",      "eat",       "drink",    "sleep",
        "relax",    "swim",      "spend",     "cost",     "include",
        "offer",    "provide",   "serve",     "clean",    "smell",
        "feel",     "sound",     "taste",     "like",     "prefer",
        "avoid",    "wait",      "leave",     "come",     "say",
        "take",     "wish",      "advise",    "share",    "mention",
        "contact",  "email",     "phone",     "refund",   "charge",
        "overheat", "shut",      "render",    "execute",  "debug",
        "deploy",   "build",     "test",      "parse",    "load",
        "save",     "delete",    "create",    "insert",   "select",
        "query",    "index",     "format",    "partition", "mount",
        "flash",    "swap",      "blink",     "beep",     "plug",
        "unplug",   "press",     "type",      "scroll",   "reinstall",
        "depend",   "touch",     "respond",   "behave",   "contain",
        "exist",    "remain",    "appear",    "require",  "receive",
        "prevent",  "cause",     "affect",    "reproduce", "monitor",
        "measure",  "track",     "reduce",    "increase", "schedule",
        "record",   "treat",     "trace",     "patch",    "wrap",
        "merge",    "deploy",    "refactor"}) {
    verbs_.insert(w);
  }

  // --- Adjectives that morphology misses ---------------------------------
  for (const char* w :
       {"good",   "bad",    "great",   "nice",    "new",     "old",
        "big",    "small",  "large",   "long",    "short",   "high",
        "low",    "slow",   "fast",    "quick",   "clean",   "dirty",
        "noisy",  "quiet",  "cheap",   "expensive", "free",  "busy",
        "full",   "empty",  "hot",     "cold",    "warm",    "cool",
        "right",  "wrong",  "same",    "different", "similar", "extra",
        "main",   "whole",  "entire",  "certain", "sure",    "ready",
        "fine",   "weird",  "strange", "odd",     "common",  "rare",
        "broken", "dead",   "stuck",   "frozen",  "loose",   "tight",
        "modern", "ancient", "friendly", "rude",  "polite",  "happy",
        "sad",    "angry",  "frustrated", "glad", "sorry",   "able",
        "unable", "available", "compatible", "incompatible", "stable",
        "unstable", "corrupt", "faulty", "defective", "brilliant",
        "adequate", "partial", "technical", "official", "pre-installed",
        "comfortable", "uncomfortable", "spacious", "cramped", "central",
        "perfect", "terrible", "awful", "amazing", "wonderful", "lovely",
        "cozy", "shabby", "overpriced", "underwhelming", "decent"}) {
    adjectives_.insert(w);
  }

  // --- Non -ly adverbs handled above in closed_; extra open-class adverbs -
  for (const char* w : {"online", "offline", "overnight", "upstairs",
                        "downstairs", "abroad", "nearby", "worldwide"}) {
    adverbs_.insert(w);
  }

  // --- Nouns that look like verb forms ------------------------------------
  for (const char* w :
       {"meeting",  "building",  "rating",   "setting",  "morning",
        "evening",  "booking",   "feeling",  "warning",  "housekeeping",
        "thing",    "nothing",   "something", "anything", "everything",
        "king",     "string",    "ring",     "spring",   "ceiling",
        "heating",  "lighting",  "parking",  "shopping", "wedding",
        "bed",      "shed",      "speed",    "feed",     "seed",
        "need",     "breed",     "thread",   "bread",    "head",
        "weekend",  "friend",    "end",      "hand",     "brand",
        "sound",    "round",     "background", "keyboard", "motherboard",
        "dashboard", "standard", "password",  "word",
        "world",    "field",     "child",     "gold",
        "cable",    "table",     "trouble",   "example",  "article",
        "people",   "couple",    "title",     "middle",   "bottle"}) {
    nouns_.insert(w);
  }
}

std::optional<Pos> Lexicon::closed_class(std::string_view lower) const {
  auto it = closed_.find(std::string(lower));
  if (it == closed_.end()) return std::nullopt;
  return it->second;
}

std::optional<IrregularVerbForm> Lexicon::irregular_verb(
    std::string_view lower) const {
  auto it = irregular_.find(std::string(lower));
  if (it == irregular_.end()) return std::nullopt;
  return it->second;
}

bool Lexicon::is_known_verb_base(std::string_view lower) const {
  return verbs_.count(std::string(lower)) > 0;
}

bool Lexicon::is_known_adjective(std::string_view lower) const {
  return adjectives_.count(std::string(lower)) > 0;
}

bool Lexicon::is_known_adverb(std::string_view lower) const {
  return adverbs_.count(std::string(lower)) > 0;
}

bool Lexicon::is_known_noun(std::string_view lower) const {
  return nouns_.count(std::string(lower)) > 0;
}

const Lexicon& lexicon() {
  static const Lexicon* kInstance = new Lexicon();
  return *kInstance;
}

}  // namespace ibseg
