#ifndef IBSEG_NLP_POS_TAGGER_H_
#define IBSEG_NLP_POS_TAGGER_H_

#include <vector>

#include "nlp/pos_tag.h"
#include "text/tokenizer.h"

namespace ibseg {

/// Rule-based part-of-speech tagger: closed-class lexicon lookup, an
/// irregular-verb table, suffix morphology, then a contextual correction
/// pass (Brill-style, hand-written rules). Coarse but deterministic; it
/// exists to drive the communication-means features of paper Table 1, not
/// to win tagging benchmarks.
///
/// Returns one tag per input token.
std::vector<Pos> tag_tokens(const std::vector<Token>& tokens);

}  // namespace ibseg

#endif  // IBSEG_NLP_POS_TAGGER_H_
