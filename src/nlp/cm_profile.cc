#include "nlp/cm_profile.h"

namespace ibseg {

const char* cm_name(CmKind cm) {
  switch (cm) {
    case CmKind::kTense: return "Tense";
    case CmKind::kSubject: return "Subject";
    case CmKind::kStyle: return "Style";
    case CmKind::kVoice: return "Status";
    case CmKind::kPos: return "PartOfSpeech";
  }
  return "?";
}

const char* cm_value_name(CmKind cm, int value) {
  switch (cm) {
    case CmKind::kTense:
      switch (value) {
        case 0: return "present";
        case 1: return "past";
        case 2: return "future";
      }
      break;
    case CmKind::kSubject:
      switch (value) {
        case 0: return "I/we";
        case 1: return "you";
        case 2: return "it/they/(s)he";
      }
      break;
    case CmKind::kStyle:
      switch (value) {
        case 0: return "interrog.";
        case 1: return "negative";
        case 2: return "affirmative";
      }
      break;
    case CmKind::kVoice:
      switch (value) {
        case 0: return "passive";
        case 1: return "active";
      }
      break;
    case CmKind::kPos:
      switch (value) {
        case 0: return "verb";
        case 1: return "noun";
        case 2: return "adj./adverb";
      }
      break;
  }
  return "?";
}

double CmProfile::cm_total(CmKind cm) const {
  double s = 0.0;
  for (int v = 0; v < kCmArity[static_cast<int>(cm)]; ++v) {
    s += count(cm, v);
  }
  return s;
}

double CmProfile::total() const {
  double s = 0.0;
  for (double c : counts) s += c;
  return s;
}

}  // namespace ibseg
