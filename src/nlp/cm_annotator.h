#ifndef IBSEG_NLP_CM_ANNOTATOR_H_
#define IBSEG_NLP_CM_ANNOTATOR_H_

#include <vector>

#include "nlp/cm_profile.h"
#include "nlp/pos_tag.h"
#include "text/sentence_splitter.h"
#include "text/tokenizer.h"

namespace ibseg {

/// Extracts one CmProfile per sentence from a tagged token stream. This is
/// the "CM annotation" step whose cost the paper includes in its
/// segmentation timings (Sec. 9.2.4).
///
/// Feature sources:
///  * CM_tense / CM_pasact: verb groups (see find_verb_groups);
///  * CM_subj: pronoun token counts by person;
///  * CM_qneg: sentence style — interrogative when the sentence ends with
///    '?' or opens with a wh-word or aux/modal inversion; negative when a
///    negation token occurs outside an interrogative frame; affirmative
///    otherwise (one count per sentence, plus one per extra negation);
///  * CM_pos: main-verb / noun / adjective+adverb token counts.
std::vector<CmProfile> annotate_sentences(const std::vector<Token>& tokens,
                                          const std::vector<Pos>& tags,
                                          const std::vector<Sentence>& sentences);

/// Convenience overload: tokenizes nothing, tags internally.
std::vector<CmProfile> annotate_sentences(const std::vector<Token>& tokens,
                                          const std::vector<Sentence>& sentences);

}  // namespace ibseg

#endif  // IBSEG_NLP_CM_ANNOTATOR_H_
