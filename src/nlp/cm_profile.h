#ifndef IBSEG_NLP_CM_PROFILE_H_
#define IBSEG_NLP_CM_PROFILE_H_

#include <array>
#include <cstddef>

namespace ibseg {

/// The five communication means of paper Table 1. Each CM is a categorical
/// variable; its values are the *features*.
enum class CmKind : int {
  kTense = 0,    // present | past | future
  kSubject = 1,  // I/we | you | it/they/(s)he
  kStyle = 2,    // interrogative | negative | affirmative   (CM_qneg)
  kVoice = 3,    // passive | active                         (CM_pasact)
  kPos = 4,      // verb | noun | adjective/adverb           (CM_pos)
};

/// Number of communication means.
inline constexpr int kNumCms = 5;

/// Arity (number of categorical values) of each CM, in CmKind order.
inline constexpr std::array<int, kNumCms> kCmArity = {3, 3, 3, 2, 3};

/// Total number of CM features (sum of arities) = 14; the paper's segment
/// feature vector is 2 * kNumCmFeatures = 28 elements (Sec. 6).
inline constexpr int kNumCmFeatures = 14;

/// Flat feature index of value `value` of communication mean `cm`.
constexpr int cm_feature_index(CmKind cm, int value) {
  int offset = 0;
  for (int c = 0; c < static_cast<int>(cm); ++c) offset += kCmArity[c];
  return offset + value;
}

/// Name of a CM ("Tense", "Subject", ...).
const char* cm_name(CmKind cm);

/// Name of a CM value ("present", "I/we", "interrog.", ...).
const char* cm_value_name(CmKind cm, int value);

/// Per-text-unit counts of CM feature occurrences: the raw material for the
/// distribution tables DSb_CM of Sec. 5.2 and the weight vectors of Sec. 6.
struct CmProfile {
  std::array<double, kNumCmFeatures> counts{};

  double count(CmKind cm, int value) const {
    return counts[cm_feature_index(cm, value)];
  }
  void add(CmKind cm, int value, double amount = 1.0) {
    counts[cm_feature_index(cm, value)] += amount;
  }
  /// Element-wise accumulation.
  void merge(const CmProfile& other) {
    for (size_t i = 0; i < counts.size(); ++i) counts[i] += other.counts[i];
  }
  /// Sum over the values of one CM (the "All" of Eq. 1).
  double cm_total(CmKind cm) const;
  /// Sum of all feature counts.
  double total() const;
};

}  // namespace ibseg

#endif  // IBSEG_NLP_CM_PROFILE_H_
