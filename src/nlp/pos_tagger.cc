#include "nlp/pos_tagger.h"

#include <string>

#include "nlp/lexicon.h"
#include "util/strings.h"

namespace ibseg {

const char* pos_name(Pos tag) {
  switch (tag) {
    case Pos::kNoun: return "NOUN";
    case Pos::kVerbBase: return "VB";
    case Pos::kVerbPresent3: return "VBZ";
    case Pos::kVerbPast: return "VBD";
    case Pos::kVerbPastPart: return "VBN";
    case Pos::kVerbGerund: return "VBG";
    case Pos::kModal: return "MD";
    case Pos::kAuxBe: return "BE";
    case Pos::kAuxHave: return "HV";
    case Pos::kAuxDo: return "DO";
    case Pos::kAdjective: return "ADJ";
    case Pos::kAdverb: return "ADV";
    case Pos::kPronoun1: return "PRP1";
    case Pos::kPronoun2: return "PRP2";
    case Pos::kPronoun3: return "PRP3";
    case Pos::kDeterminer: return "DET";
    case Pos::kPreposition: return "PREP";
    case Pos::kConjunction: return "CONJ";
    case Pos::kWhWord: return "WH";
    case Pos::kNegation: return "NEG";
    case Pos::kTo: return "TO";
    case Pos::kNumber: return "NUM";
    case Pos::kPunct: return "PUNCT";
    case Pos::kOther: return "OTHER";
  }
  return "?";
}

bool is_main_verb(Pos tag) {
  return tag == Pos::kVerbBase || tag == Pos::kVerbPresent3 ||
         tag == Pos::kVerbPast || tag == Pos::kVerbPastPart ||
         tag == Pos::kVerbGerund;
}

bool is_auxiliary(Pos tag) {
  return tag == Pos::kModal || tag == Pos::kAuxBe || tag == Pos::kAuxHave ||
         tag == Pos::kAuxDo;
}

namespace {

// Lexical tag: the best guess from the word alone.
Pos lexical_tag(const Token& token) {
  if (token.kind == TokenKind::kPunctuation) return Pos::kPunct;
  if (token.kind == TokenKind::kNumber) return Pos::kNumber;
  const std::string& w = token.lower;
  const Lexicon& lex = lexicon();

  if (auto closed = lex.closed_class(w)) return *closed;
  if (auto irr = lex.irregular_verb(w)) return irr->tag;
  if (lex.is_known_noun(w)) return Pos::kNoun;
  if (lex.is_known_adjective(w)) return Pos::kAdjective;
  if (lex.is_known_adverb(w)) return Pos::kAdverb;
  if (lex.is_known_verb_base(w)) return Pos::kVerbBase;

  // Suffix morphology; longest informative suffixes first.
  if (w.size() > 4 && ends_with(w, "ly")) return Pos::kAdverb;
  if (w.size() > 4 && ends_with(w, "ing")) {
    // "installing" -> gerund unless the -ing-less stem is unknown AND the
    // word is a lexicon noun (handled above).
    return Pos::kVerbGerund;
  }
  if (w.size() > 3 && ends_with(w, "ed")) return Pos::kVerbPast;
  if (w.size() > 5 && (ends_with(w, "tion") || ends_with(w, "sion") ||
                       ends_with(w, "ment") || ends_with(w, "ness") ||
                       ends_with(w, "ance") || ends_with(w, "ence") ||
                       ends_with(w, "ship") || ends_with(w, "hood"))) {
    return Pos::kNoun;
  }
  if (w.size() > 3 && (ends_with(w, "ity") || ends_with(w, "ism") ||
                       ends_with(w, "age") || ends_with(w, "ure"))) {
    return Pos::kNoun;
  }
  if (w.size() > 4 && (ends_with(w, "ful") || ends_with(w, "ous") ||
                       ends_with(w, "ive") || ends_with(w, "able") ||
                       ends_with(w, "ible") || ends_with(w, "less") ||
                       ends_with(w, "ish") || ends_with(w, "ical"))) {
    return Pos::kAdjective;
  }
  if (w.size() > 3 && (ends_with(w, "ize") || ends_with(w, "ise") ||
                       ends_with(w, "ify"))) {
    return Pos::kVerbBase;
  }
  if (w.size() > 4 && ends_with(w, "est")) return Pos::kAdjective;
  if (w.size() > 2 && ends_with(w, "s") && !ends_with(w, "ss") &&
      !ends_with(w, "us") && !ends_with(w, "is")) {
    // Plural noun or 3rd-person verb: if the s-less stem is a known verb
    // base, guess verb; contextual pass may override either way.
    std::string stem = w.substr(0, w.size() - 1);
    if (ends_with(stem, "e") && lex.is_known_verb_base(
                                    stem.substr(0, stem.size() - 1))) {
      return Pos::kVerbPresent3;
    }
    if (lex.is_known_verb_base(stem)) return Pos::kVerbPresent3;
    if (w.size() > 3 && ends_with(w, "ies") &&
        lex.is_known_verb_base(w.substr(0, w.size() - 3) + "y")) {
      return Pos::kVerbPresent3;
    }
    if (w.size() > 3 && ends_with(w, "es") &&
        lex.is_known_verb_base(w.substr(0, w.size() - 2))) {
      return Pos::kVerbPresent3;
    }
    return Pos::kNoun;
  }
  return Pos::kNoun;
}

// True when the token at `i` can start a verb phrase complement (used by
// the to/modal correction rules).
bool is_subject_pronoun(Pos tag) {
  return tag == Pos::kPronoun1 || tag == Pos::kPronoun2 ||
         tag == Pos::kPronoun3;
}

// Index of the previous non-adverb, non-negation tag, or npos.
size_t prev_content(const std::vector<Pos>& tags, size_t i) {
  while (i > 0) {
    --i;
    if (tags[i] != Pos::kAdverb && tags[i] != Pos::kNegation) return i;
  }
  return static_cast<size_t>(-1);
}

}  // namespace

std::vector<Pos> tag_tokens(const std::vector<Token>& tokens) {
  std::vector<Pos> tags(tokens.size());
  for (size_t i = 0; i < tokens.size(); ++i) tags[i] = lexical_tag(tokens[i]);

  const Lexicon& lex = lexicon();
  // Contextual corrections.
  for (size_t i = 0; i < tokens.size(); ++i) {
    size_t p = prev_content(tags, i);
    bool has_prev = p != static_cast<size_t>(-1);
    Pos prev = has_prev ? tags[p] : Pos::kOther;

    // to/modal/do + V -> base form ("to install", "did not work").
    if ((tags[i] == Pos::kVerbPast || tags[i] == Pos::kVerbPresent3) &&
        has_prev &&
        (prev == Pos::kTo || prev == Pos::kModal || prev == Pos::kAuxDo)) {
      tags[i] = Pos::kVerbBase;
      continue;
    }
    // have + VBD -> past participle ("have installed").
    if (tags[i] == Pos::kVerbPast && has_prev && prev == Pos::kAuxHave) {
      tags[i] = Pos::kVerbPastPart;
      continue;
    }
    // be + VBD -> past participle (passive: "was installed").
    if (tags[i] == Pos::kVerbPast && has_prev && prev == Pos::kAuxBe) {
      tags[i] = Pos::kVerbPastPart;
      continue;
    }
    // det/adj + gerund -> noun ("the booking", "a warning").
    if (tags[i] == Pos::kVerbGerund && has_prev &&
        (prev == Pos::kDeterminer || prev == Pos::kAdjective)) {
      tags[i] = Pos::kNoun;
      continue;
    }
    // det + base verb -> noun ("a try", "the fix").
    if (tags[i] == Pos::kVerbBase && has_prev && prev == Pos::kDeterminer) {
      tags[i] = Pos::kNoun;
      continue;
    }
    // subject pronoun + known verb stays a verb; subject pronoun + noun that
    // is a known verb base becomes a present-tense verb ("I print daily").
    if (tags[i] == Pos::kNoun && has_prev && is_subject_pronoun(prev) &&
        lex.is_known_verb_base(tokens[i].lower)) {
      tags[i] = Pos::kVerbBase;
      continue;
    }
    // modal/do + unknown word -> verb base ("cannot reproduce", "did
    // frobnicate"). kTo is deliberately excluded: it is also the
    // preposition ("to school").
    if (tags[i] == Pos::kNoun && has_prev &&
        (prev == Pos::kModal || prev == Pos::kAuxDo)) {
      tags[i] = Pos::kVerbBase;
      continue;
    }
    // noun + noun where the first could be adjective-like is left alone; the
    // CM features only need the coarse classes.
  }
  return tags;
}

}  // namespace ibseg
