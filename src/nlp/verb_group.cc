#include "nlp/verb_group.h"

#include <cassert>

namespace ibseg {
namespace {

bool is_group_element(Pos tag) {
  return is_main_verb(tag) || is_auxiliary(tag) || tag == Pos::kAdverb ||
         tag == Pos::kNegation || tag == Pos::kTo;
}

bool is_past_aux(const Token& t, Pos tag) {
  if (tag == Pos::kAuxBe) return t.lower == "was" || t.lower == "were";
  if (tag == Pos::kAuxDo) return t.lower == "did";
  if (tag == Pos::kAuxHave) return t.lower == "had";
  return false;
}

bool is_future_modal(const Token& t) {
  return t.lower == "will" || t.lower == "shall" || t.lower == "'ll" ||
         t.lower == "wo";  // "won't" tokenizes as "wo" + "n't"
}

}  // namespace

std::vector<VerbGroup> find_verb_groups(const std::vector<Token>& tokens,
                                        const std::vector<Pos>& tags,
                                        size_t begin, size_t end) {
  assert(tokens.size() == tags.size());
  assert(end <= tokens.size());
  std::vector<VerbGroup> groups;
  size_t i = begin;
  while (i < end) {
    if (!is_main_verb(tags[i]) && !is_auxiliary(tags[i])) {
      ++i;
      continue;
    }
    VerbGroup g;
    g.begin = i;
    bool saw_be = false;
    bool saw_have = false;
    bool saw_past_finite = false;
    bool saw_future = false;
    bool saw_going_to = false;
    Pos head = Pos::kOther;  // last main-verb tag in the group
    size_t j = i;
    size_t adverb_run = 0;
    while (j < end && is_group_element(tags[j])) {
      const Token& t = tokens[j];
      Pos tag = tags[j];
      if (tag == Pos::kAdverb) {
        // Allow at most 2 interleaved adverbs so that an adverb-heavy
        // clause does not glue distinct verb groups together.
        if (++adverb_run > 2) break;
        ++j;
        continue;
      }
      adverb_run = 0;
      if (tag == Pos::kNegation) {
        g.negated = true;
        ++j;
        continue;
      }
      if (tag == Pos::kTo) {
        // "going to fix": keep only when a be+going chain is open,
        // otherwise the infinitive starts a separate (non-finite) group.
        if (!saw_going_to && head == Pos::kVerbGerund &&
            tokens[j - 1].lower == "going" && saw_be) {
          saw_going_to = true;
          ++j;
          continue;
        }
        break;
      }
      if (tag == Pos::kModal) {
        if (is_future_modal(t)) saw_future = true;
        ++j;
        continue;
      }
      if (tag == Pos::kAuxBe || tag == Pos::kAuxHave || tag == Pos::kAuxDo) {
        if (is_past_aux(t, tag)) saw_past_finite = true;
        if (tag == Pos::kAuxBe) saw_be = true;
        if (tag == Pos::kAuxHave) saw_have = true;
        ++j;
        continue;
      }
      // Main verb.
      head = tag;
      if (tag == Pos::kVerbPast) saw_past_finite = true;
      ++j;
      // A second finite verb ends the group ("stopped working" keeps the
      // gerund, but "found said" would not occur; keep gerunds/participles).
      if (j < end && is_main_verb(tags[j]) && tags[j] != Pos::kVerbGerund &&
          tags[j] != Pos::kVerbPastPart) {
        break;
      }
    }
    g.end = j;
    if (g.end == g.begin) {  // pathological; avoid infinite loop
      ++i;
      continue;
    }
    // Tense resolution.
    if (saw_future || saw_going_to) {
      g.tense = Tense::kFuture;
    } else if (saw_past_finite || (saw_have && head == Pos::kVerbPastPart)) {
      g.tense = Tense::kPast;
    } else {
      g.tense = Tense::kPresent;
    }
    // Voice.
    g.voice = (saw_be && head == Pos::kVerbPastPart) ? Voice::kPassive
                                                     : Voice::kActive;
    groups.push_back(g);
    i = j;
  }
  return groups;
}

}  // namespace ibseg
