#include "nlp/cm_annotator.h"

#include <cassert>

#include "nlp/pos_tagger.h"
#include "nlp/verb_group.h"

namespace ibseg {
namespace {

// Sentence style per CM_qneg: 0 interrogative, 1 negative, 2 affirmative.
int sentence_style(const std::vector<Token>& tokens,
                   const std::vector<Pos>& tags, const Sentence& s,
                   bool has_negation) {
  // Ends with '?'.
  for (size_t i = s.token_end; i > s.token_begin; --i) {
    const Token& t = tokens[i - 1];
    if (t.kind != TokenKind::kPunctuation) break;
    if (t.text == "?") return 0;
  }
  // Opens with a wh-word, or with aux/modal inversion ("Do you know...",
  // "Can I...", "Would it...").
  size_t first = s.token_begin;
  while (first < s.token_end &&
         tokens[first].kind == TokenKind::kPunctuation) {
    ++first;
  }
  if (first < s.token_end) {
    if (tags[first] == Pos::kWhWord) return 0;
    if (is_auxiliary(tags[first]) && first + 1 < s.token_end &&
        (tags[first + 1] == Pos::kPronoun1 ||
         tags[first + 1] == Pos::kPronoun2 ||
         tags[first + 1] == Pos::kPronoun3 ||
         tags[first + 1] == Pos::kDeterminer)) {
      return 0;
    }
  }
  return has_negation ? 1 : 2;
}

}  // namespace

std::vector<CmProfile> annotate_sentences(
    const std::vector<Token>& tokens, const std::vector<Pos>& tags,
    const std::vector<Sentence>& sentences) {
  assert(tokens.size() == tags.size());
  std::vector<CmProfile> profiles;
  profiles.reserve(sentences.size());
  for (const Sentence& s : sentences) {
    CmProfile p;
    // Verb groups -> tense + voice.
    std::vector<VerbGroup> groups =
        find_verb_groups(tokens, tags, s.token_begin, s.token_end);
    bool negation_in_groups = false;
    for (const VerbGroup& g : groups) {
      p.add(CmKind::kTense, static_cast<int>(g.tense));
      p.add(CmKind::kVoice, g.voice == Voice::kPassive ? 0 : 1);
      negation_in_groups |= g.negated;
    }
    // Token-level features.
    bool has_negation = negation_in_groups;
    for (size_t i = s.token_begin; i < s.token_end; ++i) {
      switch (tags[i]) {
        case Pos::kPronoun1: p.add(CmKind::kSubject, 0); break;
        case Pos::kPronoun2: p.add(CmKind::kSubject, 1); break;
        case Pos::kPronoun3: p.add(CmKind::kSubject, 2); break;
        case Pos::kNegation: has_negation = true; break;
        case Pos::kNoun:
        case Pos::kNumber: p.add(CmKind::kPos, 1); break;
        case Pos::kAdjective:
        case Pos::kAdverb: p.add(CmKind::kPos, 2); break;
        default:
          if (is_main_verb(tags[i])) p.add(CmKind::kPos, 0);
          break;
      }
    }
    p.add(CmKind::kStyle, sentence_style(tokens, tags, s, has_negation));
    profiles.push_back(p);
  }
  return profiles;
}

std::vector<CmProfile> annotate_sentences(
    const std::vector<Token>& tokens, const std::vector<Sentence>& sentences) {
  return annotate_sentences(tokens, tag_tokens(tokens), sentences);
}

}  // namespace ibseg
