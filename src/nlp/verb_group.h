#ifndef IBSEG_NLP_VERB_GROUP_H_
#define IBSEG_NLP_VERB_GROUP_H_

#include <cstddef>
#include <vector>

#include "nlp/pos_tag.h"
#include "text/tokenizer.h"

namespace ibseg {

/// Grammatical tense of a verb group, the domain of CM_tense (paper
/// Table 1).
enum class Tense { kPresent, kPast, kFuture };

/// Voice of a verb group, the domain of CM_pasact.
enum class Voice { kActive, kPassive };

/// One verb group ("will have been installed", "did not work") found in a
/// token window, with the grammatical attributes that feed the CM features.
struct VerbGroup {
  size_t begin = 0;  ///< Token index of the first element (aux or verb).
  size_t end = 0;    ///< One past the last element.
  Tense tense = Tense::kPresent;
  Voice voice = Voice::kActive;
  bool negated = false;
};

/// Scans tagged tokens in [begin, end) and extracts verb groups.
///
/// Tense mapping (coarse, following the paper's 3-value domain):
///  * will/shall/'ll + V, and be-form + "going to" + V     -> future
///  * was/were/did/had + V, simple past V, have/has + VBN  -> past
///  * everything else (incl. modals can/may/must/would)    -> present
/// Voice: passive iff the group contains a be-form and its head is a past
/// participle.
std::vector<VerbGroup> find_verb_groups(const std::vector<Token>& tokens,
                                        const std::vector<Pos>& tags,
                                        size_t begin, size_t end);

}  // namespace ibseg

#endif  // IBSEG_NLP_VERB_GROUP_H_
