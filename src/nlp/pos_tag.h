#ifndef IBSEG_NLP_POS_TAG_H_
#define IBSEG_NLP_POS_TAG_H_

namespace ibseg {

/// Part-of-speech tag set. Deliberately coarse: the communication-means
/// features of the paper (Table 1) only need verb/noun/adjective-adverb
/// distinctions plus the closed classes that signal tense, person, negation
/// and voice.
enum class Pos {
  kNoun,
  kVerbBase,      // install, go ("I install", "to install", "will install")
  kVerbPresent3,  // installs, goes
  kVerbPast,      // installed, went
  kVerbPastPart,  // installed, gone (after have/be)
  kVerbGerund,    // installing, going
  kModal,         // will, would, can, could, may, might, shall, should, must
  kAuxBe,         // am, is, are, was, were, be, been, being
  kAuxHave,       // have, has, had, having
  kAuxDo,         // do, does, did
  kAdjective,
  kAdverb,
  kPronoun1,      // I, we, me, us, my, our, mine, ours, myself, ourselves
  kPronoun2,      // you, your, yours, yourself, yourselves
  kPronoun3,      // he, she, it, they, him, her, them, his, its, their, ...
  kDeterminer,
  kPreposition,
  kConjunction,
  kWhWord,        // what, which, who, where, when, why, how, ...
  kNegation,      // not, n't, never, no, none, nothing, neither, nor
  kTo,            // infinitival/prepositional "to"
  kNumber,
  kPunct,
  kOther,
};

/// Human-readable tag name (for debugging and the explorer example).
const char* pos_name(Pos tag);

/// True for any of the verb tags (base/3rd/past/past-participle/gerund).
bool is_main_verb(Pos tag);

/// True for auxiliaries and modals.
bool is_auxiliary(Pos tag);

}  // namespace ibseg

#endif  // IBSEG_NLP_POS_TAG_H_
