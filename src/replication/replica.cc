#include "replication/replica.h"

#include <chrono>
#include <filesystem>
#include <ostream>
#include <utility>
#include <vector>

#include "net/frame.h"
#include "storage/format_util.h"
#include "storage/shard_manifest.h"
#include "storage/wal_codec.h"

namespace ibseg {
namespace repl {

namespace {

/// Client-side defense for fetched file names: the server derives its
/// listing from the manifest, but a replica must not let a compromised or
/// buggy leader write outside its own directory either.
bool safe_snapshot_name(const std::string& name) {
  if (name.empty() || name.front() == '/') return false;
  if (name.find("..") != std::string::npos) return false;
  return name == "MANIFEST" || name.rfind("shard-", 0) == 0;
}

/// Pulls one listed file in chunks and verifies it against the listing's
/// size and whole-file CRC-32 before anyone trusts the bytes.
bool fetch_file(net::Client* client, const net::SnapshotFileEntry& entry,
                std::string* out) {
  out->clear();
  out->reserve(static_cast<size_t>(entry.size));
  while (out->size() < entry.size) {
    net::SnapshotChunkRequest req;
    req.name = entry.name;
    req.offset = out->size();
    req.max_len = 4u * 1024u * 1024u;
    net::SnapshotDataResponse resp;
    if (!client->snapshot_chunk(req, &resp).ok()) return false;
    // A size change or an empty chunk mid-file means the leader's
    // snapshot moved under us — restart the bootstrap from a new listing.
    if (resp.total_size != entry.size || resp.data.empty()) return false;
    out->append(resp.data);
  }
  return out->size() == entry.size &&
         crc32(out->data(), out->size()) == entry.crc;
}

/// Wire bootstrap: fetch the leader's committed snapshot into `dir`.
/// Shard files are written (atomically, fsync'd) before the MANIFEST —
/// the manifest's presence asserts completeness, exactly as for a local
/// save, so a crash mid-fetch leaves a directory the next bootstrap
/// simply fetches over.
bool fetch_snapshot(const ReplicaOptions& options) {
  std::unique_ptr<net::Client> client = net::Client::connect(
      options.leader_host, options.leader_port, options.connect_timeout_sec);
  if (client == nullptr) return false;
  net::SnapshotListingResponse listing;
  if (!client->snapshot_list(&listing).ok()) return false;

  std::error_code ec;
  std::filesystem::create_directories(options.dir, ec);
  if (ec) return false;

  std::string manifest_bytes;
  bool have_manifest = false;
  for (const net::SnapshotFileEntry& entry : listing.files) {
    if (!safe_snapshot_name(entry.name)) return false;
    std::string bytes;
    if (!fetch_file(client.get(), entry, &bytes)) return false;
    if (entry.name == "MANIFEST") {
      manifest_bytes = std::move(bytes);
      have_manifest = true;
      continue;
    }
    const std::string path = options.dir + "/" + entry.name;
    std::filesystem::create_directories(
        std::filesystem::path(path).parent_path(), ec);
    if (ec) return false;
    if (!atomic_write_file(path, [&](std::ostream& os) {
          os.write(bytes.data(), static_cast<std::streamsize>(bytes.size()));
          return static_cast<bool>(os);
        })) {
      return false;
    }
  }
  if (!have_manifest) return false;
  return atomic_write_file(options.dir + "/MANIFEST", [&](std::ostream& os) {
    os.write(manifest_bytes.data(),
             static_cast<std::streamsize>(manifest_bytes.size()));
    return static_cast<bool>(os);
  });
}

}  // namespace

std::unique_ptr<Replica> Replica::bootstrap(ReplicaOptions options) {
  if (options.dir.empty()) return nullptr;
  if (!load_shard_manifest_file(options.dir + "/MANIFEST").has_value()) {
    if (!fetch_snapshot(options)) return nullptr;
  }
  std::unique_ptr<ShardedServing> backend = ShardedServing::restore(
      options.dir, options.pipeline, options.serving);
  if (backend == nullptr) return nullptr;
  return std::unique_ptr<Replica>(
      new Replica(std::move(options), std::move(backend)));
}

Replica::Replica(ReplicaOptions options,
                 std::unique_ptr<ShardedServing> backend)
    : options_(std::move(options)),
      backend_(std::move(backend)),
      last_caught_up_(obs::Clock::now()),
      lag_frames_(obs::MetricsRegistry::global().gauge(
          "ibseg_replica_lag_frames",
          "Publications the leader is ahead of this replica, observed on "
          "the last successful pull.",
          {{"replica", options_.replica_id}})),
      lag_seconds_(obs::MetricsRegistry::global().gauge(
          "ibseg_replica_lag_seconds",
          "Seconds since this replica was last at the leader's epoch (0 "
          "while caught up).",
          {{"replica", options_.replica_id}})),
      applied_total_(obs::MetricsRegistry::global().counter(
          "ibseg_replica_applied_total",
          "WAL frames applied by this replica since process start.",
          {{"replica", options_.replica_id}})) {}

Replica::~Replica() { stop(); }

bool Replica::ensure_client() {
  if (client_ != nullptr) return true;
  client_ = net::Client::connect(options_.leader_host, options_.leader_port,
                                 options_.connect_timeout_sec);
  return client_ != nullptr;
}

Replica::StepStatus Replica::step() {
  std::lock_guard<std::mutex> lock(step_mu_);
  const StepStatus status = step_locked();
  last_status_.store(status, std::memory_order_relaxed);
  return status;
}

Replica::StepStatus Replica::step_locked() {
  if (!ensure_client()) return StepStatus::kTransportError;

  net::SubscribeWalRequest req;
  req.from_seq = backend_->epoch();
  req.replica_generation = backend_->offline_generation();
  req.max_frames = options_.max_frames;
  req.max_bytes = options_.max_bytes;
  req.replica_id = options_.replica_id;
  net::WalSegmentResponse seg;
  net::CallResult result = client_->subscribe_wal(req, &seg);
  if (!result.transport_ok) {
    client_.reset();
    return StepStatus::kTransportError;
  }
  if (!result.ok()) {
    return result.error.code == net::ErrCode::kSnapshotNeeded
               ? StepStatus::kSnapshotNeeded
               : StepStatus::kDiverged;
  }
  leader_seq_.store(seg.leader_seq, std::memory_order_relaxed);

  std::vector<WalRecord> records;
  if (!wal_parse_frames_exact(seg.raw.data(), seg.raw.size(), &records) ||
      records.size() != seg.frame_count) {
    return StepStatus::kDiverged;
  }
  if (!records.empty()) {
    if (seg.segment_generation != backend_->offline_generation() ||
        seg.base_seq != req.from_seq) {
      return StepStatus::kDiverged;
    }
    if (!backend_->apply_shipped(seg.base_seq, records)) {
      return StepStatus::kDiverged;
    }
    applied_total_.inc(records.size());
  }
  if (seg.recluster_after != 0) {
    // The segment ends exactly at a leader recluster boundary, and the
    // replica's corpus is now the exact cut the leader reclustered over —
    // the rebuild is a pure function of that cut, so the mirrored epoch
    // reproduces the leader's clustering bit-for-bit.
    const uint64_t generation = backend_->recluster();
    if (generation != seg.recluster_target) return StepStatus::kDiverged;
  }

  update_lag(seg.leader_seq);
  if (!client_->wal_ack(backend_->epoch(), options_.replica_id)
           .transport_ok) {
    client_.reset();  // position still applied; only the ack was lost
  }
  return backend_->epoch() >= seg.leader_seq ? StepStatus::kCaughtUp
                                             : StepStatus::kApplied;
}

void Replica::update_lag(uint64_t leader_seq) {
  const uint64_t epoch = backend_->epoch();
  const uint64_t lag = leader_seq > epoch ? leader_seq - epoch : 0;
  lag_frames_.set(static_cast<double>(lag));
  const obs::Clock::time_point now = obs::Clock::now();
  if (lag == 0) {
    last_caught_up_ = now;
    lag_seconds_.set(0.0);
  } else {
    lag_seconds_.set(obs::seconds_between(last_caught_up_, now));
  }
}

void Replica::start_polling() {
  if (poll_thread_.joinable()) return;
  stop_.store(false, std::memory_order_release);
  poll_thread_ = std::thread([this] {
    while (!stop_.load(std::memory_order_acquire)) {
      const StepStatus status = step();
      if (status == StepStatus::kSnapshotNeeded ||
          status == StepStatus::kDiverged) {
        return;  // terminal: the operator must re-bootstrap or intervene
      }
      if (status == StepStatus::kApplied) continue;  // catch-up: no sleep
      std::this_thread::sleep_for(
          std::chrono::milliseconds(options_.poll_interval_ms));
    }
  });
}

void Replica::stop() {
  stop_.store(true, std::memory_order_release);
  if (poll_thread_.joinable()) poll_thread_.join();
}

bool Replica::promote(const std::string& leader_dir) {
  stop();
  std::lock_guard<std::mutex> lock(step_mu_);
  client_.reset();
  return backend_->catch_up_from_dir(leader_dir);
}

}  // namespace repl
}  // namespace ibseg
