#ifndef IBSEG_REPLICATION_REPLICA_H_
#define IBSEG_REPLICATION_REPLICA_H_

#include <atomic>
#include <cstdint>
#include <memory>
#include <mutex>
#include <string>
#include <thread>

#include "core/pipeline.h"
#include "core/serving.h"
#include "core/sharded_serving.h"
#include "net/client.h"
#include "obs/clock.h"
#include "obs/metrics.h"

namespace ibseg {
namespace repl {

/// \brief Configuration of one read replica (docs/ARCHITECTURE.md §10,
/// docs/OPERATIONS.md §7).
struct ReplicaOptions {
  /// Leader address (the ibseg_server to follow).
  std::string leader_host = "127.0.0.1";
  uint16_t leader_port = 0;

  /// The replica's own state directory — REQUIRED. Bootstrap restores
  /// from it when it holds a committed manifest, and fetches the leader's
  /// snapshot into it otherwise; every applied segment is journaled under
  /// it, so a replica restart (and a promotion) recovers locally.
  std::string dir;

  /// Stable name for the leader's per-replica lag gauge
  /// (ibseg_leader_replica_lag_frames{replica="<id>"}).
  std::string replica_id = "replica";

  /// Per-pull segment caps, forwarded in SUBSCRIBE_WAL. One frame may
  /// exceed max_bytes (progress guarantee — see PROTOCOL.md §4.10).
  uint32_t max_frames = 256;
  uint32_t max_bytes = 4u * 1024u * 1024u;

  /// Poll cadence while caught up; a full segment is followed up
  /// immediately (catch-up runs at transfer speed, not poll speed).
  int poll_interval_ms = 50;

  /// Connect/IO deadline for every leader call.
  double connect_timeout_sec = 10.0;

  /// MUST equal the leader's build options: replay is deterministic only
  /// under identical analysis/segmentation/clustering parameters.
  PipelineOptions pipeline;

  /// Replica-local serving knobs (cache etc.). num_shards and persistence
  /// are dictated by the restored directory, not by this struct.
  ServingOptions serving;
};

/// \brief A WAL-shipped read replica: bootstraps from the leader's
/// snapshot (or its own directory), then pulls WAL segments over the
/// wire and applies them through the same deterministic replay path a
/// restart uses — so at every frame boundary the replica's backend is
/// bit-identical to the leader at that epoch, and QUERY/ASK answers
/// served from it are byte-for-byte the leader's answers.
///
/// Threading: step() is serialized internally; start_polling() runs it on
/// a background thread. The backend itself is a ShardedServing — fully
/// concurrent for queries, so a net::Server can serve from it (read-only
/// mode) while segments apply.
class Replica {
 public:
  /// Outcome of one pull-apply-ack cycle.
  enum class StepStatus {
    kApplied,         ///< frames applied; more may be pending — pull again
    kCaughtUp,        ///< at the leader's epoch (zero lag)
    kSnapshotNeeded,  ///< cursor not servable — wipe dir and re-bootstrap
    kTransportError,  ///< leader unreachable; retry after the poll interval
    kDiverged,        ///< histories disagree — operator intervention
  };

  /// \brief Builds the replica's backend: restore(options.dir) when the
  /// directory holds a committed manifest, otherwise SNAPSHOT_LIST +
  /// SNAPSHOT_CHUNK from the leader (every file verified against its
  /// listed size and CRC-32; shard files land before the manifest, so a
  /// crash mid-fetch leaves a directory bootstrap simply redoes).
  /// \return nullptr when options.dir is empty, the fetch fails, or the
  ///   fetched/existing directory does not restore
  static std::unique_ptr<Replica> bootstrap(ReplicaOptions options);

  ~Replica();
  Replica(const Replica&) = delete;
  Replica& operator=(const Replica&) = delete;

  /// The replica's serving backend (bit-identical to the leader at every
  /// applied frame boundary). Outlives nothing — the Replica owns it.
  ShardedServing& backend() { return *backend_; }
  const ShardedServing& backend() const { return *backend_; }

  /// \brief One pull-apply-ack cycle against the leader: SUBSCRIBE_WAL at
  /// the current epoch/generation, strict-parse the segment, apply it,
  /// mirror any recluster boundary, update the lag gauges, WAL_ACK the
  /// new position.
  StepStatus step();

  /// \brief Runs step() on a background thread: back-to-back while
  /// catching up, every poll_interval_ms once caught up (and after
  /// transport errors — the thread reconnects forever; kSnapshotNeeded
  /// and kDiverged stop the loop, readable via last_status()).
  void start_polling();

  /// \brief Stops and joins the polling thread (idempotent).
  void stop();

  /// \brief Crash promotion: stops polling, then drains the dead leader's
  /// on-disk tail into this backend (ShardedServing::catch_up_from_dir).
  /// After true, this replica holds every acknowledged leader ingest and
  /// can serve as the new leader over the SAME directory semantics.
  bool promote(const std::string& leader_dir);

  /// Leader epoch observed on the most recent successful pull.
  uint64_t last_leader_seq() const {
    return leader_seq_.load(std::memory_order_relaxed);
  }

  /// Most recent step() outcome (kCaughtUp before any step).
  StepStatus last_status() const {
    return last_status_.load(std::memory_order_relaxed);
  }

 private:
  Replica(ReplicaOptions options, std::unique_ptr<ShardedServing> backend);

  bool ensure_client();
  StepStatus step_locked();
  void update_lag(uint64_t leader_seq);

  ReplicaOptions options_;
  std::unique_ptr<ShardedServing> backend_;

  std::mutex step_mu_;                  ///< serializes step()/promote()
  std::unique_ptr<net::Client> client_; ///< guarded by step_mu_
  /// Last instant the replica was at the leader's epoch (guarded by
  /// step_mu_); seeds the seconds-lag gauge. Starts at construction time.
  obs::Clock::time_point last_caught_up_;

  std::atomic<uint64_t> leader_seq_{0};
  std::atomic<StepStatus> last_status_{StepStatus::kCaughtUp};

  obs::Gauge& lag_frames_;
  obs::Gauge& lag_seconds_;
  obs::Counter& applied_total_;

  std::thread poll_thread_;
  std::atomic<bool> stop_{false};
};

}  // namespace repl
}  // namespace ibseg

#endif  // IBSEG_REPLICATION_REPLICA_H_
