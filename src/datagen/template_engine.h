#ifndef IBSEG_DATAGEN_TEMPLATE_ENGINE_H_
#define IBSEG_DATAGEN_TEMPLATE_ENGINE_H_

#include <string>
#include <string_view>
#include <vector>

#include "util/rng.h"

namespace ibseg {

/// Inflection table for one (regular or irregular) verb lemma.
struct VerbForms {
  std::string base;    // check
  std::string pres3;   // checks
  std::string past;    // checked (also used as past participle)
  std::string gerund;  // checking
};

/// Term pools available to sentence templates.
struct TemplatePools {
  /// Scenario-specific content terms ({S1}, {S2}, {S3} draw distinct
  /// entries). These are the terms that distinguish one underlying problem
  /// from another within a domain.
  std::vector<std::string> scenario_terms;
  /// Domain-shared nouns ({D}, {D2}) — the "HP / RAID appears everywhere"
  /// pool that confounds whole-post matching within a thematic category.
  std::vector<std::string> shared_terms;
  /// Domain adjectives ({A}).
  std::vector<std::string> adjectives;
  /// Generic nouns ({G}, {G2}) shared by *all* intentions of a domain
  /// ("issue", "thing", "way"). Keeps the lexical surface of different
  /// intentions overlapping so that terms are not a segmentation cue.
  std::vector<std::string> generic_terms;
  /// Verb lemmas shared by all intentions of a domain; templates select a
  /// surface form ({VB} base, {VZ} 3rd-person present, {VP} past, {VN}
  /// past participle, {VG} gerund). Different intentions then differ in
  /// *tense* — a CM feature — while the stemmed term is identical, so verb
  /// vocabulary is not a border cue either.
  std::vector<VerbForms> verbs;
};

/// Renders a sentence template. Placeholders:
///   {S1} {S2} {S3} — distinct scenario terms (falls back to shared terms
///                    when the scenario pool is too small);
///   {D} {D2}       — shared domain terms (independent draws);
///   {G} {G2}       — generic nouns (independent draws);
///   {A}            — a domain adjective;
///   {VB} {VZ} {VP} {VN} {VG} — a shared verb lemma in base / 3rd-person
///                    present / past / past-participle / gerund form
///                    (suffix a digit for an independent draw: {VP2}).
/// Repeated placeholders of the same name within one sentence reuse the
/// same draw ("the {S1}... that {S1}" stays consistent). Everything else is
/// emitted verbatim.
std::string render_template(std::string_view pattern,
                            const TemplatePools& pools, Rng& rng);

}  // namespace ibseg

#endif  // IBSEG_DATAGEN_TEMPLATE_ENGINE_H_
