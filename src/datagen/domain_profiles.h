#ifndef IBSEG_DATAGEN_DOMAIN_PROFILES_H_
#define IBSEG_DATAGEN_DOMAIN_PROFILES_H_

#include <string>
#include <vector>

#include "datagen/template_engine.h"

namespace ibseg {

/// The three forum domains of the paper's evaluation (substituted by
/// synthetic corpora; see DESIGN.md): a product support forum (HP Forum),
/// a travel forum (TripAdvisor) and a programming forum (StackOverflow).
enum class ForumDomain {
  kTechSupport,  ///< HP-Forum-style product support
  kTravel,       ///< TripAdvisor-style hotel reviews
  kProgramming,  ///< StackOverflow-style programming questions
  kHealth,       ///< Medhelp-style medical forum (the paper's intro names
                 ///  health forums as a target domain; not part of its
                 ///  evaluation, provided for breadth)
};

const char* forum_domain_name(ForumDomain domain);

/// One author intention, with the grammar baked into its sentence
/// templates (tense / person / style / voice vary *between* intentions —
/// that variation is exactly the signal the CM features pick up).
struct IntentionSpec {
  /// Canonical name ("explain the problem").
  std::string name;
  /// Label keywords annotators use for it (Fig. 7 right-hand examples).
  std::vector<std::string> labels;
  /// Sentence templates (see render_template for the placeholder grammar).
  std::vector<std::string> templates;
  /// Preferred position: openers start posts, closers end them.
  bool opener = false;
  bool closer = false;
  /// Background intentions (context, feelings, meta-comments) mention
  /// hardware/places/components in passing — often components of *other*
  /// problems. The generator contaminates their scenario pool with another
  /// scenario's terms, which is exactly the within-category vocabulary
  /// overlap that misleads whole-post matching (the paper's Fig. 1 Doc A/B
  /// example: "HP" and "RAID" appear in informative parts of unrelated
  /// posts).
  bool background = false;
  /// Core intentions are what a thread is *for* (state the problem, ask
  /// the question, judge the hotel): every generated post contains at
  /// least one. This mirrors real forums — two posts about the same
  /// problem reliably share these intentions, which is what makes
  /// per-intention matching able to reach related posts at all.
  bool core = false;
  /// Sentence-count override for segments of this intention
  /// (0 = use the profile-wide bounds). Core segments are longer in real
  /// posts — the problem description is the bulk of a support thread.
  int min_sentences = 0;
  int max_sentences = 0;
};

/// Everything needed to synthesize posts for one domain.
struct DomainProfile {
  ForumDomain domain = ForumDomain::kTechSupport;
  std::string name;
  std::vector<IntentionSpec> intentions;
  /// Domain-shared vocabulary ({D}) — present across scenarios, the
  /// within-category confounder.
  std::vector<std::string> shared_terms;
  /// Domain adjectives ({A}).
  std::vector<std::string> adjectives;
  /// Generic nouns ({G}) shared by all intentions ("issue", "thing",
  /// "way"): they flatten the lexical differences between intentions so
  /// that vocabulary is not a border cue (the paper's premise).
  std::vector<std::string> generic_terms;
  /// Verb lemmas shared by all intentions; templates pick the surface form
  /// ({VB}/{VZ}/{VP}/{VN}/{VG}), so tense — a CM feature — varies between
  /// intentions while the stemmed term does not.
  std::vector<VerbForms> verbs;
  /// Curated scenario term sets (realistic). The generator synthesizes
  /// additional scenarios when asked for more.
  std::vector<std::vector<std::string>> curated_scenarios;
  /// Probability weights for the number of ground-truth segments per post
  /// (index 0 -> 1 segment). Mirrors the granularity mix of Table 3.
  std::vector<double> segment_count_weights;
  /// Sentences per segment are uniform in [min, max].
  int min_sentences_per_segment = 1;
  int max_sentences_per_segment = 4;
};

/// Returns the built-in profile for `domain` (constructed once, process
/// lifetime).
const DomainProfile& domain_profile(ForumDomain domain);

}  // namespace ibseg

#endif  // IBSEG_DATAGEN_DOMAIN_PROFILES_H_
