#include "datagen/domain_profiles.h"

namespace ibseg {

const char* forum_domain_name(ForumDomain domain) {
  switch (domain) {
    case ForumDomain::kTechSupport: return "TechSupport";
    case ForumDomain::kTravel: return "Travel";
    case ForumDomain::kProgramming: return "Programming";
    case ForumDomain::kHealth: return "Health";
  }
  return "?";
}

namespace {

// Template design notes.
//
// The grammar of each intention (tense, person, interrogative/negative
// style, voice — the CM features of paper Table 1) is its *only* reliable
// signature:
//  * content nouns come from pools shared across intentions ({S} scenario
//    terms, {D} domain terms, {G} generic nouns);
//  * content verbs come from one shared lemma pool; templates select the
//    surface form ({VB}/{VZ}/{VP}/{VN}/{VG}), and the Porter stemmer maps
//    all forms of a lemma to one term, so tense shifts are invisible to
//    term-based segmentation while fully visible to the CM features.
// This reproduces the paper's premise (Sec. 5.1) that vocabulary is not a
// distinctive factor for segment borders within a thematic category.

std::vector<VerbForms> tech_verbs() {
  return {
      {"check", "checks", "checked", "checking"},
      {"test", "tests", "tested", "testing"},
      {"replace", "replaces", "replaced", "replacing"},
      {"restart", "restarts", "restarted", "restarting"},
      {"update", "updates", "updated", "updating"},
      {"clean", "cleans", "cleaned", "cleaning"},
      {"fix", "fixes", "fixed", "fixing"},
      {"change", "changes", "changed", "changing"},
      {"open", "opens", "opened", "opening"},
      {"close", "closes", "closed", "closing"},
      {"load", "loads", "loaded", "loading"},
      {"start", "starts", "started", "starting"},
      {"stop", "stops", "stopped", "stopping"},
      {"move", "moves", "moved", "moving"},
      {"touch", "touches", "touched", "touching"},
      {"install", "installs", "installed", "installing"},
      {"remove", "removes", "removed", "removing"},
      {"reset", "resets", "reset", "resetting"},
  };
}

std::vector<VerbForms> travel_verbs() {
  return {
      {"clean", "cleans", "cleaned", "cleaning"},
      {"open", "opens", "opened", "opening"},
      {"close", "closes", "closed", "closing"},
      {"visit", "visits", "visited", "visiting"},
      {"enjoy", "enjoys", "enjoyed", "enjoying"},
      {"order", "orders", "ordered", "ordering"},
      {"book", "books", "booked", "booking"},
      {"check", "checks", "checked", "checking"},
      {"serve", "serves", "served", "serving"},
      {"recommend", "recommends", "recommended", "recommending"},
      {"avoid", "avoids", "avoided", "avoiding"},
      {"watch", "watches", "watched", "watching"},
      {"use", "uses", "used", "using"},
      {"share", "shares", "shared", "sharing"},
      {"reach", "reaches", "reached", "reaching"},
  };
}

std::vector<VerbForms> prog_verbs() {
  return {
      {"check", "checks", "checked", "checking"},
      {"test", "tests", "tested", "testing"},
      {"load", "loads", "loaded", "loading"},
      {"parse", "parses", "parsed", "parsing"},
      {"build", "builds", "built", "building"},
      {"call", "calls", "called", "calling"},
      {"patch", "patches", "patched", "patching"},
      {"trace", "traces", "traced", "tracing"},
      {"compile", "compiles", "compiled", "compiling"},
      {"deploy", "deploys", "deployed", "deploying"},
      {"debug", "debugs", "debugged", "debugging"},
      {"wrap", "wraps", "wrapped", "wrapping"},
      {"refactor", "refactors", "refactored", "refactoring"},
      {"merge", "merges", "merged", "merging"},
      {"release", "releases", "released", "releasing"},
  };
}

DomainProfile make_tech_support() {
  DomainProfile p;
  p.domain = ForumDomain::kTechSupport;
  p.name = "TechSupport";
  p.segment_count_weights = {0.25, 0.25, 0.19, 0.16, 0.08, 0.05, 0.02};
  p.min_sentences_per_segment = 1;
  p.max_sentences_per_segment = 4;
  p.shared_terms = {
      "system",        "computer", "laptop",   "machine",  "model",
      "device",        "support",  "website",  "manual",   "warranty",
      "drive",         "setup",    "configuration", "hardware",
      "software",      "update",   "store",    "vendor",   "desktop",
      "cable",
  };
  p.adjectives = {"new",      "old",       "slow",    "strange", "faulty",
                  "official", "technical", "partial", "compatible",
                  "stable",   "weird",     "defective"};
  p.generic_terms = {"issue",  "problem", "thing", "time",   "way",
                     "day",    "moment",  "point", "option", "idea",
                     "question", "help",  "work",  "place",  "case"};
  p.verbs = tech_verbs();
  p.curated_scenarios = {
      {"printer", "cartridge", "ink", "tray", "spooler", "feeder"},
      {"raid", "array", "controller", "stripe", "mirror", "volume"},
      {"wifi", "router", "antenna", "signal", "channel", "firmware"},
      {"battery", "charger", "socket", "cell", "plug", "voltage"},
      {"screen", "display", "backlight", "panel", "pixel", "brightness"},
      {"fan", "cooler", "vent", "airflow", "sensor", "dust"},
      {"keyboard", "touchpad", "cursor", "keycap", "layout", "backspace"},
      {"bios", "bootloader", "grub", "bootmenu", "checksum", "jumper"},
      {"speaker", "microphone", "jack", "mixer", "mute", "equalizer"},
      {"webcam", "camera", "lens", "shutter", "tripod", "usb"},
  };
  // (a) Explain the problem: present tense, third person, negative lean.
  p.intentions.push_back(IntentionSpec{
      "explain the problem",
      {"problem statement", "issue statement", "general problem"},
      {
          "The {S1} never {VZ} the {S2} and the {G} returns.",
          "The {S1} does not {VB} the {S2} when the {D} shows a {A} {G}.",
          "It {VZ} the {S2} at a random {G} and nothing happens.",
          "The {S1} {VZ} the {S2} but the {D} ignores every {G}.",
          "My {D} does not {VB} the {S1} anymore.",
          "The {S2} no longer {VZ} and the {G} remains.",
          "Whenever the {D} {VZ} the {S1} it also {VZ2} the {G}.",
          "The {D} {VZ} the {S2} too early and the {S1} does not respond.",
      },
      false, false, false, true, 2, 4});
  // (b) Describe previous efforts: past tense, first person.
  p.intentions.push_back(IntentionSpec{
      "describe previous efforts",
      {"solution attempt", "previous trial", "previous efforts"},
      {
          "I {VP} the {S1} twice but the {G} stayed.",
          "I {VP} the {S2} and then {VP2} the {S1}.",
          "We {VP} a {A} {S2} from the {D} yesterday.",
          "I have already {VN} the {S1} without any {G}.",
          "A friend of mine {VP} the {S1} and saw no {G}.",
          "I {VP} the {D} and {VP2} the {S2} again last night.",
          "We {VP} every {G} from the {D} one by one.",
          "I even {VP} the {A} {S2} before the {G}.",
      },
      false, false, false, false});
  // (c) Explain why she wrote the post: present, first person, because.
  p.intentions.push_back(IntentionSpec{
      "explain why posting",
      {"reason for posting", "theme", "target"},
      {
          "I am asking because I do not want to {VB} the {D}.",
          "I am posting here because the {D} does not {VB} the {S1}.",
          "I write this because nobody at the {D} could {VB} the {S2}.",
          "I am asking before I {VB} another {S1}.",
          "I need a {G} here because the {A} {G2} confuses me.",
          "I am writing because my {G} with the {S2} matters for work.",
      },
      false, false, true, false, 2, 5});
  // (d) Report symptoms / hypotheses: past tense, third person.
  p.intentions.push_back(IntentionSpec{
      "report symptoms",
      {"observations", "first appearance of problem", "symptoms"},
      {
          "Yesterday the {S1} {VP} the {S2} twice and the {D} froze.",
          "It started after the {D} {VP} the {S2}.",
          "The {S1} worked for a {G} until the {D} {VP} the {S2}.",
          "First the {S2} slowed down and later the {D} {VP} the {G}.",
          "A {A} noise came from the {S1} right before the {G}.",
          "Maybe the {S2} overheated because the {S1} stayed blocked.",
          "The {G} began the day the {S2} arrived.",
          "The {D} {VP} the {S1} on its own and the {G} vanished.",
      },
      false, false, false, false});
  // (e) Ask for suggestions / advice: interrogative, second person.
  p.intentions.push_back(IntentionSpec{
      "ask for suggestions",
      {"help request", "request for advice", "suggestions"},
      {
          "Do you know whether the {S1} would {VB} the {G}?",
          "Can I {VB} the {S2} without rebuilding the entire {D}?",
          "Has anyone {VN} a {S1} like this before?",
          "Could you {VB} the {S2} on your own {D} and tell me?",
          "What should I do about the {S1}?",
          "Is there a {G} that {VZ} the {S2}?",
          "Would you {VB} a {A} {S1} after such a {G}?",
          "Should I {VB} the {D} or keep the {S2}?",
      },
      false, true, false, true, 2, 4});
  // (f) Describe the problem "environment": present, first person, have.
  p.intentions.push_back(IntentionSpec{
      "describe environment",
      {"system description", "system information", "user pc"},
      {
          "I have a {A} {D} with a {S1} and four {S2} units.",
          "My {D} is a {A} model and it {VZ} a {S1}.",
          "The {D} came with a {S2} and a {A} {S1} already installed.",
          "We use the {D} mainly for work and it has a {S1}.",
          "It is a {A} {D} and the {S1} {VZ} the {S2}.",
          "My boss gave me a {D} with a {S1} pre-installed.",
          "Our {G} includes a {D2} and a spare {S2}.",
          "The {D} sits in a warm {G} next to the {D2}.",
      },
      true, false, true, false});
  // (g) Ask specific questions: interrogative, third person.
  p.intentions.push_back(IntentionSpec{
      "ask specific question",
      {"question", "general question", "first question"},
      {
          "Would a {A} {S1} work with my {D}?",
          "Does the {S2} {VB} the {S1} on every {G}?",
          "How long does a {S1} {G} usually take?",
          "Which {S2} {G} matters for a {A} {D}?",
          "Does a {D2} {VB} anything for the {S1}?",
          "Why does the {S2} {VB} such a {A} {G}?",
      },
      false, true, false, false});
  // (h) Express thoughts / feelings: present, first person.
  p.intentions.push_back(IntentionSpec{
      "express feelings",
      {"concern", "personal comment", "personal thought"},
      {
          "I am really frustrated with this {A} {G}.",
          "I hope someone here knows more about the {S1}.",
          "Honestly I love this {D} and I want to keep it.",
          "This {A} {G} drives me crazy.",
          "I feel that the {S2} deserves a better {G}.",
          "I appreciate any {G} about the {S1}.",
      },
      false, false, true, false, 2, 5});
  return p;
}

DomainProfile make_travel() {
  DomainProfile p;
  p.domain = ForumDomain::kTravel;
  p.name = "Travel";
  p.segment_count_weights = {0.20, 0.24, 0.20, 0.13, 0.13, 0.10};
  p.min_sentences_per_segment = 1;
  p.max_sentences_per_segment = 5;
  p.shared_terms = {
      "hotel",   "room",    "staff",   "location", "price",   "night",
      "stay",    "city",    "holiday", "trip",     "booking", "service",
      "family",  "week",    "floor",   "reviews",  "center",  "island",
  };
  p.adjectives = {"nice",        "clean",    "spacious", "noisy",
                  "comfortable", "friendly", "central",  "modern",
                  "cheap",       "expensive", "lovely",  "terrible",
                  "cozy",        "shabby"};
  p.generic_terms = {"time",    "day",     "place", "thing",      "way",
                     "morning", "evening", "area",  "visit",      "experience",
                     "moment",  "option",  "spot",  "impression", "detail"};
  p.verbs = travel_verbs();
  p.curated_scenarios = {
      {"pool", "sunbeds", "towels", "deck", "loungers", "lifeguard"},
      {"breakfast", "buffet", "coffee", "pastries", "eggs", "juice"},
      {"shuttle", "airport", "transfer", "luggage", "pickup", "timetable"},
      {"spa", "massage", "sauna", "treatment", "therapist", "whirlpool"},
      {"balcony", "view", "seafront", "sunset", "terrace", "horizon"},
      {"bathroom", "shower", "plumbing", "faucet", "towel", "bathtub"},
      {"reception", "lobby", "concierge", "keycard", "desk", "elevator"},
      {"noise", "street", "traffic", "walls", "earplugs", "nightclub"},
      {"restaurant", "dinner", "menu", "waiter", "wine", "dessert"},
      {"beach", "sand", "umbrella", "waves", "shore", "promenade"},
  };
  // (a) Explain how/why user decided to book: past, first person.
  p.intentions.push_back(IntentionSpec{
      "explain booking reason",
      {"reason for selecting", "reason for staying"},
      {
          "We {VP} the {D} because the {S1} looked {A} in the photos.",
          "I {VP} this {D} for the {S1} and the {A} {D2}.",
          "My {D} {VP} the {S2} here last summer.",
          "We arrived for a short {G} and wanted a {A} {S1}.",
          "I {VP} the {G} after I read about the {S2}.",
          "We came back because the {S1} left a {A} {G} last year.",
          "A friend {VP} the {D} for its {S2} and its {G}.",
      },
      true, false, true, false, 2, 5});
  // (b) Judge aspects: present, third person.
  p.intentions.push_back(IntentionSpec{
      "judge aspects",
      {"location", "price", "staff", "breakfast", "facilities"},
      {
          "The {S1} is {A} and the {D} {VZ} it every {G}.",
          "The {S2} costs extra but it deserves the {D2}.",
          "The {S1} {VZ} early and never feels crowded.",
          "The {D} {VZ} the {S2} and stays very helpful.",
          "The {S1} {G} smells fresh and looks {A}.",
          "The {S2} works fine although the {G} seems {A}.",
          "Everything near the {S1} stays quiet during the {G}.",
      },
      false, false, false, true, 2, 4});
  // (c) Describe the room / hotel: present, third person, have/there is.
  p.intentions.push_back(IntentionSpec{
      "describe room or hotel",
      {"room description", "general hotel description"},
      {
          "The {D} has a {A} {S1} and a small {S2}.",
          "Our {D} faces the {S1} and it feels {A}.",
          "The {D} {VZ} a {S2} on the third {D2}.",
          "There is a {A} {S1} right next to the {D2}.",
          "Every {G} leads to the {S2} somehow.",
          "The {G} holds a {S1} and two {A} corners.",
          "It is a {A} {D} with a {S2} behind the {D2}.",
      },
      true, false, false, false});
  // (d) Declare pros and cons: present, third person, negative mix.
  p.intentions.push_back(IntentionSpec{
      "declare pros cons",
      {"pro", "con", "strong points", "weak points"},
      {
          "The {S1} is great but the {S2} never {VZ} properly.",
          "The {S2} was not {A} and nobody {VP} the {G}.",
          "A strong {G} is the {A} {S1}.",
          "The only weak {G} is the {S2} near our {D}.",
          "Nothing beats the {S1} although the {S2} disappoints.",
          "The {D} never fails on the {S1} side yet the {S2} does.",
      },
      false, false, false, false});
  // (e) Opinion / conclusion: present + future, first person.
  p.intentions.push_back(IntentionSpec{
      "opinion conclusion",
      {"overall", "general opinion", "why revisiting"},
      {
          "Overall we {VP} our {G} despite the {S2}.",
          "I would not {VB} the {S1} again.",
          "We will definitely {VB} the {S1} next year.",
          "In general the {D} deserves its {A} {D2}.",
          "I will remember the {S2} for a long {G}.",
          "We regret nothing except the {A} {S2}.",
      },
      false, true, false, true, 2, 4});
  // (f) Describe to whom/why it is recommended: second person.
  p.intentions.push_back(IntentionSpec{
      "recommend to whom",
      {"for future", "what to expect", "recommended for"},
      {
          "If you care about the {S1} you should {VB} early.",
          "You will {VB} the {S1} if you travel with your {D}.",
          "Do not expect a {A} {S2} in this {D2} range.",
          "Ask for a {D} far from the {S2}.",
          "You should {VB} your own {G} for the {S1}.",
          "Take the {S2} in the {G} and you will {VB} the crowd.",
      },
      false, true, false, false});
  return p;
}

DomainProfile make_programming() {
  DomainProfile p;
  p.domain = ForumDomain::kProgramming;
  p.name = "Programming";
  p.segment_count_weights = {0.43, 0.31, 0.14, 0.06, 0.06};
  p.min_sentences_per_segment = 1;
  p.max_sentences_per_segment = 4;
  p.shared_terms = {
      "code",        "function", "project",   "library",   "version",
      "application", "server",   "test",      "build",     "class",
      "method",      "module",   "release",   "framework", "script",
      "repository",  "branch",   "dependency",
  };
  p.adjectives = {"simple",     "complex",  "weird",  "stable",
                  "legacy",     "modern",   "broken", "minimal",
                  "concurrent", "portable", "flaky",  "deprecated"};
  p.generic_terms = {"issue",  "thing",   "way",      "case",  "time",
                     "change", "problem", "behavior", "setup", "result",
                     "step",   "detail",  "approach", "output", "log"};
  p.verbs = prog_verbs();
  p.curated_scenarios = {
      {"nullpointer", "exception", "stacktrace", "runtime", "handler",
       "backtrace"},
      {"compiler", "linker", "symbol", "template", "header", "macro"},
      {"database", "query", "transaction", "deadlock", "schema", "cursor"},
      {"thread", "mutex", "race", "lock", "atomic", "scheduler"},
      {"memory", "leak", "allocation", "heap", "pointer", "allocator"},
      {"socket", "connection", "timeout", "packet", "protocol", "handshake"},
      {"regex", "pattern", "match", "capture", "group", "wildcard"},
      {"json", "parser", "serialization", "field", "payload", "encoder"},
      {"docker", "container", "image", "registry", "daemon", "namespace"},
      {"merge", "conflict", "rebase", "commit", "remote", "upstream"},
  };
  // (a) Context / setup: present, first person.
  p.intentions.push_back(IntentionSpec{
      "describe setup",
      {"context", "setup", "environment"},
      {
          "I am building a {A} {D} that {VZ} a {S1}.",
          "My {D} {VZ} a {S2} inside a {A} {S1}.",
          "We maintain a {A} {D} with a custom {S2}.",
          "The {D} depends on a {S1} from an external {D2}.",
          "I keep the {S2} in a separate {D} for every {G}.",
          "Our {G} {VZ} a {D2} together with the {S1}.",
      },
      true, false, true, false, 2, 5});
  // (b) Error report: past/present, third person.
  p.intentions.push_back(IntentionSpec{
      "report error",
      {"error", "failure", "crash report"},
      {
          "The {D} throws a {S1} {G} when the {S2} {VZ}.",
          "Yesterday the {D} {VP} with a {A} {S1} {G}.",
          "The {S2} crashed and {VP} a {S1} in the {G}.",
          "Every second {G} the {S1} appears and the {D} exits.",
          "The {S2} hangs while the {D} {VZ} the {S1}.",
          "The {G} shows a {S1} right after the {S2} {VZ}.",
      },
      false, false, false, true, 2, 4});
  // (c) Attempts: past, first person.
  p.intentions.push_back(IntentionSpec{
      "describe attempts",
      {"tried", "attempts", "workaround"},
      {
          "I {VP} the {S1} but the {G} stayed.",
          "I {VP} the {S2} {G} twice without any {G2}.",
          "We {VP} a {A} check around the {S1} and nothing changed.",
          "I {VP} an older {D} without success.",
          "I {VP} the {S2} and watched the {G} return anyway.",
          "We {VP} the {S1} through the {D} all night.",
      },
      false, false, false, false});
  // (d) Question: interrogative, second/third person.
  p.intentions.push_back(IntentionSpec{
      "ask question",
      {"question", "how to", "why"},
      {
          "Does anyone know why the {S1} behaves like this?",
          "How can I {VB} a {A} {S2} without restarting the {D}?",
          "Is there a safe way to {VB} the {S1}?",
          "What causes a {S2} to ignore the {S1}?",
          "Should the {D} ever {VB} the {S2} during a {G}?",
          "Can a {A} {S1} {VB} the {D2}?",
      },
      false, true, false, true, 2, 4});
  // (e) Constraints / feelings: present, first person, negative lean.
  p.intentions.push_back(IntentionSpec{
      "state constraints",
      {"constraint", "deadline", "requirement"},
      {
          "I cannot {VB} the {D} because of a legacy {S2}.",
          "I am stuck and the {G} is close.",
          "We must keep the {A} {S1} for compatibility.",
          "The team will not {VB} a new {S2} this {D2}.",
          "I am not allowed to {VB} the {D} in this {G}.",
          "We do not control the {S1} {G} here.",
      },
      false, false, true, false});
  return p;
}

std::vector<VerbForms> health_verbs() {
  return {
      {"check", "checks", "checked", "checking"},
      {"monitor", "monitors", "monitored", "monitoring"},
      {"measure", "measures", "measured", "measuring"},
      {"track", "tracks", "tracked", "tracking"},
      {"notice", "notices", "noticed", "noticing"},
      {"reduce", "reduces", "reduced", "reducing"},
      {"increase", "increases", "increased", "increasing"},
      {"start", "starts", "started", "starting"},
      {"stop", "stops", "stopped", "stopping"},
      {"change", "changes", "changed", "changing"},
      {"schedule", "schedules", "scheduled", "scheduling"},
      {"record", "records", "recorded", "recording"},
      {"manage", "manages", "managed", "managing"},
      {"treat", "treats", "treated", "treating"},
  };
}

DomainProfile make_health() {
  DomainProfile p;
  p.domain = ForumDomain::kHealth;
  p.name = "Health";
  p.segment_count_weights = {0.22, 0.26, 0.22, 0.15, 0.10, 0.05};
  p.min_sentences_per_segment = 1;
  p.max_sentences_per_segment = 4;
  p.shared_terms = {
      "doctor",     "clinic",      "hospital",  "treatment", "medication",
      "dose",       "appointment", "insurance", "specialist", "pharmacy",
      "nurse",      "blood",       "test",      "results",   "condition",
      "visit",      "prescription", "symptom",
  };
  p.adjectives = {"mild",       "severe", "chronic",    "sudden",
                  "sharp",      "dull",   "persistent", "occasional",
                  "normal",     "unusual", "painful",   "swollen"};
  p.generic_terms = {"issue",   "thing",   "time",   "way",      "day",
                     "week",    "night",   "moment", "question", "advice",
                     "help",    "feeling", "episode", "pattern",  "routine"};
  p.verbs = health_verbs();
  p.curated_scenarios = {
      {"migraine", "aura", "nausea", "temples", "photophobia", "triptan"},
      {"rash", "hives", "itching", "cream", "allergen", "patches"},
      {"insomnia", "melatonin", "bedtime", "awakenings", "fatigue",
       "snoring"},
      {"heartburn", "reflux", "antacid", "esophagus", "bloating", "acidity"},
      {"ankle", "sprain", "swelling", "brace", "icing", "physio"},
      {"pollen", "sneezing", "antihistamine", "congestion", "sinus",
       "hayfever"},
      {"anemia", "ferritin", "dizziness", "pallor", "supplement", "iron"},
      {"eczema", "moisturizer", "flareup", "steroid", "elbows", "dryness"},
      {"vertigo", "spinning", "balance", "maneuver", "earpressure",
       "episodes"},
      {"cholesterol", "statin", "lipids", "dieting", "triglycerides",
       "dosage"},
  };
  // (a) Describe symptoms: present, first person, core.
  p.intentions.push_back(IntentionSpec{
      "describe symptoms",
      {"symptoms", "what I feel", "complaint"},
      {
          "I get a {A} {S1} behind my {S2} almost every {G}.",
          "The {S1} {VZ} my {G} and the {S2} never really stops.",
          "My {S1} feels {A} whenever I {VB} the {S2}.",
          "A {A} {S1} shows up with the {S2} every {G}.",
          "It {VZ} the {S2} and leaves a {A} {G}.",
          "I am having a {A} {S1} together with the {S2} this {G}.",
      },
      false, false, false, true, 2, 4});
  // (b) Medical history / background: past, first person, opener.
  p.intentions.push_back(IntentionSpec{
      "give medical history",
      {"history", "background", "previous diagnosis"},
      {
          "I {VP} my {S1} with a {D} two years ago.",
          "A {D} {VP} my {S2} when I was younger.",
          "We {VP} the {S1} at the {D2} last spring.",
          "My family has a {G} of {S1} on one side.",
          "I {VP} a {A} {S2} once before this {G}.",
      },
      true, false, true, false, 0, 0});
  // (c) Treatments tried: past, first person.
  p.intentions.push_back(IntentionSpec{
      "describe treatments tried",
      {"tried", "treatment attempts", "what helped"},
      {
          "I {VP} the {S2} for a {G} without relief.",
          "I have already {VN} a {A} {S1} twice.",
          "We {VP} the {D} plan and {VP2} the {S2} dose.",
          "I {VP} my {G} and the {S1} stayed the same.",
          "A {D} {VP} the {S2} but the {G} returned.",
      },
      false, false, false, false, 0, 0});
  // (d) Ask advice: interrogative, second person, core closer.
  p.intentions.push_back(IntentionSpec{
      "ask for medical advice",
      {"question", "should I", "advice request"},
      {
          "Should I {VB} the {S1} before my next {D}?",
          "Has anyone {VN} a {A} {S2} like this?",
          "Do you know whether the {S1} could {VB} the {S2}?",
          "Is there a safe way to {VB} the {S1} at home?",
          "What would you {VB} for a {A} {S2}?",
      },
      false, true, false, true, 2, 4});
  // (e) Express worry: present, first person, background.
  p.intentions.push_back(IntentionSpec{
      "express worry",
      {"worried", "anxiety", "concern"},
      {
          "I am really worried about the {A} {S2}.",
          "This {A} {G} scares me more than I admit.",
          "I hope the {S1} means nothing serious.",
          "Honestly the {G} keeps me awake at night.",
      },
      false, false, true, false, 0, 0});
  // (f) Doctor interactions: past, third person, passive lean.
  p.intentions.push_back(IntentionSpec{
      "report doctor interaction",
      {"doctor said", "appointment report", "test results"},
      {
          "The {D} {VP} a {S1} and ordered a {D2}.",
          "A {S2} was {VN} by the {D} last {G}.",
          "The {D2} {VP} my {S1} and said the {G} looked {A}.",
          "They {VP} the {S2} during the {D} and found nothing.",
      },
      false, false, false, false, 0, 0});
  return p;
}

}  // namespace

const DomainProfile& domain_profile(ForumDomain domain) {
  static const DomainProfile* kTech = new DomainProfile(make_tech_support());
  static const DomainProfile* kTravel = new DomainProfile(make_travel());
  static const DomainProfile* kProg = new DomainProfile(make_programming());
  static const DomainProfile* kHealth = new DomainProfile(make_health());
  switch (domain) {
    case ForumDomain::kTechSupport: return *kTech;
    case ForumDomain::kTravel: return *kTravel;
    case ForumDomain::kProgramming: return *kProg;
    case ForumDomain::kHealth: return *kHealth;
  }
  return *kTech;
}

}  // namespace ibseg
