#include "datagen/template_engine.h"

#include <cassert>
#include <map>

namespace ibseg {
namespace {

const std::string& draw(const std::vector<std::string>& pool, Rng& rng) {
  assert(!pool.empty());
  return pool[rng.next_below(pool.size())];
}

// Draws an entry distinct from those in `used` when possible.
std::string draw_distinct(const std::vector<std::string>& pool, Rng& rng,
                          std::vector<std::string>& used) {
  for (int attempt = 0; attempt < 8; ++attempt) {
    const std::string& candidate = draw(pool, rng);
    bool clash = false;
    for (const std::string& u : used) {
      if (u == candidate) {
        clash = true;
        break;
      }
    }
    if (!clash) {
      used.push_back(candidate);
      return candidate;
    }
  }
  std::string fallback = draw(pool, rng);
  used.push_back(fallback);
  return fallback;
}

}  // namespace

std::string render_template(std::string_view pattern,
                            const TemplatePools& pools, Rng& rng) {
  std::string out;
  out.reserve(pattern.size() + 32);
  std::map<std::string, std::string> bound;  // placeholder -> drawn term
  std::vector<std::string> used_scenario;

  size_t i = 0;
  while (i < pattern.size()) {
    if (pattern[i] != '{') {
      out.push_back(pattern[i++]);
      continue;
    }
    size_t close = pattern.find('}', i);
    if (close == std::string_view::npos) {
      out.append(pattern.substr(i));
      break;
    }
    std::string key(pattern.substr(i + 1, close - i - 1));
    i = close + 1;
    auto it = bound.find(key);
    if (it != bound.end()) {
      out.append(it->second);
      continue;
    }
    std::string value;
    const std::vector<std::string>& scenario_pool =
        pools.scenario_terms.empty() ? pools.shared_terms
                                     : pools.scenario_terms;
    if (key == "S1" || key == "S2" || key == "S3") {
      value = scenario_pool.empty()
                  ? std::string("component")
                  : draw_distinct(scenario_pool, rng, used_scenario);
    } else if (key == "D" || key == "D2") {
      value = pools.shared_terms.empty() ? std::string("system")
                                         : draw(pools.shared_terms, rng);
    } else if (key == "G" || key == "G2") {
      value = pools.generic_terms.empty() ? std::string("thing")
                                          : draw(pools.generic_terms, rng);
    } else if (key.size() >= 2 && key[0] == 'V' &&
               (key[1] == 'B' || key[1] == 'Z' || key[1] == 'P' ||
                key[1] == 'N' || key[1] == 'G')) {
      if (pools.verbs.empty()) {
        value = "check";
      } else {
        const VerbForms& v = pools.verbs[rng.next_below(pools.verbs.size())];
        switch (key[1]) {
          case 'B': value = v.base; break;
          case 'Z': value = v.pres3; break;
          case 'P': value = v.past; break;
          case 'N': value = v.past; break;  // regular participle == past
          case 'G': value = v.gerund; break;
        }
      }
    } else if (key == "A") {
      value = pools.adjectives.empty() ? std::string("strange")
                                       : draw(pools.adjectives, rng);
    } else {
      value = "{" + key + "}";  // unknown placeholder: keep literal
    }
    bound.emplace(std::move(key), value);
    out.append(value);
  }
  return out;
}

}  // namespace ibseg
