#include "datagen/post_generator.h"

#include <algorithm>
#include <array>
#include <cassert>
#include <cmath>
#include <unordered_set>

#include "datagen/template_engine.h"
#include "text/stopwords.h"
#include "util/rng.h"
#include "util/thread_pool.h"

namespace ibseg {
namespace {

// Picks the intention sequence for a post: an opener-biased first segment,
// a closer-biased last segment, and middles drawn from the rest; with
// probability intent_repeat_prob a middle segment reuses an earlier
// intention (possibly non-adjacent, to exercise refinement).
std::vector<int> pick_intents(const DomainProfile& profile, size_t count,
                              double repeat_prob, Rng& rng) {
  const size_t num_intents = profile.intentions.size();
  std::vector<int> openers;
  std::vector<int> closers;
  std::vector<int> middles;
  for (size_t i = 0; i < num_intents; ++i) {
    if (profile.intentions[i].opener) openers.push_back(static_cast<int>(i));
    if (profile.intentions[i].closer) closers.push_back(static_cast<int>(i));
    if (!profile.intentions[i].opener) middles.push_back(static_cast<int>(i));
  }
  std::vector<int> intents;
  for (size_t s = 0; s < count; ++s) {
    int pick = -1;
    if (s == 0 && !openers.empty() && rng.next_bool(0.8)) {
      pick = openers[rng.next_below(openers.size())];
    } else if (s + 1 == count && count > 1 && !closers.empty() &&
               rng.next_bool(0.7)) {
      pick = closers[rng.next_below(closers.size())];
    } else if (s >= 2 && rng.next_bool(repeat_prob)) {
      // Reuse an earlier, non-adjacent intention.
      pick = intents[rng.next_below(intents.size() - 1)];
    } else {
      const std::vector<int>& pool = middles.empty() ? closers : middles;
      pick = pool[rng.next_below(pool.size())];
    }
    // Avoid immediate repetition (adjacent same-intention segments would
    // not be distinguishable even by a perfect segmenter).
    if (!intents.empty() && pick == intents.back()) {
      pick = static_cast<int>((pick + 1) % num_intents);
    }
    intents.push_back(pick);
  }
  // Guarantee a core intention: a thread exists to state its problem or
  // ask its question, and related posts are reachable through exactly
  // those segments.
  std::vector<int> cores;
  for (size_t i = 0; i < num_intents; ++i) {
    if (profile.intentions[i].core) cores.push_back(static_cast<int>(i));
  }
  if (!cores.empty()) {
    bool has_core = false;
    for (int i : intents) {
      if (profile.intentions[static_cast<size_t>(i)].core) has_core = true;
    }
    if (!has_core) {
      int core = cores[rng.next_below(cores.size())];
      size_t slot = intents.size() - 1;  // closers are usually questions
      if (intents.size() > 1 && intents[slot] == core) slot = 0;
      intents[slot] = core;
      // Re-check adjacency after the swap.
      if (intents.size() > 1) {
        size_t prev = slot > 0 ? slot - 1 : slot + 1;
        if (intents[prev] == intents[slot]) {
          intents[prev] = static_cast<int>(
              (intents[prev] + 1) % static_cast<int>(num_intents));
        }
      }
    }
  }
  return intents;
}

size_t sample_segment_count(const DomainProfile& profile, Rng& rng) {
  return rng.next_weighted(profile.segment_count_weights) + 1;
}

}  // namespace

std::vector<std::string> synthesize_scenario_terms(size_t scenario_index,
                                                   size_t count) {
  static constexpr std::array<const char*, 16> kOnsets = {
      "zor", "bel", "cli", "vel", "dax", "mir", "lum", "tek",
      "ran", "sil", "vox", "nar", "qui", "fos", "gar", "plo"};
  static constexpr std::array<const char*, 12> kCodas = {
      "bex", "tron", "dex", "pod", "mod", "lix",
      "gon", "vat", "nox", "rix", "sum", "tal"};
  Rng rng(0x5EED5000ULL + scenario_index * 7919ULL);
  std::vector<std::string> terms;
  terms.reserve(count);
  while (terms.size() < count) {
    std::string term = std::string(kOnsets[rng.next_below(kOnsets.size())]) +
                       kCodas[rng.next_below(kCodas.size())];
    if (rng.next_bool(0.3)) term += kOnsets[rng.next_below(kOnsets.size())];
    if (std::find(terms.begin(), terms.end(), term) == terms.end()) {
      terms.push_back(std::move(term));
    }
  }
  return terms;
}

SyntheticCorpus generate_corpus(const GeneratorOptions& options) {
  const DomainProfile& profile = domain_profile(options.domain);
  SyntheticCorpus corpus;
  corpus.domain = options.domain;
  assert(options.posts_per_scenario > 0);
  corpus.num_scenarios = (options.num_posts + options.posts_per_scenario - 1) /
                         options.posts_per_scenario;

  // A scenario is a (component, problem) pair: several scenarios share one
  // component vocabulary (paper Fig. 1 — Docs A and B share HP/RAID terms
  // but ask different questions; only same-problem posts are related).
  const size_t ppc =
      static_cast<size_t>(std::max(1, options.problems_per_component));
  const size_t num_components = (corpus.num_scenarios + ppc - 1) / ppc;

  // Component term sets: curated first, synthesized beyond; padded with
  // synthesized terms up to scenario_pool_size.
  std::vector<std::vector<std::string>> components;
  components.reserve(num_components);
  for (size_t c = 0; c < num_components; ++c) {
    std::vector<std::string> terms;
    if (c < profile.curated_scenarios.size()) {
      terms = profile.curated_scenarios[c];
    }
    if (terms.size() < options.scenario_pool_size) {
      size_t synth_index = c < profile.curated_scenarios.size()
                               ? c + 1000  // disjoint stream from base sets
                               : c - profile.curated_scenarios.size();
      std::vector<std::string> extra = synthesize_scenario_terms(
          synth_index, options.scenario_pool_size - terms.size());
      for (std::string& t : extra) terms.push_back(std::move(t));
    }
    components.push_back(std::move(terms));
  }

  // Chatter vocabulary: medium-frequency words sprinkled through the
  // background talk of most posts. Scenario problem-identity terms are
  // drawn from it, so corpus-wide they are undistinctive (high document
  // frequency) while within the right intention cluster they are rare and
  // decisive — "the same term weighs differently depending on the
  // intention of the segment in which it is found" (paper abstract).
  std::vector<std::string> chatter_pool = synthesize_scenario_terms(
      80000 + static_cast<size_t>(profile.domain), options.chatter_pool_size);

  // Problem-identity terms per scenario: sibling scenarios of one
  // component take disjoint 3-term slices of a component-seeded shuffle of
  // the chatter pool.
  constexpr size_t kProblemTerms = 3;
  std::vector<std::vector<std::string>> problem_terms(corpus.num_scenarios);
  for (size_t c = 0; c < num_components; ++c) {
    std::vector<std::string> shuffled = chatter_pool;
    Rng shuffle_rng(0xC0FFEE00ULL + c * 131ULL);
    shuffle_rng.shuffle(shuffled);
    for (size_t j = 0; j < ppc; ++j) {
      size_t s = c * ppc + j;
      if (s >= corpus.num_scenarios) break;
      for (size_t t = 0; t < kProblemTerms && j * kProblemTerms + t < shuffled.size();
           ++t) {
        problem_terms[s].push_back(shuffled[j * kProblemTerms + t]);
      }
    }
  }

  // Domain-wide generic vocabulary for core segments ({G} draws).
  std::vector<std::string> generic_pool = profile.generic_terms;
  for (size_t i = 0; generic_pool.size() < options.generic_pool_size; ++i) {
    std::vector<std::string> extra = synthesize_scenario_terms(
        90000 + static_cast<size_t>(profile.domain) * 1000 + i, 6);
    for (std::string& t : extra) {
      if (generic_pool.size() >= options.generic_pool_size) break;
      generic_pool.push_back(std::move(t));
    }
  }

  Rng rng(options.seed);
  corpus.posts.reserve(options.num_posts);
  for (size_t i = 0; i < options.num_posts; ++i) {
    GeneratedPost post;
    post.scenario_id = static_cast<int>(i / options.posts_per_scenario);
    post.component_id = static_cast<int>(
        static_cast<size_t>(post.scenario_id) / ppc);
    const std::vector<std::string>& component =
        components[static_cast<size_t>(post.component_id)];
    const std::vector<std::string>& problems =
        problem_terms[static_cast<size_t>(post.scenario_id)];

    // Core pool: component terms + (doubled) problem-identity terms; the
    // problem terms are what distinguish this scenario from its component
    // siblings.
    TemplatePools core_pools;
    core_pools.scenario_terms = component;
    for (int rep = 0; rep < 2; ++rep) {
      for (const std::string& t : problems) {
        core_pools.scenario_terms.push_back(t);
      }
    }
    core_pools.shared_terms = profile.shared_terms;
    core_pools.adjectives = profile.adjectives;
    core_pools.generic_terms = generic_pool;
    core_pools.verbs = profile.verbs;

    // Background pool: component terms only (the author's setup), with
    // chatter as the generic vocabulary — this is what drives the chatter
    // terms' high corpus-wide document frequency.
    TemplatePools background_pools = core_pools;
    background_pools.scenario_terms = component;
    background_pools.generic_terms = chatter_pool;

    // Passing-mention pools: the author's *other* components, a small
    // concentrated term subset each ("my raid array ... the raid rebuild").
    // To a whole-post matcher these mentions are indistinguishable from
    // another component's core usage.
    std::vector<TemplatePools> mention_pools;
    if (num_components > 1) {
      int wanted = std::max(1, options.contaminants_per_post);
      int copies = std::max(1, static_cast<int>(std::lround(
                                   options.contaminant_ratio)));
      for (int m = 0; m < wanted; ++m) {
        size_t other = rng.next_below(num_components);
        if (other == static_cast<size_t>(post.component_id)) {
          other = (other + 1) % num_components;
        }
        std::vector<std::string> mention_terms = components[other];
        rng.shuffle(mention_terms);
        if (mention_terms.size() > 3) mention_terms.resize(3);
        TemplatePools contaminated = background_pools;
        for (int c = 0; c < copies; ++c) {
          for (const std::string& t : mention_terms) {
            contaminated.scenario_terms.push_back(t);
          }
        }
        mention_pools.push_back(std::move(contaminated));
        post.contaminants.push_back(static_cast<int>(other));
      }
      post.contaminant_scenario = post.contaminants.front();
    }

    size_t num_segments = sample_segment_count(profile, rng);
    post.segment_intents =
        pick_intents(profile, num_segments, options.intent_repeat_prob, rng);

    size_t sentence_count = 0;
    post.true_segmentation.num_units = 0;
    for (size_t s = 0; s < num_segments; ++s) {
      const IntentionSpec& intent =
          profile.intentions[static_cast<size_t>(post.segment_intents[s])];
      int min_sent = intent.min_sentences > 0
                         ? intent.min_sentences
                         : profile.min_sentences_per_segment;
      int max_sent = intent.max_sentences > 0
                         ? intent.max_sentences
                         : profile.max_sentences_per_segment;
      int sentences = static_cast<int>(rng.next_int(min_sent, max_sent));
      for (int k = 0; k < sentences; ++k) {
        const std::string& pattern =
            intent.templates[rng.next_below(intent.templates.size())];
        const TemplatePools* sentence_pools = &core_pools;
        if (intent.background) {
          sentence_pools =
              (!mention_pools.empty() &&
               rng.next_bool(options.background_noise))
                  ? &mention_pools[rng.next_below(mention_pools.size())]
                  : &background_pools;
        } else if (!mention_pools.empty() &&
                   rng.next_bool(options.mention_noise)) {
          sentence_pools = &mention_pools[rng.next_below(mention_pools.size())];
        }
        std::string sentence = render_template(pattern, *sentence_pools, rng);
        if (!post.text.empty()) post.text.push_back(' ');
        post.text += sentence;
        ++sentence_count;
      }
      if (s + 1 < num_segments) {
        post.true_segmentation.borders.push_back(sentence_count);
      }
    }
    post.true_segmentation.num_units = sentence_count;
    corpus.posts.push_back(std::move(post));
  }
  return corpus;
}

std::vector<Document> analyze_corpus(const SyntheticCorpus& corpus) {
  std::vector<Document> docs;
  docs.reserve(corpus.posts.size());
  for (size_t i = 0; i < corpus.posts.size(); ++i) {
    docs.push_back(
        Document::analyze(static_cast<DocId>(i), corpus.posts[i].text));
  }
  return docs;
}

std::vector<Document> analyze_corpus_parallel(const SyntheticCorpus& corpus,
                                              size_t num_threads) {
  if (num_threads <= 1 || corpus.posts.size() < 2) {
    return analyze_corpus(corpus);
  }
  std::vector<Document> docs(corpus.posts.size());
  ThreadPool pool(num_threads);
  pool.parallel_for(corpus.posts.size(), [&](size_t i) {
    docs[i] = Document::analyze(static_cast<DocId>(i), corpus.posts[i].text);
  });
  return docs;
}

CorpusStats compute_corpus_stats(const SyntheticCorpus& corpus) {
  CorpusStats stats;
  stats.num_posts = corpus.posts.size();
  if (corpus.posts.empty()) return stats;
  std::unordered_set<std::string> vocabulary;
  size_t total_terms = 0;
  size_t total_sentences = 0;
  size_t total_segments = 0;
  for (const GeneratedPost& post : corpus.posts) {
    for (const Token& t : tokenize(post.text)) {
      if (t.kind == TokenKind::kPunctuation) continue;
      if (t.kind == TokenKind::kWord && is_stopword(t.lower)) continue;
      ++total_terms;
      vocabulary.insert(t.lower);
    }
    total_sentences += post.true_segmentation.num_units;
    total_segments += post.true_segmentation.num_segments();
  }
  double n = static_cast<double>(corpus.posts.size());
  stats.avg_terms_per_post = static_cast<double>(total_terms) / n;
  stats.unique_term_percent =
      total_terms == 0
          ? 0.0
          : 100.0 * static_cast<double>(vocabulary.size()) /
                static_cast<double>(total_terms);
  stats.avg_sentences_per_post = static_cast<double>(total_sentences) / n;
  stats.avg_segments_per_post = static_cast<double>(total_segments) / n;
  return stats;
}

}  // namespace ibseg
