#include "datagen/adversarial.h"

#include <algorithm>
#include <cassert>
#include <utility>

namespace ibseg {
namespace {

/// Max meanPrec@5 over `queries`: each query's ceiling is
/// min(relevant_count, 5) / 5.
double max_mean_prec5(const SyntheticCorpus& corpus,
                      const std::vector<DocId>& queries) {
  if (queries.empty()) return 0.0;
  std::vector<size_t> scenario_sizes;
  for (const GeneratedPost& p : corpus.posts) {
    size_t s = static_cast<size_t>(p.scenario_id);
    if (s >= scenario_sizes.size()) scenario_sizes.resize(s + 1, 0);
    ++scenario_sizes[s];
  }
  double total = 0.0;
  for (DocId q : queries) {
    size_t relevant =
        scenario_sizes[static_cast<size_t>(corpus.posts[q].scenario_id)] - 1;
    total += static_cast<double>(std::min<size_t>(relevant, 5)) / 5.0;
  }
  return total / static_cast<double>(queries.size());
}

/// The hard evaluation dials shared by every profile (the bench
/// profiles' settings — heavy background contamination, tight scenario
/// pools), so adversarial difficulty comes from the workload SHAPE, not
/// from a softer generator.
GeneratorOptions hard_options(ForumDomain domain, size_t num_posts,
                              uint64_t seed) {
  GeneratorOptions gen;
  gen.domain = domain;
  gen.num_posts = num_posts;
  gen.seed = seed;
  gen.background_noise = 0.9;
  gen.mention_noise = 0.0;
  gen.contaminant_ratio = 3.0;
  gen.scenario_pool_size = 6;
  return gen;
}

}  // namespace

AdversarialCorpus generate_near_duplicate_pairs(size_t num_posts,
                                                uint64_t seed) {
  GeneratorOptions gen =
      hard_options(ForumDomain::kTechSupport, num_posts, seed);
  // Every scenario is a question PAIR, and four pairs share one
  // component vocabulary: a query's nearest negatives differ from its
  // one true duplicate only in the 3 problem-identity terms.
  gen.posts_per_scenario = 2;
  gen.problems_per_component = 4;

  AdversarialCorpus out;
  out.name = "near_duplicates";
  out.corpus = generate_corpus(gen);
  out.offline_posts = out.corpus.posts.size();
  for (DocId q = 0; q < out.corpus.posts.size(); ++q) out.queries.push_back(q);
  out.max_mean_prec5 = max_mean_prec5(out.corpus, out.queries);
  return out;
}

AdversarialCorpus generate_bursty_hot_topics(size_t num_posts, uint64_t seed,
                                             size_t hot_scenarios) {
  GeneratorOptions gen =
      hard_options(ForumDomain::kProgramming, num_posts, seed);
  gen.posts_per_scenario = 12;  // long threads, SemEval question threads
  SyntheticCorpus generated = generate_corpus(gen);
  if (hot_scenarios >= generated.num_scenarios) {
    hot_scenarios = generated.num_scenarios > 1 ? generated.num_scenarios - 1
                                                : 0;
  }
  const int first_hot =
      static_cast<int>(generated.num_scenarios - hot_scenarios);

  // Reorder: steady-state threads first (the offline build), then each
  // hot thread as one contiguous burst — the ingest order a hot topic
  // produces on a live forum. Scenario ground truth travels with the
  // posts; only ids change.
  AdversarialCorpus out;
  out.name = "bursty_hot_topic";
  out.corpus.domain = generated.domain;
  out.corpus.num_scenarios = generated.num_scenarios;
  for (const GeneratedPost& p : generated.posts) {
    if (p.scenario_id < first_hot) out.corpus.posts.push_back(p);
  }
  out.offline_posts = out.corpus.posts.size();
  for (const GeneratedPost& p : generated.posts) {
    if (p.scenario_id >= first_hot) out.corpus.posts.push_back(p);
  }

  // Queries: every burst post (its thread-mates are in the freshly
  // ingested flood) and every 4th steady post (the burst must not
  // hijack their answers).
  for (DocId q = 0; q < out.offline_posts; q += 4) out.queries.push_back(q);
  for (DocId q = static_cast<DocId>(out.offline_posts);
       q < out.corpus.posts.size(); q += 2) {
    out.queries.push_back(q);
  }
  out.max_mean_prec5 = max_mean_prec5(out.corpus, out.queries);
  return out;
}

AdversarialCorpus generate_cross_domain_confounders(size_t num_posts,
                                                    uint64_t seed) {
  GeneratorOptions tech_gen =
      hard_options(ForumDomain::kTechSupport, num_posts / 2, seed);
  tech_gen.posts_per_scenario = 4;
  GeneratorOptions travel_gen =
      hard_options(ForumDomain::kTravel, num_posts - num_posts / 2, seed + 1);
  travel_gen.posts_per_scenario = 4;
  SyntheticCorpus tech = generate_corpus(tech_gen);
  SyntheticCorpus travel = generate_corpus(travel_gen);

  // Concatenate with relabeled travel ground truth. The confounder is in
  // the TEXT, not the labels: past each domain's curated lists, component
  // vocabularies come from the same deterministic synthesis stream
  // (post_generator.cc synth_index), so component k of tech and
  // component k of travel share pseudo-entity terms while no cross-domain
  // pair is ever related.
  AdversarialCorpus out;
  out.name = "cross_domain_confounders";
  out.corpus.domain = tech.domain;
  out.corpus.num_scenarios = tech.num_scenarios + travel.num_scenarios;
  out.corpus.posts = tech.posts;
  const int scenario_offset = static_cast<int>(tech.num_scenarios);
  constexpr int kComponentOffset = 1 << 20;  // disjoint component id space
  for (GeneratedPost post : travel.posts) {
    post.scenario_id += scenario_offset;
    post.component_id += kComponentOffset;
    for (int& c : post.contaminants) c += scenario_offset;
    if (post.contaminant_scenario >= 0) {
      post.contaminant_scenario += scenario_offset;
    }
    out.corpus.posts.push_back(std::move(post));
  }
  out.offline_posts = out.corpus.posts.size();
  for (DocId q = 0; q < out.corpus.posts.size(); q += 2) {
    out.queries.push_back(q);
  }
  out.max_mean_prec5 = max_mean_prec5(out.corpus, out.queries);
  return out;
}

std::vector<AdversarialCorpus> all_adversarial_profiles(size_t num_posts,
                                                        uint64_t seed) {
  std::vector<AdversarialCorpus> profiles;
  profiles.push_back(generate_near_duplicate_pairs(num_posts, seed * 100 + 1));
  profiles.push_back(generate_bursty_hot_topics(num_posts, seed * 100 + 2));
  profiles.push_back(
      generate_cross_domain_confounders(num_posts, seed * 100 + 3));
  return profiles;
}

}  // namespace ibseg
