#ifndef IBSEG_DATAGEN_POST_GENERATOR_H_
#define IBSEG_DATAGEN_POST_GENERATOR_H_

#include <cstdint>
#include <string>
#include <vector>

#include "datagen/domain_profiles.h"
#include "seg/document.h"
#include "seg/segmentation.h"

namespace ibseg {

/// Options for synthesizing one corpus.
struct GeneratorOptions {
  ForumDomain domain = ForumDomain::kTechSupport;
  /// Total posts to generate.
  size_t num_posts = 200;
  /// Posts sharing a scenario (= the ground-truth "related" sets). The
  /// number of scenarios is ceil(num_posts / posts_per_scenario).
  size_t posts_per_scenario = 6;
  uint64_t seed = 42;
  /// Probability that a later segment reuses an earlier segment's intention
  /// (non-adjacent same-intention segments exercise the refinement step of
  /// Sec. 6).
  double intent_repeat_prob = 0.10;
  /// Per-sentence probability that a *background* segment (context /
  /// feelings / meta) mentions the post's contaminant scenario — the
  /// passing mentions that create within-category vocabulary overlap and
  /// mislead whole-post matching (the paper's Fig. 1 motivation).
  double background_noise = 0.7;
  /// Same, for sentences of non-background segments. Non-zero so the
  /// contaminant vocabulary is not itself a border cue.
  double mention_noise = 0.15;
  /// Weight of the contaminant scenario's terms relative to the post's own
  /// terms within a contaminated sentence's pool (2.0 = contaminant terms
  /// are twice as likely per draw). Higher values push whole-post matching
  /// toward the contaminant's scenario — the dial for how confusable a
  /// domain's posts are (the paper's HP/StackOverflow FullText precision
  /// is ~0.16 while TripAdvisor's is ~0.53).
  double contaminant_ratio = 2.0;
  /// Scenario vocabulary size. Larger pools mean two related posts share
  /// only a few specific terms (as real forum posts do — people name the
  /// same problem with different words), which is what keeps whole-post
  /// term matching from trivially solving the task. Curated scenario sets
  /// are padded with synthesized terms up to this size.
  size_t scenario_pool_size = 12;
  /// Size of the domain's generic vocabulary ({G} draws). The profile's
  /// curated list is padded with synthesized words up to this size. A wide
  /// mid-document-frequency vocabulary is what makes posts of one thematic
  /// category "anyway similar" (paper Sec. 1): random pairs collide on a
  /// few medium-IDF terms, which is the noise floor whole-post matching
  /// has to rank against.
  size_t generic_pool_size = 300;
  /// How many distinct other scenarios a post mentions in passing. Real
  /// posters reference several of their components/places; each mention
  /// set attracts that scenario's posts under whole-post matching.
  int contaminants_per_post = 2;
  /// Scenarios sharing one *component* vocabulary. A scenario is a
  /// (component, problem) pair — the paper's Fig. 1: Doc A and Doc B share
  /// HP/RAID component terms but ask different questions and are NOT
  /// related, while Doc A and Doc C share the question with little content
  /// overlap and ARE. Component terms alone therefore cannot identify
  /// related posts.
  int problems_per_component = 2;
  /// Size of the domain "chatter" vocabulary: medium-frequency words that
  /// appear as background chatter in most posts AND serve as the
  /// problem-identity terms of scenarios. Corpus-wide their document
  /// frequency is high (a whole-post matcher learns nothing from them);
  /// within the right intention cluster they are rare and decisive — the
  /// paper's "same term weighs differently depending on the intention".
  size_t chatter_pool_size = 40;
};

/// One synthesized post with its ground truth.
struct GeneratedPost {
  std::string text;
  /// Ground-truth intention borders in sentence units.
  Segmentation true_segmentation;
  /// Intention index (into DomainProfile::intentions) per true segment.
  std::vector<int> segment_intents;
  /// Ground-truth relatedness class: posts are related iff they share it.
  int scenario_id = 0;
  /// The component (vocabulary family) this scenario belongs to; several
  /// scenarios share one component.
  int component_id = 0;
  /// The other scenarios this post mentions in passing.
  std::vector<int> contaminants;
  /// First contaminant (-1 when none); kept for convenience.
  int contaminant_scenario = -1;
};

/// A synthesized corpus.
struct SyntheticCorpus {
  ForumDomain domain = ForumDomain::kTechSupport;
  size_t num_scenarios = 0;
  std::vector<GeneratedPost> posts;

  const DomainProfile& profile() const { return domain_profile(domain); }
};

/// Generates a corpus per `options`. Deterministic in the seed.
SyntheticCorpus generate_corpus(const GeneratorOptions& options);

/// Analyzes every post into a Document (DocId = index in posts). The
/// generator guarantees the sentence splitter sees exactly the sentences it
/// emitted, so `true_segmentation.num_units == Document::num_units()`.
std::vector<Document> analyze_corpus(const SyntheticCorpus& corpus);

/// Same, with the per-post analysis fanned out over `num_threads` workers
/// (document analysis dominates offline cost at StackOverflow scale;
/// Sec. 9.2.4 reports the paper doing exactly this in 32 chunks).
std::vector<Document> analyze_corpus_parallel(const SyntheticCorpus& corpus,
                                              size_t num_threads);

/// Corpus statistics in the form the paper reports for its datasets
/// (Sec. 9 "Datasets": average post size in terms, % unique terms).
struct CorpusStats {
  size_t num_posts = 0;
  double avg_terms_per_post = 0.0;      ///< word+number tokens per post
  double unique_term_percent = 0.0;     ///< corpus vocab / total tokens
  double avg_sentences_per_post = 0.0;
  double avg_segments_per_post = 0.0;   ///< ground-truth intention segments
};

CorpusStats compute_corpus_stats(const SyntheticCorpus& corpus);

/// Synthesizes scenario term sets beyond the curated list: pronounceable
/// pseudo-nouns ("veltronic parts" territory) built from syllables,
/// `count` terms per scenario, deterministic in the scenario index.
std::vector<std::string> synthesize_scenario_terms(size_t scenario_index,
                                                   size_t count = 6);

}  // namespace ibseg

#endif  // IBSEG_DATAGEN_POST_GENERATOR_H_
