#ifndef IBSEG_DATAGEN_ADVERSARIAL_H_
#define IBSEG_DATAGEN_ADVERSARIAL_H_

#include <cstdint>
#include <string>
#include <vector>

#include "datagen/post_generator.h"

/// \file
/// Adversarial community-question-answering workloads, modeled on the
/// stress axes of SemEval-2016 Task 3 (question–question similarity over
/// Qatar Living forum threads): near-duplicate question pairs whose hard
/// negatives share almost all their vocabulary, bursty hot-topic streams
/// that flood the index with one thread's posts, and cross-domain
/// confounder vocabulary where unrelated forums collide on the same
/// product/entity terms. Each generator returns the corpus plus the
/// query set and ground truth a quality gate evaluates against
/// (bench/graded_eval enforces a meanPrec@5 floor per profile).

namespace ibseg {

/// One adversarial workload: a corpus (posts with same-scenario ground
/// truth), the documents to use as queries, and — for streaming profiles
/// — how much of the corpus belongs to the offline build.
struct AdversarialCorpus {
  /// Profile slug ("near_duplicates", "bursty_hot_topic",
  /// "cross_domain_confounders") — stable, used in BENCH json keys.
  std::string name;
  SyntheticCorpus corpus;
  /// Documents to evaluate as queries (ids index corpus.posts).
  std::vector<DocId> queries;
  /// Posts [0, offline_posts) form the offline build; posts from
  /// offline_posts on arrive as ONLINE ingests in corpus order (equals
  /// corpus.posts.size() for the static profiles).
  size_t offline_posts = 0;
  /// Largest meanPrec@5 any method could score over `queries` (relevant
  /// posts may number fewer than 5) — the denominator that makes floors
  /// comparable across profiles.
  double max_mean_prec5 = 0.0;
};

/// Near-duplicate question pairs: every scenario is a 2-post pair (the
/// SemEval "original vs. related question" shape — one problem asked
/// twice in different words), and each component packs several such
/// pairs, so the nearest non-relevant posts share the pair's component
/// vocabulary almost term for term. Queries: every post; exactly one
/// relevant answer each (max meanPrec@5 = 0.2).
AdversarialCorpus generate_near_duplicate_pairs(size_t num_posts,
                                                uint64_t seed = 1601);

/// Bursty hot-topic stream: long question threads (12 posts per
/// scenario); the steady-state scenarios form the offline build and the
/// final `hot_scenarios` threads arrive afterwards as contiguous online
/// bursts — each burst answered under clustering that has never seen its
/// topic. Queries: burst posts (must find their thread-mates among the
/// freshly ingested flood) and steady posts (must not be hijacked by
/// the burst).
AdversarialCorpus generate_bursty_hot_topics(size_t num_posts,
                                             uint64_t seed = 1602,
                                             size_t hot_scenarios = 3);

/// Cross-domain confounder vocabulary: a tech-support corpus and a
/// travel corpus concatenated into one index. Beyond each domain's
/// curated lists, component vocabularies are synthesized from a shared
/// deterministic stream, so component k of one domain and component k of
/// the other collide on the same pseudo-entity terms while their posts
/// are never related — whole-post matching crosses domains on those
/// collisions, intention-scoped matching should not. Queries: every
/// other post of both domains.
AdversarialCorpus generate_cross_domain_confounders(size_t num_posts,
                                                    uint64_t seed = 1603);

/// All three profiles at a common size, in gate order.
std::vector<AdversarialCorpus> all_adversarial_profiles(size_t num_posts,
                                                        uint64_t seed = 16);

}  // namespace ibseg

#endif  // IBSEG_DATAGEN_ADVERSARIAL_H_
