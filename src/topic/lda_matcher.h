#ifndef IBSEG_TOPIC_LDA_MATCHER_H_
#define IBSEG_TOPIC_LDA_MATCHER_H_

#include <map>
#include <vector>

#include "index/intention_matcher.h"
#include "seg/document.h"
#include "text/vocabulary.h"
#include "topic/lda.h"

namespace ibseg {

/// The *LDA* baseline: trains an LDA model over the corpus and ranks
/// documents by similarity of their topic distributions to the query's.
/// The paper notes this method has no index and is the slowest retriever
/// (Sec. 9.2.4); the linear scan here mirrors that.
class LdaMatcher {
 public:
  static LdaMatcher build(const std::vector<Document>& docs, Vocabulary& vocab,
                          const LdaParams& params = {});

  /// Top-k docs by cosine similarity of theta vectors (query excluded).
  std::vector<ScoredDoc> find_related(DocId query, int k) const;

  const LdaModel& model() const { return model_; }

 private:
  LdaMatcher() : model_(LdaModel::train({}, 1, LdaParams{})) {}

  LdaModel model_;
  std::vector<DocId> doc_ids_;
  std::vector<std::vector<double>> thetas_;
  std::map<DocId, size_t> doc_index_;
};

}  // namespace ibseg

#endif  // IBSEG_TOPIC_LDA_MATCHER_H_
