#include "topic/lda.h"

#include <algorithm>
#include <cassert>
#include <cmath>

#include "util/rng.h"

namespace ibseg {

LdaModel LdaModel::train(const std::vector<std::vector<TermId>>& docs,
                         size_t vocab_size, const LdaParams& params) {
  LdaModel m;
  m.params_ = params;
  m.vocab_size_ = vocab_size;
  const int K = params.num_topics;
  assert(K >= 1);

  m.topic_word_counts_.assign(static_cast<size_t>(K),
                              std::vector<int>(vocab_size, 0));
  m.topic_totals_.assign(static_cast<size_t>(K), 0);
  m.doc_topic_counts_.assign(docs.size(), std::vector<int>(K, 0));
  m.doc_totals_.assign(docs.size(), 0);

  Rng rng(params.seed);
  // Topic assignment per token.
  std::vector<std::vector<int>> z(docs.size());
  for (size_t d = 0; d < docs.size(); ++d) {
    z[d].resize(docs[d].size());
    for (size_t i = 0; i < docs[d].size(); ++i) {
      assert(docs[d][i] < vocab_size);
      int topic = static_cast<int>(rng.next_below(static_cast<uint64_t>(K)));
      z[d][i] = topic;
      ++m.topic_word_counts_[topic][docs[d][i]];
      ++m.topic_totals_[topic];
      ++m.doc_topic_counts_[d][topic];
      ++m.doc_totals_[d];
      ++m.total_tokens_;
    }
  }

  const double alpha = params.alpha;
  const double beta = params.beta;
  const double v_beta = beta * static_cast<double>(vocab_size);
  std::vector<double> probs(static_cast<size_t>(K));
  for (int iter = 0; iter < params.iterations; ++iter) {
    for (size_t d = 0; d < docs.size(); ++d) {
      for (size_t i = 0; i < docs[d].size(); ++i) {
        TermId w = docs[d][i];
        int old = z[d][i];
        // Remove the token from the counts.
        --m.topic_word_counts_[old][w];
        --m.topic_totals_[old];
        --m.doc_topic_counts_[d][old];
        // Full conditional.
        for (int k = 0; k < K; ++k) {
          probs[static_cast<size_t>(k)] =
              (m.doc_topic_counts_[d][k] + alpha) *
              (m.topic_word_counts_[k][w] + beta) /
              (m.topic_totals_[k] + v_beta);
        }
        int fresh = static_cast<int>(rng.next_weighted(probs));
        z[d][i] = fresh;
        ++m.topic_word_counts_[fresh][w];
        ++m.topic_totals_[fresh];
        ++m.doc_topic_counts_[d][fresh];
      }
    }
  }
  return m;
}

std::vector<double> LdaModel::doc_topics(size_t doc) const {
  const int K = params_.num_topics;
  std::vector<double> theta(static_cast<size_t>(K), 0.0);
  double denom = doc_totals_[doc] + params_.alpha * K;
  for (int k = 0; k < K; ++k) {
    theta[static_cast<size_t>(k)] =
        (doc_topic_counts_[doc][k] + params_.alpha) / denom;
  }
  return theta;
}

double LdaModel::topic_word(int topic, TermId word) const {
  double denom =
      topic_totals_[topic] + params_.beta * static_cast<double>(vocab_size_);
  return (topic_word_counts_[topic][word] + params_.beta) / denom;
}

std::vector<TermId> LdaModel::top_words(int topic, size_t n) const {
  std::vector<TermId> ids(vocab_size_);
  for (size_t w = 0; w < vocab_size_; ++w) ids[w] = static_cast<TermId>(w);
  size_t keep = std::min(n, ids.size());
  std::partial_sort(ids.begin(), ids.begin() + static_cast<long>(keep),
                    ids.end(), [&](TermId a, TermId b) {
                      return topic_word_counts_[topic][a] >
                             topic_word_counts_[topic][b];
                    });
  ids.resize(keep);
  return ids;
}

double LdaModel::log_likelihood() const {
  // Per-word predictive log likelihood under the point estimates.
  double ll = 0.0;
  const int K = params_.num_topics;
  for (size_t d = 0; d < doc_topic_counts_.size(); ++d) {
    std::vector<double> theta = doc_topics(d);
    for (int k = 0; k < K; ++k) {
      // Expected contribution: sum over assigned counts.
      if (doc_topic_counts_[d][k] == 0) continue;
      ll += doc_topic_counts_[d][k] * std::log(theta[static_cast<size_t>(k)]);
    }
  }
  return total_tokens_ > 0 ? ll / static_cast<double>(total_tokens_) : 0.0;
}

}  // namespace ibseg
