#include "topic/lda_matcher.h"

#include <algorithm>

#include "text/porter_stemmer.h"
#include "text/stopwords.h"
#include "util/vector_math.h"

namespace ibseg {

LdaMatcher LdaMatcher::build(const std::vector<Document>& docs,
                             Vocabulary& vocab, const LdaParams& params) {
  // Corpus as term-id sequences (stemmed, stopword-filtered).
  std::vector<std::vector<TermId>> sequences;
  sequences.reserve(docs.size());
  for (const Document& doc : docs) {
    std::vector<TermId> seq;
    for (const Token& t : doc.tokens()) {
      if (t.kind == TokenKind::kPunctuation) continue;
      if (t.kind == TokenKind::kWord) {
        if (is_stopword(t.lower)) continue;
        seq.push_back(vocab.intern(porter_stem(t.lower)));
      } else {
        seq.push_back(vocab.intern(t.lower));
      }
    }
    sequences.push_back(std::move(seq));
  }

  LdaMatcher m;
  m.model_ = LdaModel::train(sequences, vocab.size(), params);
  m.doc_ids_.reserve(docs.size());
  m.thetas_.reserve(docs.size());
  for (size_t d = 0; d < docs.size(); ++d) {
    m.doc_ids_.push_back(docs[d].id());
    m.thetas_.push_back(m.model_.doc_topics(d));
    m.doc_index_[docs[d].id()] = d;
  }
  return m;
}

std::vector<ScoredDoc> LdaMatcher::find_related(DocId query, int k) const {
  std::vector<ScoredDoc> out;
  auto it = doc_index_.find(query);
  if (it == doc_index_.end() || k <= 0) return out;
  const std::vector<double>& q = thetas_[it->second];

  out.reserve(thetas_.size());
  for (size_t d = 0; d < thetas_.size(); ++d) {
    if (doc_ids_[d] == query) continue;
    double s = cosine_similarity(q, thetas_[d]);
    if (s > 0.0) out.push_back(ScoredDoc{doc_ids_[d], s});
  }
  std::sort(out.begin(), out.end(), [](const ScoredDoc& a, const ScoredDoc& b) {
    if (a.score != b.score) return a.score > b.score;
    return a.doc < b.doc;
  });
  if (out.size() > static_cast<size_t>(k)) out.resize(static_cast<size_t>(k));
  return out;
}

}  // namespace ibseg
