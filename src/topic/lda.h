#ifndef IBSEG_TOPIC_LDA_H_
#define IBSEG_TOPIC_LDA_H_

#include <cstdint>
#include <vector>

#include "text/vocabulary.h"

namespace ibseg {

/// Latent Dirichlet Allocation trained with collapsed Gibbs sampling
/// (Griffiths & Steyvers 2004) — the paper's *LDA* baseline ([7], [35],
/// Sec. 9.2.2) is "matching based on LDA topics with Gibbs sampling".
struct LdaParams {
  int num_topics = 10;
  double alpha = 0.5;   ///< symmetric document-topic prior
  double beta = 0.1;    ///< symmetric topic-word prior
  int iterations = 200; ///< Gibbs sweeps
  uint64_t seed = 7;
};

class LdaModel {
 public:
  /// Trains on a corpus given as term-id sequences (one vector per doc).
  /// `vocab_size` must exceed every term id.
  static LdaModel train(const std::vector<std::vector<TermId>>& docs,
                        size_t vocab_size, const LdaParams& params = {});

  int num_topics() const { return params_.num_topics; }

  /// Smoothed document-topic distribution theta_d (sums to 1).
  std::vector<double> doc_topics(size_t doc) const;

  /// Smoothed topic-word probability phi_k(w).
  double topic_word(int topic, TermId word) const;

  /// The `n` highest-probability words of `topic`.
  std::vector<TermId> top_words(int topic, size_t n) const;

  /// Per-word log likelihood of the training corpus under the final state
  /// (diagnostic; rises as sampling mixes).
  double log_likelihood() const;

 private:
  LdaParams params_;
  size_t vocab_size_ = 0;
  size_t total_tokens_ = 0;
  /// counts: topic x word and doc x topic.
  std::vector<std::vector<int>> topic_word_counts_;
  std::vector<int> topic_totals_;
  std::vector<std::vector<int>> doc_topic_counts_;
  std::vector<int> doc_totals_;
};

}  // namespace ibseg

#endif  // IBSEG_TOPIC_LDA_H_
