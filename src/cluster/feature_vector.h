#ifndef IBSEG_CLUSTER_FEATURE_VECTOR_H_
#define IBSEG_CLUSTER_FEATURE_VECTOR_H_

#include <vector>

#include "seg/document.h"

namespace ibseg {

/// Options for the 28-element segment weight vector of Sec. 6.
struct FeatureVectorOptions {
  /// How the second 14 elements are computed.
  enum class SecondType {
    /// Eq. 6 as printed: segment count / whole-document count, in [0, 1].
    kDocRatio,
    /// Raw per-segment counts, matching the magnitudes of the centroids the
    /// paper shows in Fig. 3 (values like 7.17 or 14.92 cannot come from a
    /// ratio; see DESIGN.md "Known formula notes").
    kRawCount,
  };
  SecondType second_type = SecondType::kDocRatio;
};

/// Dimensionality of the segment representation (2 weights per CM feature).
inline constexpr int kSegmentFeatureDims = 2 * kNumCmFeatures;

/// Builds the clustering representation of the segment spanning sentence
/// units [begin, end) of `doc`:
///  * elements [0, 14): Eq. 5 — within-segment relative strength of each CM
///    value (per-CM normalization);
///  * elements [14, 28): Eq. 6 — strength relative to the whole document
///    (or raw counts, per `options.second_type`).
std::vector<double> segment_feature_vector(
    const Document& doc, size_t begin, size_t end,
    const FeatureVectorOptions& options = {});

/// Same, but for a refined (possibly multi-range) segment.
std::vector<double> segment_feature_vector(
    const Document& doc, const std::vector<std::pair<size_t, size_t>>& ranges,
    const FeatureVectorOptions& options = {});

}  // namespace ibseg

#endif  // IBSEG_CLUSTER_FEATURE_VECTOR_H_
