#include "cluster/intention_clusters.h"

#include "cluster/kmeans.h"

#include <cassert>
#include <limits>
#include <map>

#include "util/thread_pool.h"
#include "util/vector_math.h"

namespace ibseg {
namespace {

std::vector<IntentionClustering::RawRange> flatten_segments(
    const std::vector<Segmentation>& segmentations);

}  // namespace

IntentionClustering IntentionClustering::build(
    const std::vector<Document>& docs,
    const std::vector<Segmentation>& segmentations,
    const GroupingOptions& options) {
  assert(docs.size() == segmentations.size());
  std::vector<RawRange> raw = flatten_segments(segmentations);
  if (raw.empty()) return IntentionClustering();

  std::vector<std::vector<double>> feats;
  feats.reserve(raw.size());
  for (const RawRange& rs : raw) {
    feats.push_back(segment_feature_vector(docs[rs.doc_index], rs.begin,
                                           rs.end, options.features));
  }

  // Number of clusters holding at least min_cluster_fraction of segments.
  auto substantial_clusters = [&](const DbscanResult& r) {
    if (r.num_clusters <= 0) return 0;
    std::vector<size_t> sizes(static_cast<size_t>(r.num_clusters), 0);
    size_t clustered = 0;
    for (int l : r.labels) {
      if (l >= 0) {
        ++sizes[static_cast<size_t>(l)];
        ++clustered;
      }
    }
    size_t floor = static_cast<size_t>(
        options.min_cluster_fraction * static_cast<double>(r.labels.size()));
    int count = 0;
    for (size_t s : sizes) {
      if (s >= std::max<size_t>(floor, 2)) ++count;
    }
    return count;
  };
  auto range_distance = [&](int clusters) {
    if (clusters < options.target_min_clusters) {
      return options.target_min_clusters - clusters;
    }
    if (clusters > options.target_max_clusters) {
      return clusters - options.target_max_clusters;
    }
    return 0;
  };
  auto noise_count = [](const DbscanResult& r) {
    size_t n = 0;
    for (int l : r.labels) {
      if (l < 0) ++n;
    }
    return n;
  };

  DbscanResult db;
  bool used_grid = false;
  if (options.dbscan.eps > 0.0 || options.eps_grid.empty()) {
    db = dbscan(feats, options.dbscan);
  } else {
    used_grid = true;
    // Grid search around the k-distance estimate: pick the eps whose
    // substantial-cluster count is closest to the target range; ties
    // prefer less noise, then the smaller eps (deterministic regardless of
    // the parallel evaluation order below).
    double base = estimate_eps(feats, options.dbscan.min_pts);
    std::vector<DbscanResult> candidates(options.eps_grid.size());
    {
      ThreadPool pool(std::min<size_t>(options.eps_grid.size(), 8));
      pool.parallel_for(options.eps_grid.size(), [&](size_t i) {
        DbscanParams params = options.dbscan;
        params.eps = base * options.eps_grid[i];
        candidates[i] = dbscan(feats, params);
      });
    }
    bool have_best = false;
    int best_dist = 0;
    size_t best_noise = 0;
    for (DbscanResult& candidate : candidates) {
      int dist = range_distance(substantial_clusters(candidate));
      size_t noise = noise_count(candidate);
      if (!have_best || dist < best_dist ||
          (dist == best_dist && noise < best_noise)) {
        db = std::move(candidate);
        best_dist = dist;
        best_noise = noise;
        have_best = true;
      }
    }
  }
  // k-means fallback: when even the best grid eps cannot carve out the
  // minimum number of substantial clusters, the density structure is
  // degenerate (one blob, or shards below min_pts); partition the same
  // feature space directly instead.
  if (used_grid && options.kmeans_fallback_k > 0 &&
      substantial_clusters(db) < options.target_min_clusters &&
      feats.size() > static_cast<size_t>(options.kmeans_fallback_k)) {
    KMeansParams km;
    km.k = options.kmeans_fallback_k;
    KMeansResult kr = kmeans(feats, km);
    db.labels = kr.labels;
    db.num_clusters = static_cast<int>(kr.centroids.size());
    db.eps_used = 0.0;
  }

  // Demote sub-scale clusters to noise (they get re-attached to the
  // nearest substantial cluster below) and renumber densely.
  if (db.num_clusters > 0) {
    std::vector<size_t> sizes(static_cast<size_t>(db.num_clusters), 0);
    for (int l : db.labels) {
      if (l >= 0) ++sizes[static_cast<size_t>(l)];
    }
    size_t floor = std::max<size_t>(
        static_cast<size_t>(options.min_cluster_fraction *
                            static_cast<double>(db.labels.size())),
        2);
    std::vector<int> remap(static_cast<size_t>(db.num_clusters), kNoise);
    int next = 0;
    for (int c = 0; c < db.num_clusters; ++c) {
      if (sizes[static_cast<size_t>(c)] >= floor) remap[c] = next++;
    }
    if (next > 0 && next < db.num_clusters) {
      for (int& l : db.labels) {
        if (l >= 0) l = remap[static_cast<size_t>(l)];
      }
      db.num_clusters = next;
    }
  }
  int num_clusters = db.num_clusters;

  // Cluster centroids (for noise re-assignment).
  size_t dims = feats[0].size();
  std::vector<std::vector<double>> centroids(
      static_cast<size_t>(std::max(num_clusters, 1)),
      std::vector<double>(dims, 0.0));
  std::vector<size_t> counts(centroids.size(), 0);
  for (size_t i = 0; i < raw.size(); ++i) {
    if (db.labels[i] < 0) continue;
    add_into(centroids[static_cast<size_t>(db.labels[i])], feats[i]);
    ++counts[static_cast<size_t>(db.labels[i])];
  }
  for (size_t c = 0; c < centroids.size(); ++c) {
    if (counts[c] > 0) scale(centroids[c], 1.0 / counts[c]);
  }

  // Resolve noise points.
  int noise_cluster = -1;
  for (size_t i = 0; i < raw.size(); ++i) {
    if (db.labels[i] != kNoise) continue;
    if (num_clusters > 0 && options.assign_noise_to_nearest) {
      int best = 0;
      double best_d = std::numeric_limits<double>::max();
      for (int c = 0; c < num_clusters; ++c) {
        double d =
            euclidean_distance(feats[i], centroids[static_cast<size_t>(c)]);
        if (d < best_d) {
          best_d = d;
          best = c;
        }
      }
      db.labels[i] = best;
    } else {
      if (noise_cluster < 0) noise_cluster = num_clusters++;
      db.labels[i] = noise_cluster;
    }
  }
  if (num_clusters == 0) {
    num_clusters = 1;
    for (int& l : db.labels) l = 0;
  }
  return assemble(docs, raw, db.labels, num_clusters, options.features,
                  db.eps_used);
}

IntentionClustering IntentionClustering::from_labels(
    const std::vector<Document>& docs,
    const std::vector<Segmentation>& segmentations,
    const std::vector<int>& labels, int num_clusters,
    const FeatureVectorOptions& features) {
  assert(docs.size() == segmentations.size());
  std::vector<RawRange> raw = flatten_segments(segmentations);
  assert(raw.size() == labels.size());
  // A segment-less slice still carries the collection's cluster count when
  // one is given (a document-partitioned shard may hold no seed segments
  // yet must accept ingests into any of the global clusters).
  if (raw.empty() && num_clusters <= 0) return IntentionClustering();
  return assemble(docs, raw, labels, num_clusters, features, 0.0);
}

IntentionClustering IntentionClustering::assemble(
    const std::vector<Document>& docs, const std::vector<RawRange>& raw,
    const std::vector<int>& labels, int num_clusters,
    const FeatureVectorOptions& features, double eps_used) {
  IntentionClustering out;
  out.eps_used_ = eps_used;
  assert(num_clusters >= 1);

  // Segmentation refinement: concatenate same-document segments that share
  // a cluster (at most one refined segment per doc per cluster).
  std::map<std::pair<size_t, int>, size_t> refined_index;
  for (size_t i = 0; i < raw.size(); ++i) {
    const RawRange& rs = raw[i];
    int cluster = labels[i];
    assert(cluster >= 0 && cluster < num_clusters);
    auto key = std::make_pair(rs.doc_index, cluster);
    auto it = refined_index.find(key);
    if (it == refined_index.end()) {
      RefinedSegment seg;
      seg.doc = docs[rs.doc_index].id();
      seg.cluster = cluster;
      seg.ranges.emplace_back(rs.begin, rs.end);
      refined_index.emplace(key, out.segments_.size());
      out.segments_.push_back(std::move(seg));
    } else {
      out.segments_[it->second].ranges.emplace_back(rs.begin, rs.end);
    }
  }

  out.num_clusters_ = num_clusters;
  out.members_.assign(static_cast<size_t>(num_clusters), {});
  out.doc_segments_.assign(docs.size(), {});
  std::map<DocId, size_t> doc_index;
  for (size_t d = 0; d < docs.size(); ++d) doc_index[docs[d].id()] = d;
  for (size_t s = 0; s < out.segments_.size(); ++s) {
    out.members_[static_cast<size_t>(out.segments_[s].cluster)].push_back(s);
    out.doc_segments_[doc_index[out.segments_[s].doc]].push_back(s);
  }

  // Centroids over refined segments in CM feature space (Fig. 3 export).
  out.centroids_.assign(static_cast<size_t>(num_clusters),
                        std::vector<double>(kSegmentFeatureDims, 0.0));
  std::vector<size_t> refined_counts(static_cast<size_t>(num_clusters), 0);
  for (const RefinedSegment& seg : out.segments_) {
    size_t d = doc_index[seg.doc];
    std::vector<double> f =
        segment_feature_vector(docs[d], seg.ranges, features);
    add_into(out.centroids_[static_cast<size_t>(seg.cluster)], f);
    ++refined_counts[static_cast<size_t>(seg.cluster)];
  }
  for (size_t c = 0; c < out.centroids_.size(); ++c) {
    if (refined_counts[c] > 0) {
      scale(out.centroids_[c], 1.0 / refined_counts[c]);
    }
  }
  return out;
}

namespace {

std::vector<IntentionClustering::RawRange> flatten_segments(
    const std::vector<Segmentation>& segmentations) {
  std::vector<IntentionClustering::RawRange> raw;
  for (size_t d = 0; d < segmentations.size(); ++d) {
    for (auto [b, e] : segmentations[d].segments()) {
      if (b == e) continue;
      raw.push_back(IntentionClustering::RawRange{d, b, e});
    }
  }
  return raw;
}

}  // namespace

}  // namespace ibseg
