#include "cluster/kmeans.h"

#include <cassert>
#include <limits>

#include "util/rng.h"
#include "util/vector_math.h"

namespace ibseg {

KMeansResult kmeans(const std::vector<std::vector<double>>& points,
                    const KMeansParams& params) {
  KMeansResult result;
  const size_t n = points.size();
  if (n == 0) return result;
  const size_t dims = points[0].size();
  size_t k = std::min<size_t>(static_cast<size_t>(params.k), n);
  assert(k >= 1);

  Rng rng(params.seed);
  // k-means++ seeding.
  std::vector<std::vector<double>> centroids;
  centroids.reserve(k);
  centroids.push_back(points[rng.next_below(n)]);
  std::vector<double> d2(n, 0.0);
  while (centroids.size() < k) {
    double total = 0.0;
    for (size_t i = 0; i < n; ++i) {
      double best = std::numeric_limits<double>::max();
      for (const auto& c : centroids) {
        double d = euclidean_distance(points[i], c);
        best = std::min(best, d * d);
      }
      d2[i] = best;
      total += best;
    }
    if (total <= 0.0) {
      centroids.push_back(points[rng.next_below(n)]);
      continue;
    }
    centroids.push_back(points[rng.next_weighted(d2)]);
  }

  std::vector<int> labels(n, 0);
  for (int iter = 0; iter < params.max_iters; ++iter) {
    bool changed = false;
    // Assignment.
    for (size_t i = 0; i < n; ++i) {
      int best = 0;
      double best_d = std::numeric_limits<double>::max();
      for (size_t c = 0; c < k; ++c) {
        double d = euclidean_distance(points[i], centroids[c]);
        if (d < best_d) {
          best_d = d;
          best = static_cast<int>(c);
        }
      }
      if (labels[i] != best) {
        labels[i] = best;
        changed = true;
      }
    }
    result.iterations = iter + 1;
    if (!changed && iter > 0) break;
    // Update.
    std::vector<std::vector<double>> sums(k, std::vector<double>(dims, 0.0));
    std::vector<size_t> counts(k, 0);
    for (size_t i = 0; i < n; ++i) {
      add_into(sums[labels[i]], points[i]);
      ++counts[labels[i]];
    }
    for (size_t c = 0; c < k; ++c) {
      if (counts[c] == 0) {
        // Empty cluster: reseed from the farthest point.
        size_t far = 0;
        double far_d = -1.0;
        for (size_t i = 0; i < n; ++i) {
          double d = euclidean_distance(points[i], centroids[labels[i]]);
          if (d > far_d) {
            far_d = d;
            far = i;
          }
        }
        centroids[c] = points[far];
      } else {
        scale(sums[c], 1.0 / static_cast<double>(counts[c]));
        centroids[c] = std::move(sums[c]);
      }
    }
  }

  result.inertia = 0.0;
  for (size_t i = 0; i < n; ++i) {
    double d = euclidean_distance(points[i], centroids[labels[i]]);
    result.inertia += d * d;
  }
  result.labels = std::move(labels);
  result.centroids = std::move(centroids);
  return result;
}

}  // namespace ibseg
