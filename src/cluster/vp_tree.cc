#include "cluster/vp_tree.h"

#include <algorithm>
#include <cassert>
#include <queue>

#include "util/vector_math.h"

namespace ibseg {

VpTree::VpTree(const std::vector<std::vector<double>>& points)
    : points_(points) {
  std::vector<size_t> items(points.size());
  for (size_t i = 0; i < items.size(); ++i) items[i] = i;
  nodes_.reserve(points.size());
  root_ = build(items, 0, items.size());
}

int VpTree::build(std::vector<size_t>& items, size_t begin, size_t end) {
  if (begin >= end) return -1;
  int node_index = static_cast<int>(nodes_.size());
  nodes_.push_back(Node{});
  size_t vantage = items[begin];
  nodes_[node_index].point = vantage;
  size_t rest_begin = begin + 1;
  if (rest_begin >= end) return node_index;

  size_t mid = rest_begin + (end - rest_begin) / 2;
  std::nth_element(items.begin() + static_cast<long>(rest_begin),
                   items.begin() + static_cast<long>(mid),
                   items.begin() + static_cast<long>(end),
                   [&](size_t a, size_t b) {
                     return euclidean_distance(points_[vantage], points_[a]) <
                            euclidean_distance(points_[vantage], points_[b]);
                   });
  double radius = euclidean_distance(points_[vantage], points_[items[mid]]);
  int inside = build(items, rest_begin, mid + 1);
  int outside = build(items, mid + 1, end);
  nodes_[node_index].radius = radius;
  nodes_[node_index].inside = inside;
  nodes_[node_index].outside = outside;
  return node_index;
}

void VpTree::query_node(int node, const std::vector<double>& q, double eps,
                        std::vector<size_t>* out) const {
  if (node < 0) return;
  const Node& n = nodes_[node];
  double d = euclidean_distance(points_[n.point], q);
  if (d <= eps) out->push_back(n.point);
  // Triangle-inequality pruning.
  if (d - eps <= n.radius) query_node(n.inside, q, eps, out);
  if (d + eps > n.radius) query_node(n.outside, q, eps, out);
}

void VpTree::range_query(const std::vector<double>& query, double eps,
                         std::vector<size_t>* out) const {
  query_node(root_, query, eps, out);
}

double VpTree::kth_neighbor_distance(size_t index, size_t k) const {
  assert(index < points_.size());
  // Max-heap of the k smallest distances found via a pruned traversal.
  std::priority_queue<double> best;
  const std::vector<double>& q = points_[index];
  // Iterative DFS with pruning against the current k-th distance.
  std::vector<int> stack{root_};
  while (!stack.empty()) {
    int node = stack.back();
    stack.pop_back();
    if (node < 0) continue;
    const Node& n = nodes_[node];
    double d = euclidean_distance(points_[n.point], q);
    if (n.point != index) {
      if (best.size() < k) {
        best.push(d);
      } else if (d < best.top()) {
        best.pop();
        best.push(d);
      }
    }
    double bound = best.size() < k ? 1e300 : best.top();
    if (d - bound <= n.radius) stack.push_back(n.inside);
    if (d + bound > n.radius) stack.push_back(n.outside);
  }
  return best.empty() ? 0.0 : best.top();
}

}  // namespace ibseg
