#include "cluster/optics.h"

#include <algorithm>
#include <limits>

#include "cluster/vp_tree.h"
#include "util/vector_math.h"

namespace ibseg {
namespace {

// Indexed min-heap substitute: linear scan over a seed list is fine at the
// corpus sizes the grouping phase sees (thousands of segments); the
// dominant cost is the range queries.
struct SeedList {
  // point -> current reachability (kUndefined when not queued).
  std::vector<double> reachability;
  std::vector<bool> queued;

  explicit SeedList(size_t n)
      : reachability(n, OpticsResult::kUndefined), queued(n, false) {}

  void update(size_t point, double distance) {
    if (!queued[point] || reachability[point] > distance) {
      queued[point] = true;
      reachability[point] = distance;
    }
  }

  // Pops the queued point with the smallest reachability; SIZE_MAX when
  // empty. Ties break toward the smaller index (determinism).
  size_t pop() {
    size_t best = static_cast<size_t>(-1);
    double best_r = std::numeric_limits<double>::max();
    for (size_t i = 0; i < queued.size(); ++i) {
      if (queued[i] && reachability[i] < best_r) {
        best_r = reachability[i];
        best = i;
      }
    }
    if (best != static_cast<size_t>(-1)) queued[best] = false;
    return best;
  }
};

}  // namespace

OpticsResult optics(const std::vector<std::vector<double>>& points,
                    const OpticsParams& params) {
  OpticsResult result;
  const size_t n = points.size();
  result.core_distance.assign(n, OpticsResult::kUndefined);
  if (n == 0) return result;

  VpTree tree(points);
  double eps = params.eps > 0.0
                   ? params.eps
                   : 3.0 * std::max(estimate_eps(points, params.min_pts),
                                    1e-9);
  result.eps_used = eps;

  std::vector<bool> processed(n, false);
  std::vector<size_t> neighbors;

  auto neighborhood = [&](size_t p) {
    neighbors.clear();
    tree.range_query(points[p], eps, &neighbors);
  };
  auto core_distance_of = [&](size_t p) {
    // min_pts-th smallest distance within the eps-neighborhood (self
    // included, as in the original definition of a core point's density).
    if (neighbors.size() < params.min_pts) return OpticsResult::kUndefined;
    std::vector<double> dists;
    dists.reserve(neighbors.size());
    for (size_t q : neighbors) {
      dists.push_back(euclidean_distance(points[p], points[q]));
    }
    std::nth_element(dists.begin(), dists.begin() + (params.min_pts - 1),
                     dists.end());
    return dists[params.min_pts - 1];
  };

  for (size_t start = 0; start < n; ++start) {
    if (processed[start]) continue;
    neighborhood(start);
    result.core_distance[start] = core_distance_of(start);
    processed[start] = true;
    result.ordering.push_back(start);
    result.reachability.push_back(OpticsResult::kUndefined);
    if (result.core_distance[start] < 0.0) continue;

    SeedList seeds(n);
    // Seed the start's neighbors.
    for (size_t q : neighbors) {
      if (processed[q]) continue;
      double d = euclidean_distance(points[start], points[q]);
      seeds.update(q, std::max(result.core_distance[start], d));
    }
    for (;;) {
      size_t p = seeds.pop();
      if (p == static_cast<size_t>(-1)) break;
      double r = seeds.reachability[p];
      neighborhood(p);
      result.core_distance[p] = core_distance_of(p);
      processed[p] = true;
      result.ordering.push_back(p);
      result.reachability.push_back(r);
      if (result.core_distance[p] < 0.0) continue;
      for (size_t q : neighbors) {
        if (processed[q]) continue;
        double d = euclidean_distance(points[p], points[q]);
        seeds.update(q, std::max(result.core_distance[p], d));
      }
    }
  }
  return result;
}

DbscanResult extract_dbscan_clustering(const OpticsResult& result,
                                       size_t num_points, double eps_cut) {
  DbscanResult out;
  out.labels.assign(num_points, kNoise);
  out.eps_used = eps_cut;
  int cluster = -1;
  for (size_t i = 0; i < result.ordering.size(); ++i) {
    size_t p = result.ordering[i];
    double r = result.reachability[i];
    bool reachable = r >= 0.0 && r <= eps_cut;
    if (!reachable) {
      double core = result.core_distance[p];
      if (core >= 0.0 && core <= eps_cut) {
        ++cluster;  // starts a new cluster
        out.labels[p] = cluster;
      } else {
        out.labels[p] = kNoise;
      }
    } else if (cluster >= 0) {
      out.labels[p] = cluster;
    }
  }
  out.num_clusters = cluster + 1;
  return out;
}

}  // namespace ibseg
