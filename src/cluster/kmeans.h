#ifndef IBSEG_CLUSTER_KMEANS_H_
#define IBSEG_CLUSTER_KMEANS_H_

#include <cstdint>
#include <vector>

namespace ibseg {

/// Lloyd's k-means with k-means++ seeding. Used (a) as the clustering
/// behind Content-MR (TF/IDF topic clusters), and (b) as the distance-based
/// comparison point the paper argues DBSCAN beats (Sec. 6).
struct KMeansParams {
  int k = 5;
  int max_iters = 64;
  uint64_t seed = 1234;
};

struct KMeansResult {
  std::vector<int> labels;                    ///< cluster per point
  std::vector<std::vector<double>> centroids; ///< k centroids
  double inertia = 0.0;                       ///< sum of squared distances
  int iterations = 0;                         ///< iterations until converge
};

/// Runs k-means over dense points. If there are fewer points than k, every
/// point becomes its own cluster.
KMeansResult kmeans(const std::vector<std::vector<double>>& points,
                    const KMeansParams& params = {});

}  // namespace ibseg

#endif  // IBSEG_CLUSTER_KMEANS_H_
