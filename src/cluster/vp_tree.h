#ifndef IBSEG_CLUSTER_VP_TREE_H_
#define IBSEG_CLUSTER_VP_TREE_H_

#include <cstddef>
#include <memory>
#include <vector>

namespace ibseg {

/// Vantage-point tree over dense Euclidean points, supporting
/// epsilon-range queries. Backs DBSCAN's region queries so that segment
/// grouping scales past the brute-force O(n^2) wall (the paper clusters
/// millions of 28-dim segments; Sec. 9.2.4).
///
/// The tree keeps a reference to the point set; it must outlive the tree.
class VpTree {
 public:
  /// Builds the tree. Deterministic: the vantage point of every node is the
  /// first element of its range and the radius is the median distance.
  explicit VpTree(const std::vector<std::vector<double>>& points);

  /// Appends the indices of all points within `eps` (inclusive) of `query`
  /// to `out` (not cleared). Includes the query point itself if present.
  void range_query(const std::vector<double>& query, double eps,
                   std::vector<size_t>* out) const;

  /// Distance to the k-th nearest neighbor of points[index] (excluding the
  /// point itself). Used by the eps auto-tuning heuristic.
  double kth_neighbor_distance(size_t index, size_t k) const;

  size_t size() const { return points_.size(); }

 private:
  struct Node {
    size_t point = 0;     // index into points_
    double radius = 0.0;  // median distance to the rest of the range
    int inside = -1;      // child with d <= radius
    int outside = -1;     // child with d > radius
  };

  int build(std::vector<size_t>& items, size_t begin, size_t end);
  void query_node(int node, const std::vector<double>& q, double eps,
                  std::vector<size_t>* out) const;

  const std::vector<std::vector<double>>& points_;
  std::vector<Node> nodes_;
  int root_ = -1;
};

}  // namespace ibseg

#endif  // IBSEG_CLUSTER_VP_TREE_H_
