#ifndef IBSEG_CLUSTER_OPTICS_H_
#define IBSEG_CLUSTER_OPTICS_H_

#include <cstddef>
#include <vector>

#include "cluster/dbscan.h"

namespace ibseg {

/// OPTICS (Ankerst, Breunig, Kriegel, Sander 1999): density-based cluster
/// *ordering*. Where DBSCAN commits to one eps, OPTICS computes, for every
/// point, the reachability distance along a density-ordered walk; any
/// DBSCAN clustering with eps' <= eps can then be extracted from the
/// ordering in linear time. Provided as the second member of the density
/// family the paper's clustering choice comes from (Sec. 6 cites Ester et
/// al.; the big-corpus runs used the ELKI toolkit, whose staple is
/// OPTICS).
struct OpticsParams {
  /// Maximum neighborhood radius considered. <= 0 auto-tunes like DBSCAN
  /// (k-distance estimate, scaled by 3 to leave extraction headroom).
  double eps = 0.0;
  size_t min_pts = 8;
};

struct OpticsResult {
  /// Point indices in processing (reachability) order.
  std::vector<size_t> ordering;
  /// reachability[i] = reachability distance of point ordering[i]
  /// (infinity — represented as a negative value — for walk starts).
  std::vector<double> reachability;
  /// Core distance per point index (negative when not a core point).
  std::vector<double> core_distance;
  double eps_used = 0.0;

  /// Marker for "undefined" (infinite) distances.
  static constexpr double kUndefined = -1.0;
};

/// Computes the OPTICS ordering of dense Euclidean points. Deterministic.
OpticsResult optics(const std::vector<std::vector<double>>& points,
                    const OpticsParams& params = {});

/// Extracts the DBSCAN-equivalent clustering at radius `eps_cut` from an
/// OPTICS ordering (Ankerst et al., Sec. 4.2.1): a point with
/// reachability > eps_cut starts a new cluster if its core distance is
/// <= eps_cut, else it is noise.
DbscanResult extract_dbscan_clustering(const OpticsResult& result,
                                       size_t num_points, double eps_cut);

}  // namespace ibseg

#endif  // IBSEG_CLUSTER_OPTICS_H_
