#ifndef IBSEG_CLUSTER_DBSCAN_H_
#define IBSEG_CLUSTER_DBSCAN_H_

#include <cstddef>
#include <vector>

namespace ibseg {

/// DBSCAN parameters (Ester et al. 1996 — the paper's clustering choice,
/// Sec. 6: no a-priori cluster count, arbitrary shapes, noise handling).
struct DbscanParams {
  /// Neighborhood radius. <= 0 requests auto-tuning from the k-distance
  /// curve (median of the min_pts-th neighbor distances, a standard
  /// heuristic) scaled by `eps_scale`.
  double eps = 0.0;
  /// Minimum neighborhood size (including the point itself) for a core
  /// point.
  size_t min_pts = 8;
  /// Multiplier applied to the auto-tuned eps. Values above 1 merge nearby
  /// density peaks; calibrated so segment grouping lands in the 3-6
  /// intention-cluster range the paper reports (Sec. 9.2).
  double eps_scale = 1.5;
};

/// Label for points not reachable from any core point.
inline constexpr int kNoise = -1;

/// DBSCAN output.
struct DbscanResult {
  /// Cluster id in [0, num_clusters) per point, or kNoise.
  std::vector<int> labels;
  int num_clusters = 0;
  /// The eps actually used (after auto-tuning).
  double eps_used = 0.0;
};

/// Runs DBSCAN over dense Euclidean points. Deterministic: points are
/// visited in index order, so labels are stable across runs.
DbscanResult dbscan(const std::vector<std::vector<double>>& points,
                    const DbscanParams& params = {});

/// The k-distance eps estimate used by the auto mode (median of the
/// (min_pts-1)-th neighbor distance over a sample), before eps_scale.
/// Exposed so callers can search around it.
double estimate_eps(const std::vector<std::vector<double>>& points,
                    size_t min_pts);

}  // namespace ibseg

#endif  // IBSEG_CLUSTER_DBSCAN_H_
