#include "cluster/dbscan.h"

#include <algorithm>
#include <deque>

#include "cluster/vp_tree.h"

namespace ibseg {
namespace {

// Median of the min_pts-th nearest-neighbor distance over a sample of
// points: the "knee" proxy of the k-distance heuristic.
double auto_eps(const VpTree& tree, size_t n, size_t min_pts) {
  if (n < 2) return 1.0;
  size_t k = std::max<size_t>(1, min_pts - 1);
  size_t sample = std::min<size_t>(n, 512);
  size_t stride = std::max<size_t>(1, n / sample);
  std::vector<double> dists;
  dists.reserve(sample);
  for (size_t i = 0; i < n; i += stride) {
    dists.push_back(tree.kth_neighbor_distance(i, k));
  }
  std::nth_element(dists.begin(), dists.begin() + dists.size() / 2,
                   dists.end());
  double median = dists[dists.size() / 2];
  return median > 0.0 ? median : 1.0;
}

}  // namespace

double estimate_eps(const std::vector<std::vector<double>>& points,
                    size_t min_pts) {
  if (points.size() < 2) return 1.0;
  VpTree tree(points);
  return auto_eps(tree, points.size(), min_pts);
}

DbscanResult dbscan(const std::vector<std::vector<double>>& points,
                    const DbscanParams& params) {
  const size_t n = points.size();
  DbscanResult result;
  result.labels.assign(n, kNoise);
  if (n == 0) return result;

  VpTree tree(points);
  double eps = params.eps > 0.0
                   ? params.eps
                   : auto_eps(tree, n, params.min_pts) * params.eps_scale;
  result.eps_used = eps;

  constexpr int kUnvisited = -2;
  std::vector<int> labels(n, kUnvisited);
  int next_cluster = 0;
  std::vector<size_t> neighbors;
  for (size_t p = 0; p < n; ++p) {
    if (labels[p] != kUnvisited) continue;
    neighbors.clear();
    tree.range_query(points[p], eps, &neighbors);
    if (neighbors.size() < params.min_pts) {
      labels[p] = kNoise;
      continue;
    }
    int cluster = next_cluster++;
    labels[p] = cluster;
    // Seed set expansion (BFS).
    std::deque<size_t> seeds(neighbors.begin(), neighbors.end());
    while (!seeds.empty()) {
      size_t q = seeds.front();
      seeds.pop_front();
      if (labels[q] == kNoise) labels[q] = cluster;  // border point
      if (labels[q] != kUnvisited) continue;
      labels[q] = cluster;
      neighbors.clear();
      tree.range_query(points[q], eps, &neighbors);
      if (neighbors.size() >= params.min_pts) {
        for (size_t r : neighbors) {
          if (labels[r] == kUnvisited || labels[r] == kNoise) {
            seeds.push_back(r);
          }
        }
      }
    }
  }
  for (size_t i = 0; i < n; ++i) {
    result.labels[i] = labels[i] == kUnvisited ? kNoise : labels[i];
  }
  result.num_clusters = next_cluster;
  return result;
}

}  // namespace ibseg
