#ifndef IBSEG_CLUSTER_INTENTION_CLUSTERS_H_
#define IBSEG_CLUSTER_INTENTION_CLUSTERS_H_

#include <cassert>
#include <utility>
#include <vector>

#include "cluster/dbscan.h"
#include "cluster/feature_vector.h"
#include "seg/document.h"
#include "seg/segmentation.h"

namespace ibseg {

/// A refined segment: the (possibly non-contiguous) union of all segments
/// of one document that landed in the same intention cluster (segmentation
/// refinement, Sec. 6).
struct RefinedSegment {
  DocId doc = 0;
  int cluster = 0;
  /// Sentence-unit ranges in document order.
  std::vector<std::pair<size_t, size_t>> ranges;

  size_t num_units() const {
    size_t n = 0;
    for (auto [b, e] : ranges) n += e - b;
    return n;
  }
};

/// Options for the segment grouping phase.
struct GroupingOptions {
  DbscanParams dbscan;
  FeatureVectorOptions features;
  /// After DBSCAN, attach noise segments to the nearest cluster centroid so
  /// that every segment is matchable. When false, noise segments form a
  /// dedicated trailing cluster.
  bool assign_noise_to_nearest = true;
  /// Eps selection: when dbscan.eps <= 0, DBSCAN runs over a small grid of
  /// eps values around the k-distance estimate and keeps the clustering
  /// whose number of *substantial* clusters (holding at least
  /// min_cluster_fraction of the segments) is closest to
  /// [target_min_clusters, target_max_clusters]; ties prefer fewer noise
  /// points. Intention inventories are small — the paper lands on 3-5
  /// clusters per corpus (Sec. 9.2) — so a fragmented result signals an
  /// eps below the density knee, while one giant cluster signals an eps
  /// above it.
  int target_min_clusters = 3;
  int target_max_clusters = 7;
  double min_cluster_fraction = 0.05;
  /// Multiples of the auto-tuned eps to evaluate.
  std::vector<double> eps_grid = {0.6, 0.75, 0.9, 1.05, 1.25, 1.5, 1.8};
  /// When no eps on the grid produces at least target_min_clusters
  /// substantial clusters (the density structure is degenerate — one blob
  /// or shattered fragments), fall back to k-means with this k over the
  /// same features. 0 disables the fallback.
  int kmeans_fallback_k = 5;
};

/// The intention clusters of a corpus: the output of segment grouping +
/// segmentation refinement. Invariant: each document has at most one
/// refined segment per cluster.
class IntentionClustering {
 public:
  /// Groups the segments of `segmentations[d]` of every `docs[d]` by
  /// DBSCAN over the Eq. 5/6 feature vectors (the paper's Sec. 6 grouping).
  /// The two vectors must be parallel.
  static IntentionClustering build(const std::vector<Document>& docs,
                                   const std::vector<Segmentation>& segmentations,
                                   const GroupingOptions& options = {});

  /// Builds the clusters from externally supplied labels (one per segment,
  /// flattened in document order then segment order; labels must be dense
  /// in [0, num_clusters)). Used by Content-MR, whose clusters come from
  /// TF/IDF k-means rather than CM features. Refinement still applies.
  static IntentionClustering from_labels(
      const std::vector<Document>& docs,
      const std::vector<Segmentation>& segmentations,
      const std::vector<int>& labels, int num_clusters,
      const FeatureVectorOptions& features = {});

  int num_clusters() const { return num_clusters_; }

  /// All refined segments (the corpus-wide segment table).
  const std::vector<RefinedSegment>& segments() const { return segments_; }

  /// Per cluster: indices into segments().
  const std::vector<std::vector<size_t>>& cluster_members() const {
    return members_;
  }

  /// Per document: indices into segments() (ordered by cluster id).
  const std::vector<std::vector<size_t>>& doc_segments() const {
    return doc_segments_;
  }

  /// Cluster centroids in the 28-dim feature space (Fig. 3).
  const std::vector<std::vector<double>>& centroids() const {
    return centroids_;
  }

  /// Replaces the centroids (size must match num_clusters). A
  /// document-partitioned shard rebuilds its clustering from the global
  /// label slice covering only its own documents, which would yield
  /// shard-local centroids; overriding with the full corpus's centroids
  /// makes every shard assign ingested/external segments exactly as the
  /// unpartitioned clustering would.
  void override_centroids(std::vector<std::vector<double>> centroids) {
    assert(static_cast<int>(centroids.size()) == num_clusters_);
    centroids_ = std::move(centroids);
  }

  /// The eps DBSCAN ended up using (diagnostics).
  double eps_used() const { return eps_used_; }

  /// A flattened (document, unit-range) segment before refinement
  /// (exposed for the factory implementations; not part of the stable API).
  struct RawRange {
    size_t doc_index;
    size_t begin;
    size_t end;
  };

 private:
  static IntentionClustering assemble(const std::vector<Document>& docs,
                                      const std::vector<RawRange>& raw,
                                      const std::vector<int>& labels,
                                      int num_clusters,
                                      const FeatureVectorOptions& features,
                                      double eps_used);

  int num_clusters_ = 0;
  double eps_used_ = 0.0;
  std::vector<RefinedSegment> segments_;
  std::vector<std::vector<size_t>> members_;
  std::vector<std::vector<size_t>> doc_segments_;
  std::vector<std::vector<double>> centroids_;
};

}  // namespace ibseg

#endif  // IBSEG_CLUSTER_INTENTION_CLUSTERS_H_
