#include "cluster/feature_vector.h"

#include <cassert>

namespace ibseg {
namespace {

std::vector<double> build_from_profile(const CmProfile& seg_profile,
                                       const CmProfile& doc_profile,
                                       const FeatureVectorOptions& options) {
  std::vector<double> f(kSegmentFeatureDims, 0.0);
  int idx = 0;
  // First type (Eq. 5): within-segment relative strength.
  for (int c = 0; c < kNumCms; ++c) {
    CmKind cm = static_cast<CmKind>(c);
    double total = seg_profile.cm_total(cm);
    for (int v = 0; v < kCmArity[c]; ++v) {
      f[idx++] = total > 0.0 ? seg_profile.count(cm, v) / total : 0.0;
    }
  }
  // Second type (Eq. 6): strength relative to the whole document.
  for (int c = 0; c < kNumCms; ++c) {
    CmKind cm = static_cast<CmKind>(c);
    for (int v = 0; v < kCmArity[c]; ++v) {
      double seg_count = seg_profile.count(cm, v);
      switch (options.second_type) {
        case FeatureVectorOptions::SecondType::kDocRatio: {
          double doc_count = doc_profile.count(cm, v);
          f[idx++] = doc_count > 0.0 ? seg_count / doc_count : 0.0;
          break;
        }
        case FeatureVectorOptions::SecondType::kRawCount:
          f[idx++] = seg_count;
          break;
      }
    }
  }
  assert(idx == kSegmentFeatureDims);
  return f;
}

}  // namespace

std::vector<double> segment_feature_vector(
    const Document& doc, size_t begin, size_t end,
    const FeatureVectorOptions& options) {
  return build_from_profile(doc.range_profile(begin, end),
                            doc.document_profile(), options);
}

std::vector<double> segment_feature_vector(
    const Document& doc, const std::vector<std::pair<size_t, size_t>>& ranges,
    const FeatureVectorOptions& options) {
  CmProfile merged;
  for (auto [b, e] : ranges) merged.merge(doc.range_profile(b, e));
  return build_from_profile(merged, doc.document_profile(), options);
}

}  // namespace ibseg
