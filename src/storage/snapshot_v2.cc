#include "storage/snapshot_v2.h"

#include <algorithm>
#include <cstring>
#include <fstream>
#include <istream>
#include <limits>
#include <ostream>
#include <sstream>

#include "storage/format_util.h"

namespace ibseg {
namespace {

constexpr char kMagic[8] = {'I', 'B', 'S', 'G', 'S', 'N', 'P', '2'};
constexpr uint32_t kVersion = 2;

// Section ids. Unknown ids are rejected (the format is versioned; v2
// readers read exactly v2 files).
enum SectionId : uint32_t {
  kSectionMeta = 1,
  kSectionDocs = 2,
  kSectionSegs = 3,
  kSectionLabels = 4,
  kSectionVocab = 5,
  kSectionOffline = 6,
};
/// Legacy (pre-recluster) files carry 5 sections; current writers always
/// emit the offline section too. The loader accepts both counts — a
/// 5-section file loads with generation-0 defaults — and still rejects
/// unknown or duplicated ids.
constexpr uint32_t kNumSectionsLegacy = 5;
constexpr uint32_t kNumSections = 6;

/// Hard ceiling on any single declared size; a corrupt length field must
/// not turn into a multi-gigabyte allocation before the CRC check runs.
constexpr uint64_t kMaxSaneSize = uint64_t{1} << 34;  // 16 GiB

// ---- little-endian encode into / decode out of a byte buffer ----

void put_u32(std::string* out, uint32_t v) {
  for (int i = 0; i < 4; ++i) out->push_back(static_cast<char>(v >> (8 * i)));
}

void put_u64(std::string* out, uint64_t v) {
  for (int i = 0; i < 8; ++i) out->push_back(static_cast<char>(v >> (8 * i)));
}

void put_bytes(std::string* out, const std::string& s) {
  put_u64(out, s.size());
  out->append(s);
}

/// Bounds-checked reader over a decoded section payload.
class Cursor {
 public:
  Cursor(const std::string& data) : data_(data) {}

  bool u32(uint32_t* v) {
    if (pos_ + 4 > data_.size()) return false;
    *v = 0;
    for (int i = 0; i < 4; ++i) {
      *v |= static_cast<uint32_t>(
                static_cast<unsigned char>(data_[pos_ + i]))
            << (8 * i);
    }
    pos_ += 4;
    return true;
  }

  bool u64(uint64_t* v) {
    if (pos_ + 8 > data_.size()) return false;
    *v = 0;
    for (int i = 0; i < 8; ++i) {
      *v |= static_cast<uint64_t>(
                static_cast<unsigned char>(data_[pos_ + i]))
            << (8 * i);
    }
    pos_ += 8;
    return true;
  }

  bool bytes(std::string* s) {
    uint64_t len = 0;
    if (!u64(&len) || len > kMaxSaneSize || pos_ + len > data_.size()) {
      return false;
    }
    s->assign(data_, pos_, static_cast<size_t>(len));
    pos_ += static_cast<size_t>(len);
    return true;
  }

  /// A fully consumed payload is part of the contract: trailing bytes in a
  /// section mean a writer/reader disagreement, not padding.
  bool exhausted() const { return pos_ == data_.size(); }

  /// Bytes left to decode — the ceiling for any declared element count
  /// (reserve() from an unvalidated count is an allocation bomb: every
  /// element occupies at least a few payload bytes, so a count the
  /// remaining bytes cannot back is corruption, rejected before reserving).
  size_t remaining() const { return data_.size() - pos_; }

 private:
  const std::string& data_;
  size_t pos_ = 0;
};

bool write_section(std::ostream& os, uint32_t id, const std::string& payload) {
  std::string header;
  put_u32(&header, id);
  put_u64(&header, payload.size());
  put_u32(&header, crc32(payload.data(), payload.size()));
  os.write(header.data(), static_cast<std::streamsize>(header.size()));
  os.write(payload.data(), static_cast<std::streamsize>(payload.size()));
  return static_cast<bool>(os);
}

/// Reads one section frame; returns false on truncation, an insane size or
/// a CRC mismatch. The payload is read in bounded chunks so a corrupt
/// length prefix never allocates more than the stream actually holds (a
/// single up-front resize would commit gigabytes to a header some bit rot
/// — or a fuzzer — inflated, before the read had a chance to fail).
bool read_section(std::istream& is, uint32_t* id, std::string* payload) {
  char header[16];
  if (!is.read(header, sizeof(header))) return false;
  std::string hdr(header, sizeof(header));
  Cursor c(hdr);
  uint64_t size = 0;
  uint32_t crc = 0;
  if (!c.u32(id) || !c.u64(&size) || !c.u32(&crc)) return false;
  if (size > kMaxSaneSize) return false;
  payload->clear();
  char buf[1 << 13];
  for (uint64_t done = 0; done < size;) {
    size_t want =
        static_cast<size_t>(std::min<uint64_t>(sizeof(buf), size - done));
    if (!is.read(buf, static_cast<std::streamsize>(want))) return false;
    payload->append(buf, want);
    done += want;
  }
  return crc32(payload->data(), payload->size()) == crc;
}

}  // namespace

bool ServingSnapshot::is_consistent() const {
  if (doc_ids.size() != doc_texts.size() ||
      doc_ids.size() != segmentations.size()) {
    return false;
  }
  if (num_seed_docs > doc_ids.size()) return false;
  // offline_docs 0 means "seed only" (legacy files and default-constructed
  // snapshots); a nonzero value must cover at least the seed corpus.
  const uint64_t eff64 = std::max<uint64_t>(offline_docs, num_seed_docs);
  if (eff64 > doc_ids.size()) return false;
  const size_t eff_offline = static_cast<size_t>(eff64);
  size_t seed_segments = 0;
  size_t offline_segments = 0;
  for (size_t d = 0; d < segmentations.size(); ++d) {
    if (!segmentations[d].is_valid()) return false;
    if (d < num_seed_docs && segmentations[d].num_units > 0) {
      seed_segments += segmentations[d].num_segments();
    }
    if (d >= num_seed_docs && d < eff_offline &&
        segmentations[d].num_units > 0) {
      offline_segments += segmentations[d].num_segments();
    }
  }
  if (seed_segments != seed_labels.size()) return false;
  if (offline_segments != offline_labels.size()) return false;
  for (int l : seed_labels) {
    if (l < 0 || l >= num_clusters) return false;
  }
  for (int l : offline_labels) {
    if (l < 0 || l >= num_clusters) return false;
  }
  if (!centroids.empty()) {
    if (centroids.size() != static_cast<size_t>(num_clusters)) return false;
    for (const std::vector<double>& c : centroids) {
      if (c.size() != centroids.front().size()) return false;
    }
  }
  for (DocId id : pending_pool) {
    if (id >= next_id) return false;
  }
  for (DocId id : doc_ids) {
    if (id >= next_id) return false;
  }
  return true;
}

PipelineSnapshot ServingSnapshot::offline() const {
  PipelineSnapshot snap;
  snap.segmentations.assign(segmentations.begin(),
                            segmentations.begin() + num_seed_docs);
  snap.segment_labels = seed_labels;
  snap.num_clusters = num_clusters;
  return snap;
}

PipelineSnapshot ServingSnapshot::offline_full() const {
  const size_t eff = static_cast<size_t>(
      std::max<uint64_t>(offline_docs, num_seed_docs));
  PipelineSnapshot snap;
  snap.segmentations.assign(
      segmentations.begin(),
      segmentations.begin() + static_cast<std::ptrdiff_t>(
                                  std::min(eff, segmentations.size())));
  snap.segment_labels = seed_labels;
  snap.segment_labels.insert(snap.segment_labels.end(),
                             offline_labels.begin(), offline_labels.end());
  snap.num_clusters = num_clusters;
  return snap;
}

bool save_snapshot_v2(const ServingSnapshot& snapshot, std::ostream& os) {
  os.write(kMagic, sizeof(kMagic));
  std::string prologue;
  put_u32(&prologue, kVersion);
  put_u32(&prologue, kNumSections);
  os.write(prologue.data(), static_cast<std::streamsize>(prologue.size()));

  std::string meta;
  put_u32(&meta, snapshot.num_seed_docs);
  put_u64(&meta, snapshot.doc_ids.size());
  put_u32(&meta, static_cast<uint32_t>(snapshot.num_clusters));
  put_u32(&meta, snapshot.next_id);
  if (!write_section(os, kSectionMeta, meta)) return false;

  std::string docs;
  for (size_t i = 0; i < snapshot.doc_ids.size(); ++i) {
    put_u32(&docs, snapshot.doc_ids[i]);
    put_bytes(&docs, snapshot.doc_texts[i]);
  }
  if (!write_section(os, kSectionDocs, docs)) return false;

  std::string segs;
  for (const Segmentation& s : snapshot.segmentations) {
    put_u64(&segs, s.num_units);
    put_u64(&segs, s.borders.size());
    for (size_t b : s.borders) put_u64(&segs, b);
  }
  if (!write_section(os, kSectionSegs, segs)) return false;

  std::string labels;
  put_u64(&labels, snapshot.seed_labels.size());
  for (int l : snapshot.seed_labels) {
    put_u32(&labels, static_cast<uint32_t>(l));
  }
  if (!write_section(os, kSectionLabels, labels)) return false;

  std::string vocab;
  put_u64(&vocab, snapshot.vocab_terms.size());
  for (const std::string& term : snapshot.vocab_terms) {
    put_bytes(&vocab, term);
  }
  if (!write_section(os, kSectionVocab, vocab)) return false;

  // Offline section: generation lifecycle + everything warm restore needs
  // to avoid re-deriving offline state. Doubles are stored as raw IEEE-754
  // bit patterns — exact round trip, so restored nearest-centroid ingest
  // assignment is bit-identical to the saved deployment's.
  std::string offline;
  put_u64(&offline, snapshot.offline_generation);
  put_u64(&offline,
          std::max<uint64_t>(snapshot.offline_docs, snapshot.num_seed_docs));
  put_u64(&offline, snapshot.docs_since_recluster);
  put_u64(&offline, snapshot.offline_labels.size());
  for (int l : snapshot.offline_labels) {
    put_u32(&offline, static_cast<uint32_t>(l));
  }
  put_u32(&offline, static_cast<uint32_t>(snapshot.centroids.size()));
  put_u32(&offline, snapshot.centroids.empty()
                        ? 0
                        : static_cast<uint32_t>(
                              snapshot.centroids.front().size()));
  for (const std::vector<double>& c : snapshot.centroids) {
    for (double v : c) {
      uint64_t bits = 0;
      std::memcpy(&bits, &v, sizeof(bits));
      put_u64(&offline, bits);
    }
  }
  put_u64(&offline, snapshot.pending_pool.size());
  for (DocId id : snapshot.pending_pool) put_u32(&offline, id);
  if (!write_section(os, kSectionOffline, offline)) return false;

  os.flush();
  return static_cast<bool>(os);
}

bool save_snapshot_v2_file(const ServingSnapshot& snapshot,
                           const std::string& path, uint64_t* bytes_out) {
  uint64_t bytes = 0;
  bool ok = atomic_write_file(path, [&](std::ostream& os) {
    if (!save_snapshot_v2(snapshot, os)) return false;
    bytes = static_cast<uint64_t>(os.tellp());
    return true;
  });
  if (ok && bytes_out != nullptr) *bytes_out = bytes;
  return ok;
}

std::optional<ServingSnapshot> load_snapshot_v2(std::istream& is) {
  char magic[sizeof(kMagic)];
  if (!is.read(magic, sizeof(magic)) ||
      std::memcmp(magic, kMagic, sizeof(kMagic)) != 0) {
    return std::nullopt;
  }
  char prologue_raw[8];
  if (!is.read(prologue_raw, sizeof(prologue_raw))) return std::nullopt;
  std::string prologue(prologue_raw, sizeof(prologue_raw));
  Cursor pc(prologue);
  uint32_t version = 0;
  uint32_t section_count = 0;
  if (!pc.u32(&version) || !pc.u32(&section_count)) return std::nullopt;
  if (version != kVersion || (section_count != kNumSectionsLegacy &&
                              section_count != kNumSections)) {
    return std::nullopt;
  }

  std::string sections[kNumSections + 1];
  bool seen[kNumSections + 1] = {};
  // A legacy-count file must carry exactly the legacy ids: declaring 5
  // sections but including the offline one is a malformed frame, not a
  // tolerated variant.
  const uint32_t max_id =
      section_count == kNumSectionsLegacy ? kNumSectionsLegacy : kNumSections;
  for (uint32_t i = 0; i < section_count; ++i) {
    uint32_t id = 0;
    std::string payload;
    if (!read_section(is, &id, &payload)) return std::nullopt;
    if (id < 1 || id > max_id || seen[id]) return std::nullopt;
    seen[id] = true;
    sections[id] = std::move(payload);
  }
  // Trailing bytes after the declared sections are corruption, not slack.
  if (is.peek() != std::istream::traits_type::eof()) return std::nullopt;

  ServingSnapshot snap;
  uint64_t num_docs = 0;
  {
    Cursor c(sections[kSectionMeta]);
    uint32_t clusters = 0;
    uint32_t next_id = 0;
    if (!c.u32(&snap.num_seed_docs) || !c.u64(&num_docs) ||
        !c.u32(&clusters) || !c.u32(&next_id) || !c.exhausted()) {
      return std::nullopt;
    }
    if (num_docs > kMaxSaneSize) return std::nullopt;
    snap.num_clusters = static_cast<int>(clusters);
    snap.next_id = next_id;
  }
  {
    Cursor c(sections[kSectionDocs]);
    // Every document costs >= 12 payload bytes (u32 id + u64 text length).
    if (num_docs * 12 > c.remaining()) return std::nullopt;
    snap.doc_ids.reserve(static_cast<size_t>(num_docs));
    snap.doc_texts.reserve(static_cast<size_t>(num_docs));
    for (uint64_t i = 0; i < num_docs; ++i) {
      uint32_t id = 0;
      std::string text;
      if (!c.u32(&id) || !c.bytes(&text)) return std::nullopt;
      snap.doc_ids.push_back(id);
      snap.doc_texts.push_back(std::move(text));
    }
    if (!c.exhausted()) return std::nullopt;
  }
  {
    Cursor c(sections[kSectionSegs]);
    // Every segmentation costs >= 16 payload bytes (two u64 counts).
    if (num_docs * 16 > c.remaining()) return std::nullopt;
    snap.segmentations.reserve(static_cast<size_t>(num_docs));
    for (uint64_t i = 0; i < num_docs; ++i) {
      Segmentation s;
      uint64_t units = 0;
      uint64_t num_borders = 0;
      if (!c.u64(&units) || !c.u64(&num_borders) ||
          num_borders > c.remaining() / 8) {
        return std::nullopt;
      }
      s.num_units = static_cast<size_t>(units);
      s.borders.reserve(static_cast<size_t>(num_borders));
      for (uint64_t b = 0; b < num_borders; ++b) {
        uint64_t border = 0;
        if (!c.u64(&border)) return std::nullopt;
        s.borders.push_back(static_cast<size_t>(border));
      }
      snap.segmentations.push_back(std::move(s));
    }
    if (!c.exhausted()) return std::nullopt;
  }
  {
    Cursor c(sections[kSectionLabels]);
    uint64_t count = 0;
    if (!c.u64(&count) || count > c.remaining() / 4) return std::nullopt;
    snap.seed_labels.reserve(static_cast<size_t>(count));
    for (uint64_t i = 0; i < count; ++i) {
      uint32_t label = 0;
      if (!c.u32(&label)) return std::nullopt;
      snap.seed_labels.push_back(static_cast<int>(label));
    }
    if (!c.exhausted()) return std::nullopt;
  }
  {
    Cursor c(sections[kSectionVocab]);
    uint64_t count = 0;
    // Every term costs >= 8 payload bytes (u64 length prefix).
    if (!c.u64(&count) || count > c.remaining() / 8) return std::nullopt;
    snap.vocab_terms.reserve(static_cast<size_t>(count));
    for (uint64_t i = 0; i < count; ++i) {
      std::string term;
      if (!c.bytes(&term)) return std::nullopt;
      snap.vocab_terms.push_back(std::move(term));
    }
    if (!c.exhausted()) return std::nullopt;
  }
  if (seen[kSectionOffline]) {
    Cursor c(sections[kSectionOffline]);
    uint64_t num_labels = 0;
    if (!c.u64(&snap.offline_generation) || !c.u64(&snap.offline_docs) ||
        !c.u64(&snap.docs_since_recluster) || !c.u64(&num_labels) ||
        num_labels > c.remaining() / 4) {
      return std::nullopt;
    }
    snap.offline_labels.reserve(static_cast<size_t>(num_labels));
    for (uint64_t i = 0; i < num_labels; ++i) {
      uint32_t label = 0;
      if (!c.u32(&label)) return std::nullopt;
      snap.offline_labels.push_back(static_cast<int>(label));
    }
    uint32_t rows = 0;
    uint32_t dim = 0;
    if (!c.u32(&rows) || !c.u32(&dim)) return std::nullopt;
    // Every centroid component costs 8 payload bytes; a (rows, dim) pair
    // the remaining bytes cannot back is corruption, rejected before any
    // allocation (same bomb-proofing discipline as the other sections).
    if (rows != 0 && dim > c.remaining() / 8 / rows) return std::nullopt;
    snap.centroids.reserve(rows);
    for (uint32_t r = 0; r < rows; ++r) {
      std::vector<double> row;
      row.reserve(dim);
      for (uint32_t d = 0; d < dim; ++d) {
        uint64_t bits = 0;
        if (!c.u64(&bits)) return std::nullopt;
        double v = 0.0;
        std::memcpy(&v, &bits, sizeof(v));
        row.push_back(v);
      }
      snap.centroids.push_back(std::move(row));
    }
    uint64_t pool = 0;
    if (!c.u64(&pool) || pool > c.remaining() / 4) return std::nullopt;
    snap.pending_pool.reserve(static_cast<size_t>(pool));
    for (uint64_t i = 0; i < pool; ++i) {
      uint32_t id = 0;
      if (!c.u32(&id)) return std::nullopt;
      snap.pending_pool.push_back(id);
    }
    if (!c.exhausted()) return std::nullopt;
  } else {
    // Legacy file: offline state is exactly the seed clustering.
    snap.offline_generation = 0;
    snap.offline_docs = snap.num_seed_docs;
    snap.docs_since_recluster = 0;
  }

  if (!snap.is_consistent()) return std::nullopt;
  return snap;
}

std::optional<ServingSnapshot> load_snapshot_v2_file(const std::string& path) {
  std::ifstream is(path, std::ios::binary);
  if (!is) return std::nullopt;
  return load_snapshot_v2(is);
}

std::optional<PipelineSnapshot> load_snapshot_any_file(
    const std::string& path) {
  std::ifstream is(path, std::ios::binary);
  if (!is) return std::nullopt;
  char magic[sizeof(kMagic)];
  if (is.read(magic, sizeof(magic)) &&
      std::memcmp(magic, kMagic, sizeof(kMagic)) == 0) {
    is.seekg(0);
    auto v2 = load_snapshot_v2(is);
    if (!v2) return std::nullopt;
    return v2->offline();
  }
  // v1 text fallback.
  is.clear();
  is.seekg(0);
  return load_snapshot(is);
}

}  // namespace ibseg
