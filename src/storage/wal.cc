#include "storage/wal.h"

#include <fcntl.h>
#include <unistd.h>

#include <cerrno>
#include <cstdio>
#include <cstring>

#include "storage/format_util.h"
#include "storage/wal_codec.h"

namespace ibseg {
namespace {

/// Writes all of `data`, retrying short writes and EINTR. Returns false on
/// error. The retry matters: WAL appends run inside the ingest publish path
/// while the process handles signals (the server's drain SIGTERM, profiler
/// SIGPROF storms), and without SA_RESTART a signal landing mid-write(2)
/// returns EINTR — a spurious append failure that would fail an ingest the
/// client then retries into a duplicate. Kernel-level partial writes and
/// signal interruptions are both resumable; only a real error code aborts.
bool write_fully(int fd, const char* data, size_t len) {
  while (len > 0) {
    ssize_t n = ::write(fd, data, len);
    if (n < 0) {
      if (errno == EINTR) continue;
      return false;
    }
    data += n;
    len -= static_cast<size_t>(n);
  }
  return true;
}

/// Reads the whole file into `out` (the WAL between snapshots is bounded
/// by the ingest volume since the last save; reading it whole keeps the
/// frame scan trivial). Retries EINTR for the same reason write_fully does
/// — recovery may run with signal handlers already installed. Returns
/// false on read error.
bool read_fully(int fd, std::string* out) {
  out->clear();
  char buf[1 << 16];
  for (;;) {
    ssize_t n = ::read(fd, buf, sizeof(buf));
    if (n < 0) {
      if (errno == EINTR) continue;
      return false;
    }
    if (n == 0) return true;
    out->append(buf, static_cast<size_t>(n));
  }
}

}  // namespace

std::unique_ptr<IngestWal> IngestWal::open(const std::string& path,
                                           const WalOptions& options,
                                           std::vector<WalRecord>* replayed) {
  // Open-then-create (instead of one O_CREAT open) so a freshly created
  // log is distinguishable: its directory entry must be fsync'd under a
  // durable policy, or a power failure could drop the *name* of a WAL
  // whose appends were faithfully synced. O_CLOEXEC keeps the descriptor
  // out of forked children (the crash-injection tests fork liberally; a
  // leaked fd would let a child's exit path touch the parent's log).
  bool created = false;
  int fd = ::open(path.c_str(), O_RDWR | O_CLOEXEC);
  if (fd < 0 && errno == ENOENT) {
    fd = ::open(path.c_str(), O_RDWR | O_CREAT | O_EXCL | O_CLOEXEC, 0644);
    created = fd >= 0;
  }
  if (fd < 0) return nullptr;
  if (created && options.fsync != WalFsync::kNone &&
      !fsync_parent_dir(path)) {
    ::close(fd);
    return nullptr;
  }

  std::string data;
  if (!read_fully(fd, &data)) {
    ::close(fd);
    return nullptr;
  }

  // Scan frames; the first invalid one marks the new end of the log.
  if (replayed != nullptr) replayed->clear();
  size_t pos = wal_scan_frames(data.data(), data.size(), replayed);

  if (pos != data.size()) {
    // Torn (or trailing-corrupt) tail: drop it so the next append starts
    // on a clean frame boundary and recovery never sees it again.
    if (::ftruncate(fd, static_cast<off_t>(pos)) != 0 ||
        ::fsync(fd) != 0) {
      ::close(fd);
      return nullptr;
    }
  }
  if (::lseek(fd, static_cast<off_t>(pos), SEEK_SET) < 0) {
    ::close(fd);
    return nullptr;
  }
  return std::unique_ptr<IngestWal>(new IngestWal(fd, path, options));
}

IngestWal::~IngestWal() {
  if (fd_ >= 0) ::close(fd_);
}

bool IngestWal::write_frame(const WalRecord& record) {
  std::string frame;
  wal_encode_frame(record, &frame);
  // One write(2) for the whole frame: a process kill between appends can
  // only tear the record currently being written, never an earlier one.
  if (!write_fully(fd_, frame.data(), frame.size())) return false;
  ++appended_;
  ++unsynced_;
  return true;
}

bool IngestWal::maybe_sync() {
  switch (options_.fsync) {
    case WalFsync::kNone:
      return true;
    case WalFsync::kEveryAppend:
      return sync();
    case WalFsync::kEveryN:
      if (unsynced_ >= options_.fsync_every_n) return sync();
      return true;
  }
  return true;
}

bool IngestWal::append(const WalRecord& record) {
  return write_frame(record) && maybe_sync();
}

bool IngestWal::append_batch(const std::vector<WalRecord>& records) {
  for (const WalRecord& record : records) {
    if (!write_frame(record)) return false;
  }
  // One durability decision per batch; kEveryAppend still syncs once here
  // (the batch publishes atomically, so per-record syncs buy nothing).
  if (options_.fsync == WalFsync::kEveryAppend && !records.empty()) {
    return sync();
  }
  return maybe_sync();
}

bool IngestWal::sync() {
  if (::fsync(fd_) != 0) return false;
  unsynced_ = 0;
  return true;
}

bool IngestWal::reset() {
  // Replace the inode rather than ftruncate-in-place. If an in-place
  // truncation's size change is lost to a power failure, the stale
  // pre-reset frames — still CRC-valid — survive on disk; appends after
  // the (undone) reset overwrite them from offset 0, and a tail that
  // happens to land exactly on a stale frame boundary makes the recovery
  // scan walk seamlessly from real frames into resurrected old ones.
  // Nothing in the framing can distinguish that case. A fresh empty inode
  // renamed over the path cannot resurrect old bytes by construction.
  const std::string tmp =
      path_ + ".tmp." + std::to_string(static_cast<long>(::getpid()));
  int nfd = ::open(tmp.c_str(), O_RDWR | O_CREAT | O_TRUNC | O_CLOEXEC, 0644);
  if (nfd < 0) return false;
  // reset() runs right after a snapshot save made every logged record
  // redundant; it is rare, so the replacement is made durable regardless
  // of the append-path fsync policy (matching the old always-fsync'd
  // truncate): empty file synced, renamed, directory entry synced.
  if (::fsync(nfd) != 0 || std::rename(tmp.c_str(), path_.c_str()) != 0) {
    ::close(nfd);
    std::remove(tmp.c_str());
    return false;
  }
  if (!fsync_parent_dir(path_)) {
    ::close(nfd);
    return false;
  }
  ::close(fd_);
  fd_ = nfd;
  unsynced_ = 0;
  return true;
}

}  // namespace ibseg
