#include "storage/wal.h"

#include <fcntl.h>
#include <unistd.h>

#include <cstring>

#include "storage/format_util.h"

namespace ibseg {
namespace {

/// Upper bound on one record's payload; a corrupt length field must look
/// torn, not trigger a giant allocation. Far above any real forum post.
constexpr uint32_t kMaxPayload = 64u << 20;  // 64 MiB

void put_u32_raw(std::string* out, uint32_t v) {
  for (int i = 0; i < 4; ++i) out->push_back(static_cast<char>(v >> (8 * i)));
}

uint32_t get_u32_raw(const unsigned char* p) {
  return static_cast<uint32_t>(p[0]) | static_cast<uint32_t>(p[1]) << 8 |
         static_cast<uint32_t>(p[2]) << 16 |
         static_cast<uint32_t>(p[3]) << 24;
}

/// Writes all of `data`, retrying short writes. Returns false on error.
bool write_fully(int fd, const char* data, size_t len) {
  while (len > 0) {
    ssize_t n = ::write(fd, data, len);
    if (n < 0) return false;
    data += n;
    len -= static_cast<size_t>(n);
  }
  return true;
}

/// Reads the whole file into `out` (the WAL between snapshots is bounded
/// by the ingest volume since the last save; reading it whole keeps the
/// frame scan trivial). Returns false on read error.
bool read_fully(int fd, std::string* out) {
  out->clear();
  char buf[1 << 16];
  for (;;) {
    ssize_t n = ::read(fd, buf, sizeof(buf));
    if (n < 0) return false;
    if (n == 0) return true;
    out->append(buf, static_cast<size_t>(n));
  }
}

}  // namespace

std::unique_ptr<IngestWal> IngestWal::open(const std::string& path,
                                           const WalOptions& options,
                                           std::vector<WalRecord>* replayed) {
  int fd = ::open(path.c_str(), O_RDWR | O_CREAT, 0644);
  if (fd < 0) return nullptr;

  std::string data;
  if (!read_fully(fd, &data)) {
    ::close(fd);
    return nullptr;
  }

  // Scan frames; stop at the first invalid one — that offset becomes the
  // new end of the log.
  size_t pos = 0;
  if (replayed != nullptr) replayed->clear();
  while (data.size() - pos >= 8) {
    const auto* p = reinterpret_cast<const unsigned char*>(data.data() + pos);
    uint32_t len = get_u32_raw(p);
    uint32_t crc = get_u32_raw(p + 4);
    if (len < 4 || len > kMaxPayload || data.size() - pos - 8 < len) break;
    const char* payload = data.data() + pos + 8;
    if (crc32(payload, len) != crc) break;
    if (replayed != nullptr) {
      WalRecord rec;
      rec.id = get_u32_raw(reinterpret_cast<const unsigned char*>(payload));
      rec.text.assign(payload + 4, len - 4);
      replayed->push_back(std::move(rec));
    }
    pos += 8 + len;
  }

  if (pos != data.size()) {
    // Torn (or trailing-corrupt) tail: drop it so the next append starts
    // on a clean frame boundary and recovery never sees it again.
    if (::ftruncate(fd, static_cast<off_t>(pos)) != 0 ||
        ::fsync(fd) != 0) {
      ::close(fd);
      return nullptr;
    }
  }
  if (::lseek(fd, static_cast<off_t>(pos), SEEK_SET) < 0) {
    ::close(fd);
    return nullptr;
  }
  return std::unique_ptr<IngestWal>(new IngestWal(fd, path, options));
}

IngestWal::~IngestWal() {
  if (fd_ >= 0) ::close(fd_);
}

bool IngestWal::write_frame(const WalRecord& record) {
  std::string payload;
  payload.reserve(4 + record.text.size());
  put_u32_raw(&payload, record.id);
  payload.append(record.text);
  std::string frame;
  frame.reserve(8 + payload.size());
  put_u32_raw(&frame, static_cast<uint32_t>(payload.size()));
  put_u32_raw(&frame, crc32(payload.data(), payload.size()));
  frame.append(payload);
  // One write(2) for the whole frame: a process kill between appends can
  // only tear the record currently being written, never an earlier one.
  if (!write_fully(fd_, frame.data(), frame.size())) return false;
  ++appended_;
  ++unsynced_;
  return true;
}

bool IngestWal::maybe_sync() {
  switch (options_.fsync) {
    case WalFsync::kNone:
      return true;
    case WalFsync::kEveryAppend:
      return sync();
    case WalFsync::kEveryN:
      if (unsynced_ >= options_.fsync_every_n) return sync();
      return true;
  }
  return true;
}

bool IngestWal::append(const WalRecord& record) {
  return write_frame(record) && maybe_sync();
}

bool IngestWal::append_batch(const std::vector<WalRecord>& records) {
  for (const WalRecord& record : records) {
    if (!write_frame(record)) return false;
  }
  // One durability decision per batch; kEveryAppend still syncs once here
  // (the batch publishes atomically, so per-record syncs buy nothing).
  if (options_.fsync == WalFsync::kEveryAppend && !records.empty()) {
    return sync();
  }
  return maybe_sync();
}

bool IngestWal::sync() {
  if (::fsync(fd_) != 0) return false;
  unsynced_ = 0;
  return true;
}

bool IngestWal::reset() {
  if (::ftruncate(fd_, 0) != 0) return false;
  if (::lseek(fd_, 0, SEEK_SET) < 0) return false;
  return sync();
}

}  // namespace ibseg
