#ifndef IBSEG_STORAGE_CORPUS_IO_H_
#define IBSEG_STORAGE_CORPUS_IO_H_

#include <iosfwd>
#include <optional>
#include <string>
#include <vector>

#include "datagen/post_generator.h"

namespace ibseg {

/// Plain-text persistence for corpora so that experiments are replayable
/// and user data can be loaded without the generator.
///
/// Two formats:
///  * `save_corpus`/`load_corpus` — the full synthetic corpus including
///    ground truth (scenario/component ids, borders, intentions), a
///    line-oriented format with one `post` record per post;
///  * `load_plain_posts` — one raw post per line (blank lines skipped),
///    the simplest way to bring your own forum dump.
///
/// Texts are stored single-line with `\n` / `\r` / `\\` escaping.
///
/// Robustness: loading is CRLF-tolerant (a file saved or transferred with
/// Windows line endings parses identically), numeric lines reject trailing
/// garbage and short reads, and the file writers replace the target
/// atomically (temp file + rename) so a crash mid-save never destroys the
/// previous good file.

/// Writes `corpus` to `os`. Returns false on stream failure.
bool save_corpus(const SyntheticCorpus& corpus, std::ostream& os);

/// Writes `corpus` to `path`. Returns false on I/O failure.
bool save_corpus_file(const SyntheticCorpus& corpus, const std::string& path);

/// Parses a corpus previously written by save_corpus. Returns nullopt on
/// malformed input.
std::optional<SyntheticCorpus> load_corpus(std::istream& is);

/// Reads a corpus from `path`.
std::optional<SyntheticCorpus> load_corpus_file(const std::string& path);

/// Reads one post per non-empty line of `is`.
std::vector<std::string> load_plain_posts(std::istream& is);

/// Escapes newlines, carriage returns and backslashes so a text fits on
/// one line (and survives CRLF-translating transports).
std::string escape_text(const std::string& text);

/// Inverse of escape_text. Returns nullopt on a dangling trailing
/// backslash or an unknown escape sequence — both indicate truncation or
/// corruption, which the old signature silently papered over.
std::optional<std::string> unescape_text(const std::string& line);

}  // namespace ibseg

#endif  // IBSEG_STORAGE_CORPUS_IO_H_
