#include "storage/format_util.h"

#include <fcntl.h>
#include <unistd.h>

#include <array>
#include <cstdio>
#include <fstream>
#include <istream>
#include <string>

namespace ibseg {
namespace {

/// Byte-at-a-time CRC-32 table for the reflected IEEE polynomial
/// 0xEDB88320, built once. Throughput is irrelevant here — snapshots are
/// written rarely and WAL records are small — simplicity and zero
/// dependencies win.
const std::array<uint32_t, 256>& crc_table() {
  static const std::array<uint32_t, 256> table = [] {
    std::array<uint32_t, 256> t{};
    for (uint32_t i = 0; i < 256; ++i) {
      uint32_t c = i;
      for (int k = 0; k < 8; ++k) {
        c = (c & 1) ? 0xEDB88320u ^ (c >> 1) : c >> 1;
      }
      t[i] = c;
    }
    return t;
  }();
  return table;
}

}  // namespace

bool fsync_parent_dir(const std::string& path) {
  size_t slash = path.find_last_of('/');
  std::string dir;
  if (slash == std::string::npos) {
    dir = ".";
  } else if (slash == 0) {
    dir = "/";
  } else {
    dir = path.substr(0, slash);
  }
  int fd = ::open(dir.c_str(), O_RDONLY);
  if (fd < 0) return false;
  bool ok = ::fsync(fd) == 0;
  ::close(fd);
  return ok;
}

bool read_line(std::istream& is, std::string* line) {
  if (!std::getline(is, *line)) return false;
  if (!line->empty() && line->back() == '\r') line->pop_back();
  return true;
}

uint32_t crc32(const void* data, size_t len, uint32_t crc) {
  const auto* bytes = static_cast<const unsigned char*>(data);
  const auto& table = crc_table();
  crc = ~crc;
  for (size_t i = 0; i < len; ++i) {
    crc = table[(crc ^ bytes[i]) & 0xFFu] ^ (crc >> 8);
  }
  return ~crc;
}

bool atomic_write_file(const std::string& path,
                       const std::function<bool(std::ostream&)>& writer) {
  const std::string tmp =
      path + ".tmp." + std::to_string(static_cast<long>(::getpid()));
  {
    std::ofstream os(tmp, std::ios::binary | std::ios::trunc);
    if (!os || !writer(os)) {
      os.close();
      std::remove(tmp.c_str());
      return false;
    }
    os.flush();
    // The stream must be healthy after the final flush — a full disk or
    // I/O error surfaces here, before the previous good file is replaced.
    if (!os) {
      os.close();
      std::remove(tmp.c_str());
      return false;
    }
  }
  // Push the temp file's data to stable storage before the rename makes it
  // the live file; otherwise a crash could leave a renamed-but-empty file.
  int fd = ::open(tmp.c_str(), O_RDONLY);
  if (fd < 0) {
    std::remove(tmp.c_str());
    return false;
  }
  bool synced = ::fsync(fd) == 0;
  ::close(fd);
  if (!synced || std::rename(tmp.c_str(), path.c_str()) != 0) {
    std::remove(tmp.c_str());
    return false;
  }
  // Best-effort: some filesystems reject O_RDONLY directory fsync; the data
  // file itself is already synced by then.
  (void)fsync_parent_dir(path);
  return true;
}

}  // namespace ibseg
