#include "storage/shard_manifest.h"

#include <cstdint>
#include <fstream>
#include <ostream>

#include "storage/format_util.h"

namespace ibseg {
namespace {

constexpr const char* kMagicV1 = "IBSEG-SHARD-MANIFEST v1";
constexpr const char* kMagicV2 = "IBSEG-SHARD-MANIFEST v2";

}  // namespace

bool ShardManifest::is_consistent() const {
  if (num_shards == 0) return false;
  if (shards.size() != num_shards) return false;
  if (num_clusters < 0) return false;
  if (offline_publications > publication_order.size()) return false;
  uint64_t seed_total = 0;
  uint64_t epoch_total = 0;
  for (const ShardManifestEntry& e : shards) {
    if (e.docs != e.seed_docs + e.epoch) return false;
    seed_total += e.seed_docs;
    epoch_total += e.epoch;
  }
  if (seed_total != seed_order.size()) return false;
  if (epoch_total != publication_order.size()) return false;
  return true;
}

bool save_shard_manifest_file(const ShardManifest& manifest,
                              const std::string& path) {
  if (!manifest.is_consistent()) return false;
  return atomic_write_file(path, [&](std::ostream& os) {
    os << kMagicV2 << '\n';
    os << "shards " << manifest.num_shards << '\n';
    os << "next_id " << manifest.next_id << '\n';
    os << "clusters " << manifest.num_clusters << '\n';
    os << "generation " << manifest.generation << '\n';
    os << "offline_publications " << manifest.offline_publications << '\n';
    os << "seed_order " << manifest.seed_order.size();
    for (DocId id : manifest.seed_order) os << ' ' << id;
    os << '\n';
    os << "publication_order " << manifest.publication_order.size();
    for (DocId id : manifest.publication_order) os << ' ' << id;
    os << '\n';
    for (uint32_t s = 0; s < manifest.num_shards; ++s) {
      const ShardManifestEntry& e = manifest.shards[s];
      os << "shard " << s << ' ' << e.docs << ' ' << e.seed_docs << ' '
         << e.epoch << '\n';
    }
    os.flush();
    return static_cast<bool>(os);
  });
}

std::optional<ShardManifest> load_shard_manifest_file(
    const std::string& path) {
  std::ifstream is(path, std::ios::binary);
  if (!is) return std::nullopt;
  // Every line the writer emits is newline-terminated, so a file whose last
  // byte is not '\n' lost at least part of its final line — reject it rather
  // than gamble on the surviving digits parsing as a consistent entry.
  is.seekg(0, std::ios::end);
  if (is.tellg() <= 0) return std::nullopt;
  is.seekg(-1, std::ios::end);
  if (is.get() != '\n') return std::nullopt;
  is.seekg(0, std::ios::beg);
  std::string line;
  if (!read_line(is, &line)) return std::nullopt;
  const bool v2 = line == kMagicV2;
  if (!v2 && line != kMagicV1) return std::nullopt;

  ShardManifest m;
  if (!read_line(is, &line) || !parse_scalar(line, "shards ", &m.num_shards)) {
    return std::nullopt;
  }
  if (!read_line(is, &line) || !parse_scalar(line, "next_id ", &m.next_id)) {
    return std::nullopt;
  }
  if (!read_line(is, &line) ||
      !parse_scalar(line, "clusters ", &m.num_clusters)) {
    return std::nullopt;
  }
  if (v2) {
    if (!read_line(is, &line) ||
        !parse_scalar(line, "generation ", &m.generation)) {
      return std::nullopt;
    }
    if (!read_line(is, &line) ||
        !parse_scalar(line, "offline_publications ",
                      &m.offline_publications)) {
      return std::nullopt;
    }
  }

  // The order lines carry an explicit element count ahead of the ids, so a
  // line truncated mid-write parses as a count mismatch, not as a shorter
  // history.
  std::vector<uint64_t> values;
  if (!read_line(is, &line) || !parse_list(line, "seed_order ", &values) ||
      values.empty() || values.size() - 1 != values.front()) {
    return std::nullopt;
  }
  m.seed_order.assign(values.begin() + 1, values.end());
  if (!read_line(is, &line) ||
      !parse_list(line, "publication_order ", &values) || values.empty() ||
      values.size() - 1 != values.front()) {
    return std::nullopt;
  }
  m.publication_order.assign(values.begin() + 1, values.end());

  m.shards.resize(m.num_shards);
  for (uint32_t s = 0; s < m.num_shards; ++s) {
    if (!read_line(is, &line) || !parse_list(line, "shard ", &values) ||
        values.size() != 4 || values[0] != s) {
      return std::nullopt;
    }
    m.shards[s] = ShardManifestEntry{values[1], values[2], values[3]};
  }
  if (read_line(is, &line)) return std::nullopt;  // trailing garbage
  if (!m.is_consistent()) return std::nullopt;
  return m;
}

}  // namespace ibseg
