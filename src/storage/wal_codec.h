#ifndef IBSEG_STORAGE_WAL_CODEC_H_
#define IBSEG_STORAGE_WAL_CODEC_H_

#include <cstdint>
#include <string>
#include <vector>

#include "storage/wal.h"

namespace ibseg {

/// The WAL frame layout, factored out of IngestWal so WAL shipping (the
/// replication layer streams byte-identical frames over the wire) and the
/// recovery scan share one codec:
///
///   u32 payload length | u32 CRC-32(payload) | payload
///   payload := u32 doc id | text bytes
///
/// (little-endian throughout).

/// Upper bound on one record's payload; a corrupt length field must look
/// torn, not trigger a giant allocation. Far above any real forum post.
constexpr uint32_t kWalMaxPayload = 64u << 20;  // 64 MiB

/// Bytes of length + CRC preceding each payload.
constexpr size_t kWalFrameHeaderBytes = 8;

/// Appends the framed encoding of `record` to `*out`.
void wal_encode_frame(const WalRecord& record, std::string* out);

/// Scans `data` for complete valid frames, appending each decoded record to
/// `*out` (when non-null) in order. Stops at the first invalid frame (bad
/// length, short payload, or CRC mismatch) and returns the byte offset just
/// past the last valid one — the truncation point recovery uses, and the
/// frame-boundary guarantee shipping relies on.
size_t wal_scan_frames(const char* data, size_t size,
                       std::vector<WalRecord>* out);

/// Strict variant for wire-shipped segments: returns true iff [data, size)
/// is *exactly* a whole number of valid frames — a torn or trailing-garbage
/// segment is a protocol error on the wire, not a tail to be truncated.
/// On failure `*out` is cleared.
bool wal_parse_frames_exact(const char* data, size_t size,
                            std::vector<WalRecord>* out);

}  // namespace ibseg

#endif  // IBSEG_STORAGE_WAL_CODEC_H_
