#include "storage/snapshot.h"

#include <fstream>
#include <iostream>
#include <map>
#include <sstream>

#include "storage/format_util.h"
#include "util/strings.h"

namespace ibseg {
namespace {

constexpr const char* kMagic = "IBSEG-SNAPSHOT v1";

}  // namespace

bool PipelineSnapshot::is_consistent() const {
  size_t segments = 0;
  for (const Segmentation& s : segmentations) {
    if (!s.is_valid()) return false;
    if (s.num_units > 0) segments += s.num_segments();
  }
  if (segments != segment_labels.size()) return false;
  for (int l : segment_labels) {
    if (l < 0 || l >= num_clusters) return false;
  }
  return true;
}

PipelineSnapshot make_snapshot(const std::vector<Segmentation>& segmentations,
                               const IntentionClustering& clustering,
                               const std::vector<DocId>& doc_ids) {
  PipelineSnapshot snap;
  snap.segmentations = segmentations;
  snap.num_clusters = clustering.num_clusters();

  // Map (doc, unit) -> cluster via the refined segments, then read off the
  // label of each raw segment from its first unit.
  std::map<std::pair<DocId, size_t>, int> unit_cluster;
  for (const RefinedSegment& seg : clustering.segments()) {
    for (auto [b, e] : seg.ranges) {
      for (size_t u = b; u < e; ++u) {
        unit_cluster[{seg.doc, u}] = seg.cluster;
      }
    }
  }
  for (size_t d = 0; d < segmentations.size(); ++d) {
    DocId id = d < doc_ids.size() ? doc_ids[d] : static_cast<DocId>(d);
    for (auto [b, e] : segmentations[d].segments()) {
      if (b == e) continue;
      auto it = unit_cluster.find({id, b});
      snap.segment_labels.push_back(it == unit_cluster.end() ? 0
                                                             : it->second);
    }
  }
  return snap;
}

PipelineSnapshot make_snapshot(const std::vector<Segmentation>& segmentations,
                               const IntentionClustering& clustering) {
  return make_snapshot(segmentations, clustering, {});
}

IntentionClustering restore_clustering(const std::vector<Document>& docs,
                                       const PipelineSnapshot& snapshot) {
  return IntentionClustering::from_labels(docs, snapshot.segmentations,
                                          snapshot.segment_labels,
                                          snapshot.num_clusters);
}

bool save_snapshot(const PipelineSnapshot& snapshot, std::ostream& os) {
  os << kMagic << '\n';
  os << "clusters " << snapshot.num_clusters << '\n';
  os << "documents " << snapshot.segmentations.size() << '\n';
  for (const Segmentation& s : snapshot.segmentations) {
    os << "seg " << s.num_units;
    for (size_t b : s.borders) os << ' ' << b;
    os << '\n';
  }
  os << "labels";
  for (int l : snapshot.segment_labels) os << ' ' << l;
  os << '\n';
  os.flush();
  return static_cast<bool>(os);
}

bool save_snapshot_file(const PipelineSnapshot& snapshot,
                        const std::string& path) {
  return atomic_write_file(
      path, [&](std::ostream& os) { return save_snapshot(snapshot, os); });
}

std::optional<PipelineSnapshot> load_snapshot(std::istream& is) {
  std::string line;
  if (!read_line(is, &line) || line != kMagic) return std::nullopt;
  PipelineSnapshot snap;
  if (!read_line(is, &line) ||
      !parse_scalar(line, "clusters", &snap.num_clusters)) {
    return std::nullopt;
  }
  size_t documents = 0;
  if (!read_line(is, &line) || !parse_scalar(line, "documents", &documents)) {
    return std::nullopt;
  }
  for (size_t d = 0; d < documents; ++d) {
    if (!read_line(is, &line)) return std::nullopt;
    // "seg <num_units> <borders...>": parse as one strict list so a line
    // with trailing garbage is rejected instead of truncated.
    std::vector<size_t> values;
    if (!parse_list(line, "seg", &values) || values.empty()) {
      return std::nullopt;
    }
    Segmentation s;
    s.num_units = values.front();
    s.borders.assign(values.begin() + 1, values.end());
    snap.segmentations.push_back(std::move(s));
  }
  if (!read_line(is, &line) ||
      !parse_list(line, "labels", &snap.segment_labels)) {
    return std::nullopt;
  }
  if (!snap.is_consistent()) return std::nullopt;
  return snap;
}

std::optional<PipelineSnapshot> load_snapshot_file(const std::string& path) {
  std::ifstream is(path, std::ios::binary);
  if (!is) return std::nullopt;
  return load_snapshot(is);
}

}  // namespace ibseg
