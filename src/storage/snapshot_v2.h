#ifndef IBSEG_STORAGE_SNAPSHOT_V2_H_
#define IBSEG_STORAGE_SNAPSHOT_V2_H_

#include <cstdint>
#include <iosfwd>
#include <optional>
#include <string>
#include <vector>

#include "seg/document.h"
#include "storage/snapshot.h"

namespace ibseg {

/// Binary snapshot v2: the complete durable state of a ServingPipeline,
/// not just the offline phase. Where the v1 text snapshot stores only
/// segmentations + labels (and relies on an external corpus file for the
/// texts), v2 is self-contained and crash-evident:
///
///   magic "IBSGSNP2" | u32 version | u32 section count | sections...
///   section := u32 id | u64 payload size | u32 CRC-32(payload) | payload
///
/// All integers are little-endian. Every section is CRC-framed, so any
/// truncation or bit rot — including the mid-text truncations the v1 text
/// formats cannot detect — fails the load instead of producing a mangled
/// corpus. Files are written via atomic_write_file (temp + fsync + rename),
/// so the previous snapshot survives a crash mid-save.
///
/// Contents: every document's id + raw text + segmentation (in pipeline
/// order), the intention-cluster label of every *offline* segment, the
/// vocabulary in interning order, and the id watermark. Documents beyond
/// `num_seed_docs` were ingested online; their cluster assignment is not
/// stored — on restore they are re-published through the same
/// nearest-centroid ingest path that placed them originally, which is
/// deterministic given the (restored) offline centroids and reproduces the
/// exact pre-save matcher state.
struct ServingSnapshot {
  /// All documents, in pipeline (publication) order: ids, raw texts and
  /// segmentations are parallel vectors.
  std::vector<DocId> doc_ids;
  std::vector<std::string> doc_texts;
  std::vector<Segmentation> segmentations;
  /// How many leading documents the offline clustering covers; the rest
  /// were ingested online.
  uint32_t num_seed_docs = 0;
  /// Cluster label per segment of the first `num_seed_docs` segmentations,
  /// flattened like PipelineSnapshot::segment_labels.
  std::vector<int> seed_labels;
  int num_clusters = 0;
  /// --- Incremental offline phase (section 6; absent in legacy 5-section
  /// files, which load with these defaults). A background recluster
  /// (docs/ARCHITECTURE.md §9) re-runs the offline clustering over the
  /// whole corpus at that moment, so after generation G > 0 the offline
  /// state covers MORE than the seed corpus: `offline_docs` leading
  /// documents carry labels (the first num_seed_docs of them in
  /// seed_labels — layout unchanged for legacy readers — and the rest in
  /// offline_labels), and the centroids are the recluster's, which the
  /// label-derived recomputation cannot reproduce from seed docs alone.
  /// Persisting them is what frees warm restore from re-deriving offline
  /// state out of seed documents.
  /// Offline generation: number of completed background reclusters.
  uint64_t offline_generation = 0;
  /// Leading documents covered by the offline clustering (>= num_seed_docs;
  /// == num_seed_docs until the first recluster).
  uint64_t offline_docs = 0;
  /// Cluster label per segment of segmentations [num_seed_docs,
  /// offline_docs), flattened exactly like seed_labels.
  std::vector<int> offline_labels;
  /// The offline clustering's centroids (28-dim CM space), stored as raw
  /// IEEE-754 bit patterns so restore reproduces nearest-centroid ingest
  /// assignment bit-for-bit. One row per cluster.
  std::vector<std::vector<double>> centroids;
  /// Outlier/pending pool: ids of ingested documents whose max
  /// nearest-centroid assignment distance exceeded the serving threshold —
  /// the recluster-trigger signal, drained at the next recluster.
  std::vector<DocId> pending_pool;
  /// Documents ingested since the offline state was last (re)computed.
  uint64_t docs_since_recluster = 0;
  /// Vocabulary terms in interning order; preloading them on restore pins
  /// every TermId to its pre-save value.
  std::vector<std::string> vocab_terms;
  /// Id watermark at save time (>= every handed-out id, including ids
  /// reserved by in-flight ingests that had not yet published).
  DocId next_id = 1;

  /// Structural validity: parallel vectors agree, every segmentation is
  /// valid, the seed label count matches the seed segment count and every
  /// label is within [0, num_clusters).
  bool is_consistent() const;

  /// The offline part in v1 form (seed segmentations + labels), e.g. for
  /// RelatedPostPipeline::build_from_snapshot.
  PipelineSnapshot offline() const;

  /// The FULL offline coverage in v1 form: segmentations + labels of the
  /// first offline_docs documents (seed_labels ++ offline_labels). Equal
  /// to offline() until the first recluster; after one, this is what
  /// restore must rebuild from so the restored clustering covers exactly
  /// the documents the recluster covered.
  PipelineSnapshot offline_full() const;
};

/// Serializes `snapshot` to `os` (binary). Returns false on stream failure.
bool save_snapshot_v2(const ServingSnapshot& snapshot, std::ostream& os);

/// Writes `snapshot` to `path` atomically (temp file + fsync + rename). On
/// success `*bytes_out` (if non-null) receives the encoded size. The
/// previous file at `path` is untouched on any failure.
bool save_snapshot_v2_file(const ServingSnapshot& snapshot,
                           const std::string& path,
                           uint64_t* bytes_out = nullptr);

/// Parses a v2 snapshot. Returns nullopt on bad magic/version, any
/// section CRC or size mismatch, truncation, or structural inconsistency.
std::optional<ServingSnapshot> load_snapshot_v2(std::istream& is);
std::optional<ServingSnapshot> load_snapshot_v2_file(const std::string& path);

/// Version-sniffing loader for the offline pipeline state: reads the v2
/// binary format when the magic matches, and falls back to the v1 text
/// format otherwise — old snapshot files keep working everywhere a
/// PipelineSnapshot is consumed.
std::optional<PipelineSnapshot> load_snapshot_any_file(
    const std::string& path);

}  // namespace ibseg

#endif  // IBSEG_STORAGE_SNAPSHOT_V2_H_
