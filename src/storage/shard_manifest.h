#ifndef IBSEG_STORAGE_SHARD_MANIFEST_H_
#define IBSEG_STORAGE_SHARD_MANIFEST_H_

#include <optional>
#include <string>
#include <vector>

#include "seg/document.h"

namespace ibseg {

/// Per-shard bookkeeping stored in the manifest: how many documents the
/// shard's snapshot held when the manifest was committed, how many of them
/// were seed documents, and the shard's publication epoch (= ingested
/// documents) at that moment.
struct ShardManifestEntry {
  uint64_t docs = 0;
  uint64_t seed_docs = 0;
  uint64_t epoch = 0;
};

/// The commit record of a sharded save (core/sharded_serving.h). A sharded
/// persist directory holds one snapshot-v2 file and one WAL per shard
/// (shard-<i>/snapshot.v2, shard-<i>/wal), a publication-order journal
/// (ingest.order), and this manifest (MANIFEST) — written last, atomically,
/// after every shard snapshot has been renamed into place, so its presence
/// asserts that every state it describes is on disk. Restore composes the
/// shards back into the unpartitioned publication history:
///
///   * seed_order is the global document order of the seed corpus — the
///     order segmentation/clustering/vocabulary seeding iterate in, which
///     fixes TermIds and the statistics board's unit order.
///   * publication_order is the global order of every online ingest baked
///     into the shard snapshots. Ingests after the save live in the shard
///     WALs, ordered by the ingest.order journal.
///   * shards[i] lets restore detect a torn directory: a shard snapshot
///     holding fewer documents than its manifest entry claims cannot be the
///     one this manifest committed (snapshots are renamed before the
///     manifest), so restore must reject it rather than resurrect a
///     shorter history. The reverse — snapshot ahead of manifest — is the
///     legal crash window between shard renames and the manifest commit,
///     recovered via WAL replay dedup.
struct ShardManifest {
  uint32_t num_shards = 0;
  DocId next_id = 0;
  int num_clusters = 0;
  /// Offline generation the committed shard snapshots were cut at. Shard
  /// snapshot files are generation-qualified (shard-<i>/snapshot.g<G>.v2;
  /// generation 0 keeps the legacy name snapshot.v2), so a crash between a
  /// post-recluster save's snapshot renames and this manifest's commit
  /// leaves the OLD generation's files — the ones the surviving manifest
  /// points at — untouched: restore comes back at exactly the old
  /// generation, never a torn mix of label spaces. v1 manifests load with
  /// generation 0.
  uint64_t generation = 0;
  /// How many leading publication_order entries the committed offline
  /// state covers (labels baked into the shard snapshots' offline
  /// sections). 0 until the first recluster is saved.
  uint64_t offline_publications = 0;
  std::vector<DocId> seed_order;
  std::vector<DocId> publication_order;
  std::vector<ShardManifestEntry> shards;

  /// Structural validity: one entry per shard, per-shard docs =
  /// seed_docs + epoch, and the global orders sum to the per-shard counts.
  bool is_consistent() const;
};

/// Atomic save (temp + fsync + rename, like every storage format). Returns
/// false with the previous file intact on any failure.
bool save_shard_manifest_file(const ShardManifest& manifest,
                              const std::string& path);

/// Strict load: any missing/duplicated/garbled line, count mismatch, or
/// failed consistency check yields nullopt, never a partial manifest.
std::optional<ShardManifest> load_shard_manifest_file(const std::string& path);

}  // namespace ibseg

#endif  // IBSEG_STORAGE_SHARD_MANIFEST_H_
