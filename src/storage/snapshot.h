#ifndef IBSEG_STORAGE_SNAPSHOT_H_
#define IBSEG_STORAGE_SNAPSHOT_H_

#include <iosfwd>
#include <optional>
#include <string>
#include <vector>

#include "cluster/intention_clusters.h"
#include "seg/segmentation.h"

namespace ibseg {

/// The offline state of the related-post pipeline that is expensive to
/// recompute: the per-document segmentations and the intention-cluster
/// assignment of every segment. Together with the raw post texts this is
/// enough to rebuild the matcher exactly (indices re-derive from it), so a
/// deployment can segment+cluster once and reload on every restart — the
/// paper's offline/online split (Sec. 7 "Indexing").
struct PipelineSnapshot {
  /// One segmentation per document, in corpus order.
  std::vector<Segmentation> segmentations;
  /// Cluster label per segment, flattened in document order then segment
  /// order (the layout IntentionClustering::from_labels consumes).
  std::vector<int> segment_labels;
  int num_clusters = 0;

  /// True when the label count matches the segment count and every label
  /// is within [0, num_clusters).
  bool is_consistent() const;
};

/// Captures a snapshot from the clustering built over `segmentations`.
/// `doc_ids[d]` is the document id of segmentations[d] — required whenever
/// corpus ids are not the dense 0..n-1 identity (shard slices, seed
/// corpora with id gaps); the labels are resolved against the clustering's
/// RefinedSegment doc ids, so an index/id mismatch silently mislabels
/// every segment of the affected documents as cluster 0.
PipelineSnapshot make_snapshot(const std::vector<Segmentation>& segmentations,
                               const IntentionClustering& clustering,
                               const std::vector<DocId>& doc_ids);

/// Identity-id convenience overload: document d has id d.
PipelineSnapshot make_snapshot(const std::vector<Segmentation>& segmentations,
                               const IntentionClustering& clustering);

/// Rebuilds the clustering (including refinement) from a snapshot.
IntentionClustering restore_clustering(const std::vector<Document>& docs,
                                       const PipelineSnapshot& snapshot);

/// Serialization (line-oriented text, like corpus_io).
bool save_snapshot(const PipelineSnapshot& snapshot, std::ostream& os);
bool save_snapshot_file(const PipelineSnapshot& snapshot,
                        const std::string& path);
std::optional<PipelineSnapshot> load_snapshot(std::istream& is);
std::optional<PipelineSnapshot> load_snapshot_file(const std::string& path);

}  // namespace ibseg

#endif  // IBSEG_STORAGE_SNAPSHOT_H_
