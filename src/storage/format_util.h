#ifndef IBSEG_STORAGE_FORMAT_UTIL_H_
#define IBSEG_STORAGE_FORMAT_UTIL_H_

#include <cstdint>
#include <functional>
#include <iosfwd>
#include <optional>
#include <sstream>
#include <string>
#include <vector>

#include "util/strings.h"

namespace ibseg {

/// Helpers shared by every on-disk format in src/storage: tolerant line
/// reading, strict numeric-list parsing, CRC32 framing and atomic file
/// replacement. The text formats (corpus v1, snapshot v1) and the binary
/// snapshot v2 / ingest WAL all build on these so the failure behavior —
/// reject anything mangled, never destroy the previous good file — is
/// uniform.

/// getline that strips one trailing '\r', so files saved (or transferred)
/// with CRLF line endings load identically to LF files. Returns false at
/// EOF / on stream failure, exactly like std::getline. `\r` characters in
/// the middle of a line are preserved — escaped text stores them as `\r`
/// (see escape_text), so a stray raw one is payload, not a terminator.
bool read_line(std::istream& is, std::string* line);

/// Parses "key v1 v2 ..." lines; returns false when the key mismatches,
/// when any element fails to parse, or when the line carries trailing
/// garbage after the last element. A short read of a numeric line is a
/// parse error at the caller (element counts are validated against the
/// declared sizes), never a silently shorter vector.
template <typename T>
bool parse_list(const std::string& line, const std::string& key,
                std::vector<T>* out) {
  if (!starts_with(line, key)) return false;
  std::istringstream ss(line.substr(key.size()));
  T v;
  out->clear();
  while (ss >> v) out->push_back(v);
  // The loop exits on extraction failure. Reaching end-of-line is the only
  // acceptable reason; a failure mid-line means garbage ("1 2 x") and the
  // whole line is rejected rather than truncated to the parseable prefix.
  return ss.eof();
}

/// Parses a "key value" line holding exactly one numeric value. Built on
/// parse_list, so a missing value ("posts " truncated mid-line — which
/// std::strtoull would silently read as 0), extra values, or trailing
/// garbage all reject the line.
template <typename T>
bool parse_scalar(const std::string& line, const std::string& key, T* out) {
  std::vector<T> values;
  if (!parse_list(line, key, &values) || values.size() != 1) return false;
  *out = values.front();
  return true;
}

/// CRC-32 (IEEE 802.3, the zlib polynomial) over `len` bytes, continuing
/// from `crc` (pass 0 to start). Used to frame every snapshot-v2 section
/// and every WAL record.
uint32_t crc32(const void* data, size_t len, uint32_t crc = 0);

/// Writes a file atomically: `writer` streams into `path`.tmp.<pid>, the
/// stream is flushed and checked, the temp file is fsync'd, and only then
/// renamed over `path`. A crash (or a writer/stream failure, which returns
/// false and unlinks the temp file) at any point leaves the previous file
/// at `path` untouched — the failure mode of the old write-in-place saves
/// was a destroyed good file. The directory entry is fsync'd after the
/// rename so the replacement itself is durable.
bool atomic_write_file(const std::string& path,
                       const std::function<bool(std::ostream&)>& writer);

/// fsyncs the directory containing `path`, making a rename (or create) of
/// that entry durable: POSIX only guarantees the new name survives a power
/// failure once the *directory* is synced, not just the file. Returns false
/// when the directory cannot be opened or the fsync fails (some filesystems
/// reject O_RDONLY directory fsync — callers on best-effort paths ignore
/// the result; durability-policy-gated callers propagate it).
bool fsync_parent_dir(const std::string& path);

}  // namespace ibseg

#endif  // IBSEG_STORAGE_FORMAT_UTIL_H_
