#ifndef IBSEG_STORAGE_WAL_H_
#define IBSEG_STORAGE_WAL_H_

#include <cstdint>
#include <memory>
#include <string>
#include <vector>

#include "seg/document.h"

namespace ibseg {

/// One logged ingest: the reserved document id and the raw post text —
/// everything add_post needs to re-run deterministically on replay.
struct WalRecord {
  DocId id = 0;
  std::string text;
};

/// When appends reach the disk platter, not just the page cache. Records
/// always reach the kernel via write(2) per append (so a process crash —
/// as opposed to an OS/power failure — loses nothing either way); fsync
/// narrows the OS-crash window at the cost of latency inside the ingest
/// publish path.
enum class WalFsync {
  kNone,        ///< never fsync; OS-crash may lose the page-cache tail
  kEveryN,      ///< fsync every fsync_every_n appends (and on batch ends)
  kEveryAppend  ///< fsync after every record; strongest, slowest
};

struct WalOptions {
  WalFsync fsync = WalFsync::kEveryAppend;
  /// Used when fsync == kEveryN.
  size_t fsync_every_n = 64;
};

/// Write-ahead log of online ingests, the durability half of the serving
/// layer's warm restart (snapshot v2 + WAL replay). Framing per record:
///
///   u32 payload length | u32 CRC-32(payload) | payload
///   payload := u32 doc id | text bytes
///
/// (little-endian). open() replays every complete record and then
/// truncates the file after the last one, so a torn tail — a record whose
/// write was cut by a crash — is dropped, never replayed and never allowed
/// to fail recovery. Appends go through a single full-frame write(2), so a
/// process kill between appends can only ever tear the final record.
///
/// Not thread-safe: the serving layer serializes append()/reset() under
/// its exclusive publication lock (which also makes WAL order identical to
/// publication order — the property replay correctness rests on).
class IngestWal {
 public:
  /// Opens (creating if absent) the log at `path`. Complete records land
  /// in `*replayed` in append order, up to the first invalid frame (bad
  /// length, short payload, or CRC mismatch); the file is truncated there,
  /// so a torn tail is dropped instead of failing recovery. Replaying past
  /// a gap would reorder publication, so everything after the first bad
  /// frame is discarded with it. When the call creates the file and the
  /// policy is not kNone, the directory entry is fsync'd too — synced
  /// appends into a file whose *name* is not durable survive nothing.
  /// Returns nullptr only when the file cannot be opened, the create's
  /// directory fsync fails under a durable policy, or the truncation
  /// itself fails.
  static std::unique_ptr<IngestWal> open(const std::string& path,
                                         const WalOptions& options,
                                         std::vector<WalRecord>* replayed);

  ~IngestWal();
  IngestWal(const IngestWal&) = delete;
  IngestWal& operator=(const IngestWal&) = delete;

  /// Appends one record (one write(2) of the whole frame), then applies
  /// the fsync policy. Returns false on write failure.
  bool append(const WalRecord& record);

  /// Appends a batch with at most one policy-driven fsync at the end —
  /// batched ingests pay one durability wait, not one per post.
  bool append_batch(const std::vector<WalRecord>& records);

  /// Forces an fsync regardless of policy.
  bool sync();

  /// Empties the log — called right after a snapshot save has made every
  /// logged record redundant. Implemented as a fresh empty inode renamed
  /// over the path (file and directory entry both fsync'd), never an
  /// in-place ftruncate: a truncation whose size change is lost to power
  /// failure leaves stale CRC-valid frames on disk for later appends to
  /// overwrite, and a post-reset tail ending exactly on a stale frame
  /// boundary would replay resurrected records as current.
  bool reset();

  /// Records appended through this handle (excludes replayed ones).
  uint64_t appended() const { return appended_; }

  const std::string& path() const { return path_; }

 private:
  IngestWal(int fd, std::string path, const WalOptions& options)
      : fd_(fd), path_(std::move(path)), options_(options) {}

  bool write_frame(const WalRecord& record);
  bool maybe_sync();

  int fd_ = -1;
  std::string path_;
  WalOptions options_;
  uint64_t appended_ = 0;
  size_t unsynced_ = 0;  ///< appends since the last fsync (kEveryN)
};

}  // namespace ibseg

#endif  // IBSEG_STORAGE_WAL_H_
