#include "storage/corpus_io.h"

#include <fstream>
#include <iostream>
#include <sstream>

#include "util/strings.h"

namespace ibseg {
namespace {

constexpr const char* kMagic = "IBSEG-CORPUS v1";

ForumDomain domain_from_name(const std::string& name, bool* ok) {
  *ok = true;
  if (name == "TechSupport") return ForumDomain::kTechSupport;
  if (name == "Travel") return ForumDomain::kTravel;
  if (name == "Programming") return ForumDomain::kProgramming;
  if (name == "Health") return ForumDomain::kHealth;
  *ok = false;
  return ForumDomain::kTechSupport;
}

void write_size_list(std::ostream& os, const char* key,
                     const std::vector<size_t>& values) {
  os << key;
  for (size_t v : values) os << ' ' << v;
  os << '\n';
}

void write_int_list(std::ostream& os, const char* key,
                    const std::vector<int>& values) {
  os << key;
  for (int v : values) os << ' ' << v;
  os << '\n';
}

// Parses "key v1 v2 ..." lines; returns false when the key mismatches.
template <typename T>
bool parse_list(const std::string& line, const std::string& key,
                std::vector<T>* out) {
  if (!starts_with(line, key)) return false;
  std::istringstream ss(line.substr(key.size()));
  T v;
  out->clear();
  while (ss >> v) out->push_back(v);
  return !ss.bad();
}

}  // namespace

std::string escape_text(const std::string& text) {
  std::string out;
  out.reserve(text.size());
  for (char c : text) {
    switch (c) {
      case '\\': out += "\\\\"; break;
      case '\n': out += "\\n"; break;
      default: out.push_back(c);
    }
  }
  return out;
}

std::string unescape_text(const std::string& line) {
  std::string out;
  out.reserve(line.size());
  for (size_t i = 0; i < line.size(); ++i) {
    if (line[i] == '\\' && i + 1 < line.size()) {
      ++i;
      out.push_back(line[i] == 'n' ? '\n' : line[i]);
    } else {
      out.push_back(line[i]);
    }
  }
  return out;
}

bool save_corpus(const SyntheticCorpus& corpus, std::ostream& os) {
  os << kMagic << '\n';
  os << "domain " << forum_domain_name(corpus.domain) << '\n';
  os << "scenarios " << corpus.num_scenarios << '\n';
  os << "posts " << corpus.posts.size() << '\n';
  for (const GeneratedPost& post : corpus.posts) {
    os << "post\n";
    os << "scenario " << post.scenario_id << '\n';
    os << "component " << post.component_id << '\n';
    write_int_list(os, "contaminants", post.contaminants);
    os << "units " << post.true_segmentation.num_units << '\n';
    write_size_list(os, "borders", post.true_segmentation.borders);
    write_int_list(os, "intents", post.segment_intents);
    os << "text " << escape_text(post.text) << '\n';
  }
  return static_cast<bool>(os);
}

bool save_corpus_file(const SyntheticCorpus& corpus,
                      const std::string& path) {
  std::ofstream os(path);
  return os && save_corpus(corpus, os);
}

std::optional<SyntheticCorpus> load_corpus(std::istream& is) {
  std::string line;
  if (!std::getline(is, line) || line != kMagic) return std::nullopt;

  SyntheticCorpus corpus;
  size_t expected_posts = 0;
  if (!std::getline(is, line) || !starts_with(line, "domain ")) {
    return std::nullopt;
  }
  bool domain_ok = false;
  corpus.domain = domain_from_name(line.substr(7), &domain_ok);
  if (!domain_ok) return std::nullopt;
  if (!std::getline(is, line) || !starts_with(line, "scenarios ")) {
    return std::nullopt;
  }
  corpus.num_scenarios = std::strtoull(line.c_str() + 10, nullptr, 10);
  if (!std::getline(is, line) || !starts_with(line, "posts ")) {
    return std::nullopt;
  }
  expected_posts = std::strtoull(line.c_str() + 6, nullptr, 10);

  while (std::getline(is, line)) {
    if (line.empty()) continue;
    if (line != "post") return std::nullopt;
    GeneratedPost post;
    if (!std::getline(is, line) || !starts_with(line, "scenario ")) {
      return std::nullopt;
    }
    post.scenario_id = std::atoi(line.c_str() + 9);
    if (!std::getline(is, line) || !starts_with(line, "component ")) {
      return std::nullopt;
    }
    post.component_id = std::atoi(line.c_str() + 10);
    if (!std::getline(is, line) ||
        !parse_list(line, "contaminants", &post.contaminants)) {
      return std::nullopt;
    }
    post.contaminant_scenario =
        post.contaminants.empty() ? -1 : post.contaminants.front();
    if (!std::getline(is, line) || !starts_with(line, "units ")) {
      return std::nullopt;
    }
    post.true_segmentation.num_units =
        std::strtoull(line.c_str() + 6, nullptr, 10);
    if (!std::getline(is, line) ||
        !parse_list(line, "borders", &post.true_segmentation.borders)) {
      return std::nullopt;
    }
    if (!std::getline(is, line) ||
        !parse_list(line, "intents", &post.segment_intents)) {
      return std::nullopt;
    }
    if (!std::getline(is, line) || !starts_with(line, "text ")) {
      return std::nullopt;
    }
    post.text = unescape_text(line.substr(5));
    if (!post.true_segmentation.is_valid()) return std::nullopt;
    corpus.posts.push_back(std::move(post));
  }
  if (corpus.posts.size() != expected_posts) return std::nullopt;
  return corpus;
}

std::optional<SyntheticCorpus> load_corpus_file(const std::string& path) {
  std::ifstream is(path);
  if (!is) return std::nullopt;
  return load_corpus(is);
}

std::vector<std::string> load_plain_posts(std::istream& is) {
  std::vector<std::string> posts;
  std::string line;
  while (std::getline(is, line)) {
    std::string_view stripped = strip(line);
    if (!stripped.empty()) posts.emplace_back(stripped);
  }
  return posts;
}

}  // namespace ibseg
