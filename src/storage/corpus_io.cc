#include "storage/corpus_io.h"

#include <fstream>
#include <iostream>
#include <sstream>

#include "storage/format_util.h"
#include "util/strings.h"

namespace ibseg {
namespace {

constexpr const char* kMagic = "IBSEG-CORPUS v1";

ForumDomain domain_from_name(const std::string& name, bool* ok) {
  *ok = true;
  if (name == "TechSupport") return ForumDomain::kTechSupport;
  if (name == "Travel") return ForumDomain::kTravel;
  if (name == "Programming") return ForumDomain::kProgramming;
  if (name == "Health") return ForumDomain::kHealth;
  *ok = false;
  return ForumDomain::kTechSupport;
}

void write_size_list(std::ostream& os, const char* key,
                     const std::vector<size_t>& values) {
  os << key;
  for (size_t v : values) os << ' ' << v;
  os << '\n';
}

void write_int_list(std::ostream& os, const char* key,
                    const std::vector<int>& values) {
  os << key;
  for (int v : values) os << ' ' << v;
  os << '\n';
}

}  // namespace

std::string escape_text(const std::string& text) {
  std::string out;
  out.reserve(text.size());
  for (char c : text) {
    switch (c) {
      case '\\': out += "\\\\"; break;
      case '\n': out += "\\n"; break;
      // '\r' must be escaped too: Windows-origin forum dumps carry CRLF
      // inside post bodies, and a raw '\r' at end of line would be
      // swallowed by the CRLF-tolerant reader on reload (silent one-byte
      // corruption that round-trips differently on different platforms).
      case '\r': out += "\\r"; break;
      default: out.push_back(c);
    }
  }
  return out;
}

std::optional<std::string> unescape_text(const std::string& line) {
  std::string out;
  out.reserve(line.size());
  for (size_t i = 0; i < line.size(); ++i) {
    if (line[i] != '\\') {
      out.push_back(line[i]);
      continue;
    }
    // A lone backslash at end of line has no escaped character — the file
    // is truncated or corrupt. The old reader silently swallowed it.
    if (i + 1 >= line.size()) return std::nullopt;
    ++i;
    switch (line[i]) {
      case '\\': out.push_back('\\'); break;
      case 'n': out.push_back('\n'); break;
      case 'r': out.push_back('\r'); break;
      default: return std::nullopt;  // unknown escape = corruption
    }
  }
  return out;
}

bool save_corpus(const SyntheticCorpus& corpus, std::ostream& os) {
  os << kMagic << '\n';
  os << "domain " << forum_domain_name(corpus.domain) << '\n';
  os << "scenarios " << corpus.num_scenarios << '\n';
  os << "posts " << corpus.posts.size() << '\n';
  for (const GeneratedPost& post : corpus.posts) {
    os << "post\n";
    os << "scenario " << post.scenario_id << '\n';
    os << "component " << post.component_id << '\n';
    write_int_list(os, "contaminants", post.contaminants);
    os << "units " << post.true_segmentation.num_units << '\n';
    write_size_list(os, "borders", post.true_segmentation.borders);
    write_int_list(os, "intents", post.segment_intents);
    os << "text " << escape_text(post.text) << '\n';
  }
  os.flush();
  return static_cast<bool>(os);
}

bool save_corpus_file(const SyntheticCorpus& corpus,
                      const std::string& path) {
  return atomic_write_file(
      path, [&](std::ostream& os) { return save_corpus(corpus, os); });
}

std::optional<SyntheticCorpus> load_corpus(std::istream& is) {
  std::string line;
  if (!read_line(is, &line) || line != kMagic) return std::nullopt;

  SyntheticCorpus corpus;
  size_t expected_posts = 0;
  if (!read_line(is, &line) || !starts_with(line, "domain ")) {
    return std::nullopt;
  }
  bool domain_ok = false;
  corpus.domain = domain_from_name(line.substr(7), &domain_ok);
  if (!domain_ok) return std::nullopt;
  if (!read_line(is, &line) ||
      !parse_scalar(line, "scenarios", &corpus.num_scenarios)) {
    return std::nullopt;
  }
  if (!read_line(is, &line) || !parse_scalar(line, "posts", &expected_posts)) {
    return std::nullopt;
  }

  while (read_line(is, &line)) {
    if (line.empty()) continue;
    if (line != "post") return std::nullopt;
    GeneratedPost post;
    if (!read_line(is, &line) ||
        !parse_scalar(line, "scenario", &post.scenario_id)) {
      return std::nullopt;
    }
    if (!read_line(is, &line) ||
        !parse_scalar(line, "component", &post.component_id)) {
      return std::nullopt;
    }
    if (!read_line(is, &line) ||
        !parse_list(line, "contaminants", &post.contaminants)) {
      return std::nullopt;
    }
    post.contaminant_scenario =
        post.contaminants.empty() ? -1 : post.contaminants.front();
    if (!read_line(is, &line) ||
        !parse_scalar(line, "units", &post.true_segmentation.num_units)) {
      return std::nullopt;
    }
    if (!read_line(is, &line) ||
        !parse_list(line, "borders", &post.true_segmentation.borders)) {
      return std::nullopt;
    }
    if (!read_line(is, &line) ||
        !parse_list(line, "intents", &post.segment_intents)) {
      return std::nullopt;
    }
    if (!read_line(is, &line) || !starts_with(line, "text ")) {
      return std::nullopt;
    }
    std::optional<std::string> text = unescape_text(line.substr(5));
    if (!text) return std::nullopt;
    post.text = std::move(*text);
    if (!post.true_segmentation.is_valid()) return std::nullopt;
    // One intent label per ground-truth segment — a short intents line
    // (truncated file) must not produce a post with mismatched truth.
    if (post.segment_intents.size() !=
        post.true_segmentation.num_segments()) {
      return std::nullopt;
    }
    corpus.posts.push_back(std::move(post));
  }
  if (corpus.posts.size() != expected_posts) return std::nullopt;
  return corpus;
}

std::optional<SyntheticCorpus> load_corpus_file(const std::string& path) {
  std::ifstream is(path, std::ios::binary);
  if (!is) return std::nullopt;
  return load_corpus(is);
}

std::vector<std::string> load_plain_posts(std::istream& is) {
  std::vector<std::string> posts;
  std::string line;
  while (read_line(is, &line)) {
    std::string_view stripped = strip(line);
    if (!stripped.empty()) posts.emplace_back(stripped);
  }
  return posts;
}

}  // namespace ibseg
