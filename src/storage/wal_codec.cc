#include "storage/wal_codec.h"

#include "storage/format_util.h"

namespace ibseg {
namespace {

void put_u32_raw(std::string* out, uint32_t v) {
  for (int i = 0; i < 4; ++i) out->push_back(static_cast<char>(v >> (8 * i)));
}

uint32_t get_u32_raw(const unsigned char* p) {
  return static_cast<uint32_t>(p[0]) | static_cast<uint32_t>(p[1]) << 8 |
         static_cast<uint32_t>(p[2]) << 16 |
         static_cast<uint32_t>(p[3]) << 24;
}

}  // namespace

void wal_encode_frame(const WalRecord& record, std::string* out) {
  std::string payload;
  payload.reserve(4 + record.text.size());
  put_u32_raw(&payload, record.id);
  payload.append(record.text);
  out->reserve(out->size() + kWalFrameHeaderBytes + payload.size());
  put_u32_raw(out, static_cast<uint32_t>(payload.size()));
  put_u32_raw(out, crc32(payload.data(), payload.size()));
  out->append(payload);
}

size_t wal_scan_frames(const char* data, size_t size,
                       std::vector<WalRecord>* out) {
  size_t pos = 0;
  while (size - pos >= kWalFrameHeaderBytes) {
    const auto* p = reinterpret_cast<const unsigned char*>(data + pos);
    uint32_t len = get_u32_raw(p);
    uint32_t crc = get_u32_raw(p + 4);
    if (len < 4 || len > kWalMaxPayload ||
        size - pos - kWalFrameHeaderBytes < len) {
      break;
    }
    const char* payload = data + pos + kWalFrameHeaderBytes;
    if (crc32(payload, len) != crc) break;
    if (out != nullptr) {
      WalRecord rec;
      rec.id = get_u32_raw(reinterpret_cast<const unsigned char*>(payload));
      rec.text.assign(payload + 4, len - 4);
      out->push_back(std::move(rec));
    }
    pos += kWalFrameHeaderBytes + len;
  }
  return pos;
}

bool wal_parse_frames_exact(const char* data, size_t size,
                            std::vector<WalRecord>* out) {
  out->clear();
  if (wal_scan_frames(data, size, out) != size) {
    out->clear();
    return false;
  }
  return true;
}

}  // namespace ibseg
