#include "seg/segmenter.h"

#include <algorithm>

#include "obs/trace.h"
#include "util/rng.h"

namespace ibseg {

Segmenter Segmenter::intention(BorderStrategyKind strategy,
                               const SegScoring& scoring,
                               const BorderStrategyOptions& options) {
  Segmenter s;
  s.mode_ = Mode::kIntention;
  s.strategy_ = strategy;
  s.scoring_ = scoring;
  s.strategy_options_ = options;
  s.name_ = std::string("Intention/") + border_strategy_name(strategy);
  return s;
}

Segmenter Segmenter::topical(const TextTilingOptions& options) {
  Segmenter s;
  s.mode_ = Mode::kTopical;
  s.tiling_options_ = options;
  s.name_ = "Topical/TextTiling";
  return s;
}

Segmenter Segmenter::cm_tiling(const TextTilingOptions& options) {
  Segmenter s;
  s.mode_ = Mode::kCmTiling;
  s.tiling_options_ = options;
  s.name_ = "Intention/CmTiling";
  return s;
}

Segmenter Segmenter::sentences() {
  Segmenter s;
  s.mode_ = Mode::kSentences;
  s.name_ = "Sentences";
  return s;
}

Segmenter Segmenter::random_baseline(double border_prob, uint64_t seed) {
  Segmenter s;
  s.mode_ = Mode::kRandom;
  s.random_border_prob_ = border_prob;
  s.random_seed_ = seed;
  s.name_ = "Baseline/Random";
  return s;
}

Segmenter Segmenter::even_split(size_t num_segments) {
  Segmenter s;
  s.mode_ = Mode::kEvenSplit;
  s.even_segments_ = num_segments == 0 ? 1 : num_segments;
  s.name_ = "Baseline/EvenSplit";
  return s;
}

Segmentation Segmenter::segment(const Document& doc, Vocabulary& vocab) const {
  // Every segmentation call — offline build, ingest prepare, external
  // query — flows through here, so this one scope is the whole "segment"
  // stage (border selection included).
  obs::TraceScope segment_stage(obs::Stage::kSegment);
  switch (mode_) {
    case Mode::kIntention:
      return select_borders(doc, strategy_, scoring_, strategy_options_);
    case Mode::kTopical:
      return texttiling_segment(doc, vocab, tiling_options_);
    case Mode::kCmTiling:
      return cm_tiling_segment(doc, tiling_options_);
    case Mode::kSentences:
      return select_borders(doc, BorderStrategyKind::kSentences);
    case Mode::kRandom: {
      Segmentation s;
      s.num_units = doc.num_units();
      Rng rng(random_seed_ ^ (static_cast<uint64_t>(doc.id()) * 0x9E37ULL));
      for (size_t b = 1; b < doc.num_units(); ++b) {
        if (rng.next_bool(random_border_prob_)) s.borders.push_back(b);
      }
      return s;
    }
    case Mode::kEvenSplit: {
      Segmentation s;
      s.num_units = doc.num_units();
      size_t parts = std::min(even_segments_, std::max<size_t>(doc.num_units(), 1));
      for (size_t p = 1; p < parts; ++p) {
        size_t b = p * doc.num_units() / parts;
        if (b >= 1 && b < doc.num_units() &&
            (s.borders.empty() || s.borders.back() < b)) {
          s.borders.push_back(b);
        }
      }
      return s;
    }
  }
  return Segmentation::whole(doc.num_units());
}

}  // namespace ibseg
