#ifndef IBSEG_SEG_COHERENCE_H_
#define IBSEG_SEG_COHERENCE_H_

#include <vector>

#include "nlp/cm_profile.h"
#include "seg/diversity.h"

namespace ibseg {

/// Depth (border dissimilarity) function family (Sec. 5.2 and Fig. 9).
enum class DepthFn {
  kCoherence,  ///< Eq. 3: coherence drop of the hypothetical merged segment.
  kCosine,     ///< cosine dissimilarity of normalized CM vectors.
  kEuclidean,  ///< Euclidean distance of normalized CM vectors.
  kManhattan,  ///< Manhattan distance of normalized CM vectors.
};

/// Scoring configuration for segmentation quality.
struct SegScoring {
  DiversityIndex diversity = DiversityIndex::kShannon;
  DepthFn depth = DepthFn::kCoherence;
  /// Bit mask over CmKind selecting which CMs participate (Greedy runs one
  /// CM at a time). Default: all five.
  unsigned cm_mask = 0x1F;
};

/// Coherence of a segment profile: Eq. 2, averaged over the CMs selected by
/// `scoring.cm_mask`. In [0, 1]; 1 means every active CM is concentrated on
/// a single value.
double segment_coherence(const CmProfile& profile, const SegScoring& scoring);

/// Per-CM normalized distribution vector (concatenated over selected CMs),
/// used by the distance-based depth functions.
std::vector<double> cm_distribution_vector(const CmProfile& profile,
                                           const SegScoring& scoring);

/// Depth of the border between two adjacent segment profiles (Eq. 3 for
/// DepthFn::kCoherence; a distance between CM distribution vectors
/// otherwise). Non-negative.
double border_depth(const CmProfile& left, const CmProfile& right,
                    const SegScoring& scoring);

/// Border score: Eq. 4, the average of the two segment coherences and the
/// border depth.
double border_score(const CmProfile& left, const CmProfile& right,
                    const SegScoring& scoring);

}  // namespace ibseg

#endif  // IBSEG_SEG_COHERENCE_H_
