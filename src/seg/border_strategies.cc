#include "seg/border_strategies.h"

#include <algorithm>
#include <cassert>
#include <cmath>

#include "util/vector_math.h"

namespace ibseg {

const char* border_strategy_name(BorderStrategyKind kind) {
  switch (kind) {
    case BorderStrategyKind::kTile: return "Tile";
    case BorderStrategyKind::kStepByStep: return "StepbyStep";
    case BorderStrategyKind::kGreedy: return "Greedy";
    case BorderStrategyKind::kSentences: return "Sentences";
    case BorderStrategyKind::kTopDown: return "TopDown";
  }
  return "?";
}

namespace {

// Scores every border of `borders` over `doc`: border i separates the
// segment ending at borders[i] from the one starting there, with each side
// clamped to at most `context_window` units when non-zero.
std::vector<double> score_border_list(const Document& doc,
                                      const std::vector<size_t>& borders,
                                      const SegScoring& scoring,
                                      size_t context_window) {
  std::vector<double> scores(borders.size());
  size_t n = doc.num_units();
  for (size_t i = 0; i < borders.size(); ++i) {
    size_t left_begin = i == 0 ? 0 : borders[i - 1];
    size_t right_end = i + 1 < borders.size() ? borders[i + 1] : n;
    if (context_window > 0) {
      if (borders[i] - left_begin > context_window) {
        left_begin = borders[i] - context_window;
      }
      if (right_end - borders[i] > context_window) {
        right_end = borders[i] + context_window;
      }
    }
    CmProfile left = doc.range_profile(left_begin, borders[i]);
    CmProfile right = doc.range_profile(borders[i], right_end);
    scores[i] = border_score(left, right, scoring);
  }
  return scores;
}

Segmentation run_tile(const Document& doc, const SegScoring& scoring,
                      const BorderStrategyOptions& options) {
  Segmentation seg = Segmentation::all_units(doc.num_units());
  for (int pass = 0; pass < options.max_passes && !seg.borders.empty();
       ++pass) {
    std::vector<double> scores =
        score_border_list(doc, seg.borders, scoring, options.context_window);
    double m = mean(scores);
    double sd = stddev(scores);
    double threshold = m - options.tile_stddev_factor * sd;
    std::vector<size_t> kept;
    kept.reserve(seg.borders.size());
    for (size_t i = 0; i < seg.borders.size(); ++i) {
      if (scores[i] >= threshold) kept.push_back(seg.borders[i]);
    }
    if (kept.size() == seg.borders.size()) break;  // converged
    seg.borders = std::move(kept);
  }
  return seg;
}

Segmentation run_step_by_step(const Document& doc, const SegScoring& scoring) {
  size_t n = doc.num_units();
  Segmentation seg;
  seg.num_units = n;
  double doc_coherence =
      segment_coherence(doc.document_profile(), scoring);
  size_t segment_start = 0;
  for (size_t b = 1; b < n; ++b) {
    CmProfile left = doc.range_profile(segment_start, b);
    if (segment_coherence(left, scoring) < doc_coherence) {
      continue;  // delete the border: the left segment keeps growing
    }
    seg.borders.push_back(b);
    segment_start = b;
  }
  return seg;
}

// One single-CM Greedy run: repeatedly removes the worst-scoring border
// while it scores below mean - stddev. Returns the set of borders removed.
std::vector<size_t> greedy_single_cm(const Document& doc,
                                     const SegScoring& scoring,
                                     const BorderStrategyOptions& options) {
  std::vector<size_t> borders = Segmentation::all_units(doc.num_units()).borders;
  std::vector<size_t> removed;
  for (int pass = 0; pass < options.max_passes && borders.size() > 1; ++pass) {
    std::vector<double> scores =
        score_border_list(doc, borders, scoring, options.context_window);
    double threshold =
        mean(scores) - options.greedy_stddev_factor * stddev(scores);
    size_t worst = 0;
    for (size_t i = 1; i < scores.size(); ++i) {
      if (scores[i] < scores[worst]) worst = i;
    }
    if (scores[worst] >= threshold - 1e-12) break;
    removed.push_back(borders[worst]);
    borders.erase(borders.begin() + static_cast<long>(worst));
  }
  return removed;
}

Segmentation run_greedy(const Document& doc, const SegScoring& scoring,
                        const BorderStrategyOptions& options) {
  size_t n = doc.num_units();
  // Marks per border position: how many single-CM runs removed it.
  std::vector<int> marks(n, 0);
  int active_cms = 0;
  for (int c = 0; c < kNumCms; ++c) {
    if (!((scoring.cm_mask >> c) & 1u)) continue;
    ++active_cms;
    SegScoring single = scoring;
    single.cm_mask = 1u << c;
    for (size_t b : greedy_single_cm(doc, single, options)) ++marks[b];
  }
  if (active_cms == 0) return Segmentation::whole(n);
  int needed = static_cast<int>(
      std::ceil(options.greedy_majority * active_cms));
  if (needed < 1) needed = 1;
  Segmentation seg;
  seg.num_units = n;
  for (size_t b = 1; b < n; ++b) {
    if (marks[b] < needed) seg.borders.push_back(b);
  }
  return seg;
}

// Recursively splits [begin, end): places the best-scoring border when
// splitting beats the unsplit segment's coherence by the configured margin
// (the "average score better than before the split" criterion of the
// paper's top-down sketch).
void topdown_split(const Document& doc, const SegScoring& scoring,
                   const BorderStrategyOptions& options, size_t begin,
                   size_t end, int depth, std::vector<size_t>* borders) {
  if (end - begin < 2 || depth >= options.topdown_max_depth) return;
  double unsplit = segment_coherence(doc.range_profile(begin, end), scoring);
  size_t best_pos = 0;
  double best_score = -1.0;
  for (size_t p = begin + 1; p < end; ++p) {
    double score = border_score(doc.range_profile(begin, p),
                                doc.range_profile(p, end), scoring);
    if (score > best_score) {
      best_score = score;
      best_pos = p;
    }
  }
  if (best_score <= unsplit + options.topdown_margin) return;
  borders->push_back(best_pos);
  topdown_split(doc, scoring, options, begin, best_pos, depth + 1, borders);
  topdown_split(doc, scoring, options, best_pos, end, depth + 1, borders);
}

Segmentation run_top_down(const Document& doc, const SegScoring& scoring,
                          const BorderStrategyOptions& options) {
  Segmentation seg;
  seg.num_units = doc.num_units();
  topdown_split(doc, scoring, options, 0, doc.num_units(), 0, &seg.borders);
  std::sort(seg.borders.begin(), seg.borders.end());
  return seg;
}

}  // namespace

Segmentation select_borders(const Document& doc, BorderStrategyKind kind,
                            const SegScoring& scoring,
                            const BorderStrategyOptions& options) {
  if (doc.num_units() < 2) return Segmentation::whole(doc.num_units());
  switch (kind) {
    case BorderStrategyKind::kTile:
      return run_tile(doc, scoring, options);
    case BorderStrategyKind::kStepByStep:
      return run_step_by_step(doc, scoring);
    case BorderStrategyKind::kGreedy:
      return run_greedy(doc, scoring, options);
    case BorderStrategyKind::kSentences:
      return Segmentation::all_units(doc.num_units());
    case BorderStrategyKind::kTopDown:
      return run_top_down(doc, scoring, options);
  }
  return Segmentation::whole(doc.num_units());
}

std::vector<double> score_borders(const Document& doc, const Segmentation& seg,
                                  const SegScoring& scoring) {
  assert(seg.num_units == doc.num_units());
  return score_border_list(doc, seg.borders, scoring,
                           /*context_window=*/0);
}

double mean_segment_coherence(const Document& doc, const Segmentation& seg,
                              const SegScoring& scoring) {
  std::vector<double> cohs;
  for (auto [begin, end] : seg.segments()) {
    cohs.push_back(segment_coherence(doc.range_profile(begin, end), scoring));
  }
  return mean(cohs);
}

}  // namespace ibseg
