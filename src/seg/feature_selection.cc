#include "seg/feature_selection.h"

#include <algorithm>

#include "seg/border_strategies.h"

namespace ibseg {

double coherence_gain(const Document& doc, const Segmentation& seg,
                      const SegScoring& scoring) {
  double whole = segment_coherence(doc.document_profile(), scoring);
  return mean_segment_coherence(doc, seg, scoring) - whole;
}

std::string cm_mask_name(unsigned cm_mask) {
  std::string name;
  for (int c = 0; c < kNumCms; ++c) {
    if (!((cm_mask >> c) & 1u)) continue;
    if (!name.empty()) name += "+";
    name += cm_name(static_cast<CmKind>(c));
  }
  return name.empty() ? "(none)" : name;
}

std::vector<CmSubsetScore> rank_cm_subsets(const std::vector<Document>& docs) {
  std::vector<CmSubsetScore> scores;
  for (unsigned mask = 1; mask < (1u << kNumCms); ++mask) {
    SegScoring scoring;
    scoring.cm_mask = mask;
    CmSubsetScore score;
    score.cm_mask = mask;
    score.name = cm_mask_name(mask);
    double gain_total = 0.0;
    double segment_total = 0.0;
    size_t counted = 0;
    for (const Document& doc : docs) {
      if (doc.num_units() < 2) continue;
      Segmentation seg =
          select_borders(doc, BorderStrategyKind::kTile, scoring);
      gain_total += coherence_gain(doc, seg, scoring);
      segment_total += static_cast<double>(seg.num_segments());
      ++counted;
    }
    if (counted > 0) {
      score.mean_gain = gain_total / static_cast<double>(counted);
      score.mean_segments = segment_total / static_cast<double>(counted);
    }
    scores.push_back(std::move(score));
  }
  std::sort(scores.begin(), scores.end(),
            [](const CmSubsetScore& a, const CmSubsetScore& b) {
              if (a.mean_gain != b.mean_gain) return a.mean_gain > b.mean_gain;
              return a.cm_mask < b.cm_mask;
            });
  return scores;
}

}  // namespace ibseg
