#ifndef IBSEG_SEG_DIVERSITY_H_
#define IBSEG_SEG_DIVERSITY_H_

#include "nlp/cm_profile.h"

namespace ibseg {

/// Diversity index family (Sec. 5.2). A diversity index grows with both
/// richness (how many CM values occur) and evenness (how uniformly they
/// occur); coherence is its complement.
enum class DiversityIndex {
  kShannon,   ///< Eq. 1, normalized by log(arity) so values lie in [0, 1].
  kRichness,  ///< #non-zero values / arity, in [0, 1].
};

/// Diversity of one communication mean within a segment profile.
/// Returns 0 for a CM with no occurrences (an absent CM is trivially even).
double cm_diversity(const CmProfile& profile, CmKind cm, DiversityIndex index);

/// Evenness (Pielou): Shannon entropy / log(#non-zero values); 1 when the
/// observed values are uniform, approaching 0 when one value dominates.
/// Exposed for tests and the feature-selection analysis.
double cm_evenness(const CmProfile& profile, CmKind cm);

/// Number of CM values with non-zero counts.
int cm_richness_count(const CmProfile& profile, CmKind cm);

}  // namespace ibseg

#endif  // IBSEG_SEG_DIVERSITY_H_
