#ifndef IBSEG_SEG_FEATURE_SELECTION_H_
#define IBSEG_SEG_FEATURE_SELECTION_H_

#include <string>
#include <vector>

#include "seg/coherence.h"
#include "seg/document.h"
#include "seg/segmentation.h"

namespace ibseg {

/// The paper's feature-selection procedure (Sec. 5.1): "to select the best
/// combination, we measured the diversity of the various segments in a
/// segmentation and compared it to the diversity of the unsegmented post".
/// A good CM combination produces segments that are markedly more coherent
/// (less diverse) than the whole post.

/// Coherence gain of `seg` over the unsegmented document under `scoring`:
/// mean segment coherence minus whole-document coherence. Positive values
/// mean the segmentation isolates homogeneous intention regions.
double coherence_gain(const Document& doc, const Segmentation& seg,
                      const SegScoring& scoring = {});

/// Evaluation of one CM subset over a corpus.
struct CmSubsetScore {
  unsigned cm_mask = 0;        ///< bit per CmKind
  std::string name;            ///< "Tense+Style" style label
  double mean_gain = 0.0;      ///< mean coherence_gain over documents
  double mean_segments = 0.0;  ///< mean segment count the subset induces
};

/// Ranks every non-empty subset of the five CMs (31 candidates) by the
/// mean coherence gain its Tile segmentation achieves over `docs`,
/// best first. This reproduces the selection task whose outcome the paper
/// reports as "the features and the CMs that were found to be the best
/// choice are those contained in Table 1".
std::vector<CmSubsetScore> rank_cm_subsets(const std::vector<Document>& docs);

/// Human-readable name of a cm_mask ("Tense+Subject+...").
std::string cm_mask_name(unsigned cm_mask);

}  // namespace ibseg

#endif  // IBSEG_SEG_FEATURE_SELECTION_H_
