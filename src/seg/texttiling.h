#ifndef IBSEG_SEG_TEXTTILING_H_
#define IBSEG_SEG_TEXTTILING_H_

#include "seg/document.h"
#include "seg/segmentation.h"
#include "text/vocabulary.h"

namespace ibseg {

/// Options for the Hearst (1997) TextTiling baseline, adapted to sentences
/// as text units (the same granularity the intention-based strategies use,
/// so WindowDiff comparisons are apples-to-apples).
struct TextTilingOptions {
  /// Number of sentences in each comparison block.
  int block_size = 2;
  /// Smoothing passes over the gap-score sequence (simple 3-point mean).
  int smoothing_passes = 1;
  /// A gap becomes a boundary when its depth score exceeds
  /// mean(depth) - cutoff_stddev_factor * stddev(depth).
  double cutoff_stddev_factor = 0.5;
};

/// Thematic (term-based) segmentation per Hearst's TextTiling: lexical
/// cohesion between adjacent sentence blocks, depth scoring at the gap
/// valleys, mean/stddev cutoff. This is the paper's topical-segmentation
/// comparator ([12], Sec. 9.1.2.A) and the segmenter behind Content-MR.
///
/// `vocab` is shared so that term ids remain consistent across a corpus.
Segmentation texttiling_segment(const Document& doc, Vocabulary& vocab,
                                const TextTilingOptions& options = {});

/// Hearst's border selection mechanism over *CM feature vectors* instead of
/// term vectors — the paper's Sec. 9.1.2.A "Tile with CM features and
/// cosine dissimilarity border score" configuration: block vectors are the
/// summed CM profiles of the block's sentences (per-CM normalized), gap
/// score is their cosine similarity, boundaries fall at deep valleys.
Segmentation cm_tiling_segment(const Document& doc,
                               const TextTilingOptions& options = {});

}  // namespace ibseg

#endif  // IBSEG_SEG_TEXTTILING_H_
