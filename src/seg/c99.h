#ifndef IBSEG_SEG_C99_H_
#define IBSEG_SEG_C99_H_

#include "seg/document.h"
#include "seg/segmentation.h"
#include "text/vocabulary.h"

namespace ibseg {

/// Options for the C99 segmenter.
struct C99Options {
  /// Rank-mask half-width (the original uses an 11x11 mask: half = 5).
  int rank_mask_half = 5;
  /// Stop splitting when the density gain of the best split falls below
  /// mean(gains) - threshold_stddev_factor * stddev(gains) of the gain
  /// profile collected so far (Choi's automatic termination).
  double threshold_stddev_factor = 1.2;
  /// Hard cap on the number of segments (0 = none).
  size_t max_segments = 0;
};

/// Choi's C99 topical segmenter (Choi 2000): cosine similarity matrix over
/// sentence term vectors, local rank transform, then divisive clustering
/// maximizing within-segment rank density. The second member of the
/// topical-segmentation family the paper contrasts with (Sec. 8 groups
/// Hearst's TextTiling and similarity-matrix methods together).
Segmentation c99_segment(const Document& doc, Vocabulary& vocab,
                         const C99Options& options = {});

}  // namespace ibseg

#endif  // IBSEG_SEG_C99_H_
