#include "seg/segmentation.h"

#include <algorithm>
#include <cassert>

namespace ibseg {

std::vector<std::pair<size_t, size_t>> Segmentation::segments() const {
  std::vector<std::pair<size_t, size_t>> out;
  if (num_units == 0) return out;
  size_t begin = 0;
  for (size_t b : borders) {
    out.emplace_back(begin, b);
    begin = b;
  }
  out.emplace_back(begin, num_units);
  return out;
}

size_t Segmentation::segment_of_unit(size_t u) const {
  assert(u < num_units);
  size_t idx = 0;
  for (size_t b : borders) {
    if (u < b) return idx;
    ++idx;
  }
  return idx;
}

bool Segmentation::is_valid() const {
  size_t prev = 0;
  for (size_t b : borders) {
    if (b <= prev || b >= num_units) return false;
    prev = b;
  }
  return true;
}

Segmentation Segmentation::all_units(size_t num_units) {
  Segmentation s;
  s.num_units = num_units;
  for (size_t b = 1; b < num_units; ++b) s.borders.push_back(b);
  return s;
}

std::vector<int> boundary_indicator(const Segmentation& seg) {
  std::vector<int> gaps(seg.num_units > 0 ? seg.num_units - 1 : 0, 0);
  for (size_t b : seg.borders) {
    assert(b >= 1 && b - 1 < gaps.size());
    gaps[b - 1] = 1;
  }
  return gaps;
}

}  // namespace ibseg
