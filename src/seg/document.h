#ifndef IBSEG_SEG_DOCUMENT_H_
#define IBSEG_SEG_DOCUMENT_H_

#include <cstdint>
#include <string>
#include <string_view>
#include <vector>

#include "nlp/cm_profile.h"
#include "nlp/pos_tag.h"
#include "text/sentence_splitter.h"
#include "text/tokenizer.h"

namespace ibseg {

/// Dense document identifier within a corpus.
using DocId = uint32_t;

/// A fully analyzed forum post: cleaned text, tokens, POS tags, sentences
/// (the segmentation text units) and one CmProfile per sentence. Immutable
/// after construction; built once per post in the offline phase.
class Document {
 public:
  /// An empty document (no text, no units); useful as a container
  /// placeholder before analyze() results are moved in.
  Document() = default;

  /// Analyzes `text` (plain text; run strip_html first for raw forum dumps).
  static Document analyze(DocId id, std::string text);

  DocId id() const { return id_; }
  const std::string& text() const { return text_; }
  const std::vector<Token>& tokens() const { return tokens_; }
  const std::vector<Pos>& tags() const { return tags_; }
  const std::vector<Sentence>& sentences() const { return sentences_; }

  /// Number of text units (sentences).
  size_t num_units() const { return sentences_.size(); }

  /// CM profile of sentence `u`.
  const CmProfile& unit_profile(size_t u) const { return unit_profiles_[u]; }

  /// Merged CM profile over sentence range [begin, end) — the distribution
  /// tables DSb_CM of a candidate segment (Sec. 5.2). O(1) via prefix sums.
  CmProfile range_profile(size_t begin, size_t end) const;

  /// Merged CM profile of the whole document (DSb* of Eq. 6).
  CmProfile document_profile() const { return range_profile(0, num_units()); }

  /// Character offset in `text()` where a border *before* unit `u` falls
  /// (the start of sentence u). Used for offset-based agreement metrics.
  size_t border_char_offset(size_t u) const;

  /// Concatenated source text of the sentence range [begin, end).
  std::string_view range_text(size_t begin, size_t end) const;

 private:
  DocId id_ = 0;
  std::string text_;
  std::vector<Token> tokens_;
  std::vector<Pos> tags_;
  std::vector<Sentence> sentences_;
  std::vector<CmProfile> unit_profiles_;
  /// prefix_profiles_[i] = sum of unit_profiles_[0, i); size num_units+1.
  std::vector<CmProfile> prefix_profiles_;
};

}  // namespace ibseg

#endif  // IBSEG_SEG_DOCUMENT_H_
