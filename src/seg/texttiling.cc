#include "seg/texttiling.h"

#include <algorithm>

#include "seg/coherence.h"
#include "text/term_vector.h"
#include "util/vector_math.h"

namespace ibseg {
namespace {

// Shared tail of the TextTiling mechanism: smooth the gap-score sequence,
// compute valley depth scores, cut at mean - f*stddev, keep local maxima.
Segmentation borders_from_gap_scores(std::vector<double> gap_scores, size_t n,
                                     const TextTilingOptions& options) {
  size_t num_gaps = gap_scores.size();
  for (int pass = 0; pass < options.smoothing_passes; ++pass) {
    std::vector<double> smoothed(gap_scores);
    for (size_t g = 0; g < num_gaps; ++g) {
      double sum = gap_scores[g];
      int cnt = 1;
      if (g > 0) {
        sum += gap_scores[g - 1];
        ++cnt;
      }
      if (g + 1 < num_gaps) {
        sum += gap_scores[g + 1];
        ++cnt;
      }
      smoothed[g] = sum / cnt;
    }
    gap_scores = std::move(smoothed);
  }

  // Depth scores: height of the peaks on both sides of each valley.
  std::vector<double> depth(num_gaps, 0.0);
  for (size_t g = 0; g < num_gaps; ++g) {
    double left_peak = gap_scores[g];
    for (size_t i = g; i-- > 0;) {
      if (gap_scores[i] >= left_peak) {
        left_peak = gap_scores[i];
      } else {
        break;
      }
    }
    double right_peak = gap_scores[g];
    for (size_t i = g + 1; i < num_gaps; ++i) {
      if (gap_scores[i] >= right_peak) {
        right_peak = gap_scores[i];
      } else {
        break;
      }
    }
    depth[g] = (left_peak - gap_scores[g]) + (right_peak - gap_scores[g]);
  }

  double cutoff = mean(depth) - options.cutoff_stddev_factor * stddev(depth);
  Segmentation seg;
  seg.num_units = n;
  for (size_t g = 0; g < num_gaps; ++g) {
    if (depth[g] > cutoff && depth[g] > 0.0) {
      // Local maximum check: avoid adjacent boundaries from one valley.
      bool local_max = (g == 0 || depth[g] >= depth[g - 1]) &&
                       (g + 1 == num_gaps || depth[g] > depth[g + 1]);
      if (local_max) seg.borders.push_back(g + 1);
    }
  }
  return seg;
}

}  // namespace

Segmentation texttiling_segment(const Document& doc, Vocabulary& vocab,
                                const TextTilingOptions& options) {
  size_t n = doc.num_units();
  if (n < 2) return Segmentation::whole(n);

  std::vector<TermVector> unit_terms(n);
  for (size_t u = 0; u < n; ++u) {
    const Sentence& s = doc.sentences()[u];
    unit_terms[u] =
        build_term_vector(doc.tokens(), s.token_begin, s.token_end, vocab);
  }

  size_t num_gaps = n - 1;
  std::vector<double> gap_scores(num_gaps, 0.0);
  int bs = std::max(1, options.block_size);
  for (size_t g = 0; g < num_gaps; ++g) {
    TermVector left;
    TermVector right;
    for (int k = 0; k < bs; ++k) {
      long li = static_cast<long>(g) - k;
      if (li >= 0) left.merge(unit_terms[static_cast<size_t>(li)]);
      size_t ri = g + 1 + static_cast<size_t>(k);
      if (ri < n) right.merge(unit_terms[ri]);
    }
    gap_scores[g] = TermVector::cosine(left, right);
  }
  return borders_from_gap_scores(std::move(gap_scores), n, options);
}

Segmentation cm_tiling_segment(const Document& doc,
                               const TextTilingOptions& options) {
  size_t n = doc.num_units();
  if (n < 2) return Segmentation::whole(n);

  SegScoring scoring;  // all CMs
  size_t num_gaps = n - 1;
  std::vector<double> gap_scores(num_gaps, 0.0);
  int bs = std::max(1, options.block_size);
  for (size_t g = 0; g < num_gaps; ++g) {
    size_t left_begin = g + 1 >= static_cast<size_t>(bs) ? g + 1 - bs : 0;
    size_t right_end = std::min(n, g + 1 + static_cast<size_t>(bs));
    std::vector<double> left = cm_distribution_vector(
        doc.range_profile(left_begin, g + 1), scoring);
    std::vector<double> right =
        cm_distribution_vector(doc.range_profile(g + 1, right_end), scoring);
    gap_scores[g] = cosine_similarity(left, right);
  }
  return borders_from_gap_scores(std::move(gap_scores), n, options);
}

}  // namespace ibseg
