#ifndef IBSEG_SEG_SEGMENTER_H_
#define IBSEG_SEG_SEGMENTER_H_

#include <cstdint>
#include <string>

#include "seg/border_strategies.h"
#include "seg/texttiling.h"

namespace ibseg {

/// Facade over the segmentation back ends so the pipeline and benchmarks
/// can swap segmenters uniformly:
///  * intention-based (CM features + a border selection strategy, Sec. 5),
///  * topical (term-based TextTiling, the Content-MR/Hearst comparator),
///  * sentences (no merging, the SentIntent-MR comparator).
class Segmenter {
 public:
  /// Intention-based segmenter (default: Greedy + Shannon + Eq. 3 depth,
  /// the configuration the paper selects for the overall evaluation).
  static Segmenter intention(
      BorderStrategyKind strategy = BorderStrategyKind::kGreedy,
      const SegScoring& scoring = {},
      const BorderStrategyOptions& options = {});

  /// Term-based TextTiling segmenter.
  static Segmenter topical(const TextTilingOptions& options = {});

  /// Hearst's mechanism over CM vectors (Sec. 9.1.2.A "Tile on CMs").
  static Segmenter cm_tiling(const TextTilingOptions& options = {});

  /// Sentence-granularity segmenter.
  static Segmenter sentences();

  /// Baseline: borders at uniform random gaps with probability
  /// `border_prob` (deterministic in the document id). Grounds the
  /// segmentation metrics the way the Random method grounds precision.
  static Segmenter random_baseline(double border_prob = 0.25,
                                   uint64_t seed = 97);

  /// Baseline: splits into `num_segments` near-equal parts.
  static Segmenter even_split(size_t num_segments = 3);

  /// Segments one document. `vocab` is only touched by the topical mode
  /// (term interning); it must be the corpus-shared vocabulary.
  Segmentation segment(const Document& doc, Vocabulary& vocab) const;

  const std::string& name() const { return name_; }

 private:
  enum class Mode {
    kIntention,
    kTopical,
    kCmTiling,
    kSentences,
    kRandom,
    kEvenSplit,
  };

  Segmenter() = default;

  Mode mode_ = Mode::kIntention;
  BorderStrategyKind strategy_ = BorderStrategyKind::kGreedy;
  SegScoring scoring_;
  BorderStrategyOptions strategy_options_;
  TextTilingOptions tiling_options_;
  double random_border_prob_ = 0.25;
  uint64_t random_seed_ = 97;
  size_t even_segments_ = 3;
  std::string name_;
};

}  // namespace ibseg

#endif  // IBSEG_SEG_SEGMENTER_H_
