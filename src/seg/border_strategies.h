#ifndef IBSEG_SEG_BORDER_STRATEGIES_H_
#define IBSEG_SEG_BORDER_STRATEGIES_H_

#include "seg/coherence.h"
#include "seg/document.h"
#include "seg/segmentation.h"

namespace ibseg {

/// The bottom-up border selection mechanisms of Sec. 5.3. All start from
/// the all-units segmentation (every sentence a segment) and merge.
enum class BorderStrategyKind {
  kTile,        ///< iterative threshold sweep over border scores
  kStepByStep,  ///< left-to-right single pass, merge while left segment is
                ///  less coherent than the whole document
  kGreedy,      ///< per-CM repeated worst-border removal + majority voting
  kSentences,   ///< no merging: every sentence a segment (SentIntent-MR)
  kTopDown,     ///< recursive best-split while splitting beats not splitting
                ///  (the top-down alternative the paper sketches first)
};

const char* border_strategy_name(BorderStrategyKind kind);

/// Tunables for the strategies. Defaults follow the paper's descriptions;
/// knobs exist for the ablation benches.
struct BorderStrategyOptions {
  /// Tile: borders scoring below mean - tile_stddev_factor * stddev are
  /// removed each sweep.
  double tile_stddev_factor = 0.75;
  /// Tile/Greedy: hard cap on passes (safety; the paper's loops converge).
  int max_passes = 64;
  /// Greedy: a per-CM pass removes the worst border while its score is
  /// below mean - greedy_stddev_factor * stddev of the present borders. A
  /// single-CM run is deliberately aggressive (factor 0 keeps removing
  /// until its CM sees a clearly-above-average border); the majority vote
  /// across CMs is what preserves borders that any single CM would drop.
  double greedy_stddev_factor = 0.0;
  /// Majority voting: a border is removed when at least
  /// ceil(greedy_majority * #CMs) single-CM runs marked it.
  double greedy_majority = 0.6;
  /// Maximum number of units considered on each side of a border when
  /// scoring it (0 = whole adjacent segments). Bounding the context keeps
  /// long segments from diluting the local CM shift — the failure mode the
  /// paper attributes to comparisons between long segments (Sec. 5.3).
  size_t context_window = 3;
  /// TopDown: a segment is split at its best border only when that
  /// border's Eq. 4 score exceeds the unsplit segment's coherence (the
  /// score of "no border") by this margin.
  double topdown_margin = 0.05;
  /// TopDown: recursion depth cap (2^depth segments at most).
  int topdown_max_depth = 6;
};

/// Computes the intention-based segmentation of `doc` with the selected
/// mechanism and scoring. Documents with fewer than 2 units return the
/// trivial segmentation.
Segmentation select_borders(const Document& doc, BorderStrategyKind kind,
                            const SegScoring& scoring = {},
                            const BorderStrategyOptions& options = {});

/// Score of every border in `seg` under `scoring` (for diagnostics, the
/// Tile threshold and Fig. 8(b)-style reporting). Element i corresponds to
/// seg.borders[i].
std::vector<double> score_borders(const Document& doc, const Segmentation& seg,
                                  const SegScoring& scoring);

/// Mean coherence of the segments of `seg` (Fig. 8(b)).
double mean_segment_coherence(const Document& doc, const Segmentation& seg,
                              const SegScoring& scoring);

}  // namespace ibseg

#endif  // IBSEG_SEG_BORDER_STRATEGIES_H_
