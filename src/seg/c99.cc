#include "seg/c99.h"

#include <algorithm>
#include <cmath>
#include <vector>

#include "text/term_vector.h"
#include "util/vector_math.h"

namespace ibseg {
namespace {

// Within-segment rank density bookkeeping for the divisive phase: for a
// candidate segmentation, D = sum of within-segment rank mass / sum of
// within-segment areas.
struct RegionSums {
  // prefix[i][j] = sum of rank[0..i)[0..j); (n+1)^2 table.
  std::vector<std::vector<double>> prefix;

  explicit RegionSums(const std::vector<std::vector<double>>& rank) {
    size_t n = rank.size();
    prefix.assign(n + 1, std::vector<double>(n + 1, 0.0));
    for (size_t i = 0; i < n; ++i) {
      for (size_t j = 0; j < n; ++j) {
        prefix[i + 1][j + 1] = rank[i][j] + prefix[i][j + 1] +
                               prefix[i + 1][j] - prefix[i][j];
      }
    }
  }

  // Rank mass of the square block [b, e) x [b, e).
  double block(size_t b, size_t e) const {
    return prefix[e][e] - prefix[b][e] - prefix[e][b] + prefix[b][b];
  }
};

}  // namespace

Segmentation c99_segment(const Document& doc, Vocabulary& vocab,
                         const C99Options& options) {
  const size_t n = doc.num_units();
  if (n < 2) return Segmentation::whole(n);

  // Sentence term vectors and the similarity matrix.
  std::vector<TermVector> units(n);
  for (size_t u = 0; u < n; ++u) {
    const Sentence& s = doc.sentences()[u];
    units[u] =
        build_term_vector(doc.tokens(), s.token_begin, s.token_end, vocab);
  }
  std::vector<std::vector<double>> sim(n, std::vector<double>(n, 0.0));
  for (size_t i = 0; i < n; ++i) {
    for (size_t j = i; j < n; ++j) {
      double v = i == j ? 1.0 : TermVector::cosine(units[i], units[j]);
      sim[i][j] = v;
      sim[j][i] = v;
    }
  }

  // Local rank transform: each cell becomes the fraction of its mask
  // neighbors with strictly smaller similarity (Choi's insight: absolute
  // cosines are unreliable for short texts; local ordering is not).
  const int half = std::max(1, options.rank_mask_half);
  std::vector<std::vector<double>> rank(n, std::vector<double>(n, 0.0));
  for (size_t i = 0; i < n; ++i) {
    for (size_t j = 0; j < n; ++j) {
      int smaller = 0;
      int total = 0;
      for (int di = -half; di <= half; ++di) {
        for (int dj = -half; dj <= half; ++dj) {
          long ni = static_cast<long>(i) + di;
          long nj = static_cast<long>(j) + dj;
          if (ni < 0 || nj < 0 || ni >= static_cast<long>(n) ||
              nj >= static_cast<long>(n)) {
            continue;
          }
          if (ni == static_cast<long>(i) && nj == static_cast<long>(j)) {
            continue;
          }
          ++total;
          if (sim[static_cast<size_t>(ni)][static_cast<size_t>(nj)] <
              sim[i][j]) {
            ++smaller;
          }
        }
      }
      rank[i][j] = total > 0 ? static_cast<double>(smaller) / total : 0.0;
    }
  }

  RegionSums sums(rank);

  // Divisive clustering: repeatedly apply the split that maximizes the
  // inside density D = sum(block mass) / sum(block area).
  std::vector<size_t> boundaries = {0, n};  // segment edges
  auto density = [&](const std::vector<size_t>& edges) {
    double mass = 0.0;
    double area = 0.0;
    for (size_t s = 0; s + 1 < edges.size(); ++s) {
      size_t b = edges[s];
      size_t e = edges[s + 1];
      mass += sums.block(b, e);
      double len = static_cast<double>(e - b);
      area += len * len;
    }
    return area > 0.0 ? mass / area : 0.0;
  };

  std::vector<double> gains;
  for (;;) {
    if (options.max_segments > 0 &&
        boundaries.size() - 1 >= options.max_segments) {
      break;
    }
    double base = density(boundaries);
    double best_gain = -1.0;
    size_t best_pos = 0;
    for (size_t s = 0; s + 1 < boundaries.size(); ++s) {
      for (size_t split = boundaries[s] + 1; split < boundaries[s + 1];
           ++split) {
        std::vector<size_t> candidate = boundaries;
        candidate.insert(
            std::upper_bound(candidate.begin(), candidate.end(), split),
            split);
        double gain = density(candidate) - base;
        if (gain > best_gain) {
          best_gain = gain;
          best_pos = split;
        }
      }
    }
    if (best_gain <= 0.0) break;
    // Choi's automatic termination: stop when the gain drops well below
    // the profile of gains seen so far.
    if (gains.size() >= 2) {
      double m = mean(gains);
      double sd = stddev(gains);
      if (best_gain < m - options.threshold_stddev_factor * sd) break;
    }
    gains.push_back(best_gain);
    boundaries.insert(
        std::upper_bound(boundaries.begin(), boundaries.end(), best_pos),
        best_pos);
  }

  Segmentation seg;
  seg.num_units = n;
  for (size_t s = 1; s + 1 < boundaries.size() + 0; ++s) {
    if (boundaries[s] > 0 && boundaries[s] < n) {
      seg.borders.push_back(boundaries[s]);
    }
  }
  std::sort(seg.borders.begin(), seg.borders.end());
  return seg;
}

}  // namespace ibseg
