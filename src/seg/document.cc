#include "seg/document.h"

#include <cassert>

#include "nlp/cm_annotator.h"
#include "nlp/pos_tagger.h"
#include "obs/trace.h"

namespace ibseg {

Document Document::analyze(DocId id, std::string text) {
  // The one place every document flows through — corpus load, ingest
  // prepare, external queries — so this scope IS the "analyze" stage.
  obs::TraceScope analyze_stage(obs::Stage::kAnalyze);
  Document d;
  d.id_ = id;
  d.text_ = std::move(text);
  d.tokens_ = tokenize(d.text_);
  d.tags_ = tag_tokens(d.tokens_);
  d.sentences_ = split_sentences(d.tokens_, d.text_);
  d.unit_profiles_ = annotate_sentences(d.tokens_, d.tags_, d.sentences_);

  d.prefix_profiles_.resize(d.sentences_.size() + 1);
  for (size_t i = 0; i < d.sentences_.size(); ++i) {
    d.prefix_profiles_[i + 1] = d.prefix_profiles_[i];
    d.prefix_profiles_[i + 1].merge(d.unit_profiles_[i]);
  }
  return d;
}

CmProfile Document::range_profile(size_t begin, size_t end) const {
  assert(begin <= end && end <= num_units());
  CmProfile p;
  for (size_t i = 0; i < p.counts.size(); ++i) {
    p.counts[i] =
        prefix_profiles_[end].counts[i] - prefix_profiles_[begin].counts[i];
    // Floating-point subtraction can leave tiny negatives; clamp.
    if (p.counts[i] < 0.0) p.counts[i] = 0.0;
  }
  return p;
}

size_t Document::border_char_offset(size_t u) const {
  assert(u <= num_units());
  if (num_units() == 0) return 0;
  if (u == num_units()) return sentences_.back().char_end;
  return sentences_[u].char_begin;
}

std::string_view Document::range_text(size_t begin, size_t end) const {
  assert(begin <= end && end <= num_units());
  if (begin == end) return {};
  size_t b = sentences_[begin].char_begin;
  size_t e = sentences_[end - 1].char_end;
  return std::string_view(text_).substr(b, e - b);
}

}  // namespace ibseg
