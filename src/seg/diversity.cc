#include "seg/diversity.h"

#include <cmath>

namespace ibseg {

int cm_richness_count(const CmProfile& profile, CmKind cm) {
  int nonzero = 0;
  for (int v = 0; v < kCmArity[static_cast<int>(cm)]; ++v) {
    if (profile.count(cm, v) > 0.0) ++nonzero;
  }
  return nonzero;
}

double cm_evenness(const CmProfile& profile, CmKind cm) {
  int nonzero = cm_richness_count(profile, cm);
  if (nonzero <= 1) return 1.0;
  double total = profile.cm_total(cm);
  double h = 0.0;
  for (int v = 0; v < kCmArity[static_cast<int>(cm)]; ++v) {
    double c = profile.count(cm, v);
    if (c <= 0.0) continue;
    double p = c / total;
    h -= p * std::log(p);
  }
  return h / std::log(static_cast<double>(nonzero));
}

double cm_diversity(const CmProfile& profile, CmKind cm,
                    DiversityIndex index) {
  int arity = kCmArity[static_cast<int>(cm)];
  double total = profile.cm_total(cm);
  if (total <= 0.0) return 0.0;
  switch (index) {
    case DiversityIndex::kShannon: {
      // Eq. 1, with the log normalized by log(arity) so the index is at
      // most 1 regardless of the CM's number of categorical values (the
      // paper notes the index must stay below one for coherence Eq. 2).
      double h = 0.0;
      for (int v = 0; v < arity; ++v) {
        double c = profile.count(cm, v);
        if (c <= 0.0) continue;
        double p = c / total;
        h -= p * std::log(p);
      }
      return h / std::log(static_cast<double>(arity));
    }
    case DiversityIndex::kRichness:
      return static_cast<double>(cm_richness_count(profile, cm)) /
             static_cast<double>(arity);
  }
  return 0.0;
}

}  // namespace ibseg
