#include "seg/coherence.h"

#include <cmath>

#include "util/vector_math.h"

namespace ibseg {
namespace {

bool cm_selected(const SegScoring& scoring, int cm) {
  return (scoring.cm_mask >> cm) & 1u;
}

}  // namespace

double segment_coherence(const CmProfile& profile, const SegScoring& scoring) {
  double sum = 0.0;
  int active = 0;
  for (int c = 0; c < kNumCms; ++c) {
    if (!cm_selected(scoring, c)) continue;
    sum += 1.0 -
           cm_diversity(profile, static_cast<CmKind>(c), scoring.diversity);
    ++active;
  }
  return active == 0 ? 0.0 : sum / active;
}

std::vector<double> cm_distribution_vector(const CmProfile& profile,
                                           const SegScoring& scoring) {
  std::vector<double> v;
  v.reserve(kNumCmFeatures);
  for (int c = 0; c < kNumCms; ++c) {
    if (!cm_selected(scoring, c)) continue;
    CmKind cm = static_cast<CmKind>(c);
    double total = profile.cm_total(cm);
    for (int val = 0; val < kCmArity[c]; ++val) {
      v.push_back(total > 0.0 ? profile.count(cm, val) / total : 0.0);
    }
  }
  return v;
}

double border_depth(const CmProfile& left, const CmProfile& right,
                    const SegScoring& scoring) {
  if (scoring.depth == DepthFn::kCoherence) {
    // Eq. 3: merge the two segments and compare coherences.
    CmProfile merged = left;
    merged.merge(right);
    double coh_merged = segment_coherence(merged, scoring);
    double coh_left = segment_coherence(left, scoring);
    double coh_right = segment_coherence(right, scoring);
    if (coh_merged <= 0.0) {
      // A fully diverse merged segment: treat as maximally deep when the
      // sides are coherent at all, else flat.
      return (coh_left > 0.0 || coh_right > 0.0) ? 1.0 : 0.0;
    }
    return (std::fabs(coh_left - coh_merged) +
            std::fabs(coh_right - coh_merged)) /
           (2.0 * coh_merged);
  }
  std::vector<double> a = cm_distribution_vector(left, scoring);
  std::vector<double> b = cm_distribution_vector(right, scoring);
  switch (scoring.depth) {
    case DepthFn::kCosine:
      return cosine_dissimilarity(a, b);
    case DepthFn::kEuclidean:
      return euclidean_distance(a, b);
    case DepthFn::kManhattan:
      return manhattan_distance(a, b);
    case DepthFn::kCoherence:
      break;  // handled above
  }
  return 0.0;
}

double border_score(const CmProfile& left, const CmProfile& right,
                    const SegScoring& scoring) {
  return (segment_coherence(left, scoring) +
          segment_coherence(right, scoring) +
          border_depth(left, right, scoring)) /
         3.0;
}

}  // namespace ibseg
