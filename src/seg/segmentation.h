#ifndef IBSEG_SEG_SEGMENTATION_H_
#define IBSEG_SEG_SEGMENTATION_H_

#include <cstddef>
#include <utility>
#include <vector>

namespace ibseg {

/// A segmentation of a document of `num_units` text units (Def. 1),
/// represented by its border set (Sec. 3): border `b` means a segment
/// starts at unit index `b`. Borders are strictly increasing and lie in
/// (0, num_units). An empty border set is the trivial one-segment
/// segmentation.
struct Segmentation {
  size_t num_units = 0;
  std::vector<size_t> borders;

  /// Number of segments (|S^d| in the paper). 0 only for an empty document.
  size_t num_segments() const {
    return num_units == 0 ? 0 : borders.size() + 1;
  }

  /// Half-open [begin, end) unit ranges of the segments, in order.
  std::vector<std::pair<size_t, size_t>> segments() const;

  /// The segment index that contains unit `u`.
  size_t segment_of_unit(size_t u) const;

  /// True when borders are sorted, unique and within (0, num_units).
  bool is_valid() const;

  /// The trivial segmentation (whole document, no borders).
  static Segmentation whole(size_t num_units) {
    return Segmentation{num_units, {}};
  }

  /// Every unit its own segment (the bottom-up starting point).
  static Segmentation all_units(size_t num_units);

  bool operator==(const Segmentation&) const = default;
};

/// Converts a segmentation into a 0/1 boundary indicator per gap (gap i is
/// between units i and i+1; there are num_units-1 gaps). Used by the
/// WindowDiff metric.
std::vector<int> boundary_indicator(const Segmentation& seg);

}  // namespace ibseg

#endif  // IBSEG_SEG_SEGMENTATION_H_
