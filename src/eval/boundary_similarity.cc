#include "eval/boundary_similarity.h"

#include <algorithm>
#include <cassert>
#include <cstdlib>
#include <vector>

namespace ibseg {

BoundaryEditStats boundary_edit(const Segmentation& a, const Segmentation& b,
                                size_t max_transposition_distance) {
  assert(a.num_units == b.num_units);
  BoundaryEditStats stats;

  std::vector<size_t> only_a;
  std::vector<size_t> only_b;
  {
    // Both border lists are sorted; classify exact matches in one sweep.
    size_t i = 0;
    size_t j = 0;
    while (i < a.borders.size() && j < b.borders.size()) {
      if (a.borders[i] == b.borders[j]) {
        ++stats.matches;
        ++i;
        ++j;
      } else if (a.borders[i] < b.borders[j]) {
        only_a.push_back(a.borders[i++]);
      } else {
        only_b.push_back(b.borders[j++]);
      }
    }
    while (i < a.borders.size()) only_a.push_back(a.borders[i++]);
    while (j < b.borders.size()) only_b.push_back(b.borders[j++]);
  }

  // Greedy nearest-first pairing of the leftovers into transpositions.
  // Candidate pairs within the distance cap, sorted by (distance,
  // position) for determinism; each boundary used at most once.
  struct Candidate {
    size_t distance;
    size_t ia;
    size_t ib;
  };
  std::vector<Candidate> candidates;
  for (size_t ia = 0; ia < only_a.size(); ++ia) {
    for (size_t ib = 0; ib < only_b.size(); ++ib) {
      size_t d = only_a[ia] > only_b[ib] ? only_a[ia] - only_b[ib]
                                         : only_b[ib] - only_a[ia];
      if (d <= max_transposition_distance) {
        candidates.push_back(Candidate{d, ia, ib});
      }
    }
  }
  std::sort(candidates.begin(), candidates.end(),
            [](const Candidate& x, const Candidate& y) {
              if (x.distance != y.distance) return x.distance < y.distance;
              if (x.ia != y.ia) return x.ia < y.ia;
              return x.ib < y.ib;
            });
  std::vector<bool> used_a(only_a.size(), false);
  std::vector<bool> used_b(only_b.size(), false);
  for (const Candidate& c : candidates) {
    if (used_a[c.ia] || used_b[c.ib]) continue;
    used_a[c.ia] = true;
    used_b[c.ib] = true;
    ++stats.transpositions;
  }
  for (bool u : used_a) {
    if (!u) ++stats.additions;
  }
  for (bool u : used_b) {
    if (!u) ++stats.additions;
  }
  return stats;
}

double boundary_similarity(const Segmentation& a, const Segmentation& b,
                           size_t max_transposition_distance,
                           double transposition_weight) {
  BoundaryEditStats s = boundary_edit(a, b, max_transposition_distance);
  double denom = static_cast<double>(s.matches + s.transpositions +
                                     s.additions);
  if (denom == 0.0) return 1.0;  // no boundaries anywhere: trivially equal
  double penalty = static_cast<double>(s.additions) +
                   transposition_weight *
                       static_cast<double>(s.transpositions);
  return 1.0 - penalty / denom;
}

}  // namespace ibseg
