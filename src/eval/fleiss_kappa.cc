#include "eval/fleiss_kappa.h"

#include <algorithm>
#include <cassert>
#include <cstddef>

namespace ibseg {
namespace {

// Per-item agreement: fraction of rater pairs that agree.
double item_agreement(const std::vector<int>& counts, int raters) {
  if (raters < 2) return 1.0;
  double agree_pairs = 0.0;
  for (int c : counts) agree_pairs += static_cast<double>(c) * (c - 1);
  return agree_pairs / (static_cast<double>(raters) * (raters - 1));
}

}  // namespace

double fleiss_kappa(const std::vector<std::vector<int>>& ratings) {
  size_t num_items = 0;
  size_t num_categories = 0;
  for (const auto& item : ratings) {
    num_categories = std::max(num_categories, item.size());
  }
  if (num_categories == 0) return 0.0;

  double p_bar = 0.0;                             // mean observed agreement
  std::vector<double> category_mass(num_categories, 0.0);
  double total_ratings = 0.0;
  for (const auto& item : ratings) {
    int raters = 0;
    for (int c : item) raters += c;
    if (raters < 2) continue;
    ++num_items;
    p_bar += item_agreement(item, raters);
    for (size_t c = 0; c < item.size(); ++c) {
      category_mass[c] += static_cast<double>(item[c]);
    }
    total_ratings += raters;
  }
  if (num_items == 0 || total_ratings == 0.0) return 0.0;
  p_bar /= static_cast<double>(num_items);

  double p_e = 0.0;  // chance agreement
  for (double mass : category_mass) {
    double p = mass / total_ratings;
    p_e += p * p;
  }
  if (p_e >= 1.0) return 1.0;
  return (p_bar - p_e) / (1.0 - p_e);
}

double observed_agreement(const std::vector<std::vector<int>>& ratings) {
  double sum = 0.0;
  size_t items = 0;
  for (const auto& item : ratings) {
    int raters = 0;
    for (int c : item) raters += c;
    if (raters < 2) continue;
    sum += item_agreement(item, raters);
    ++items;
  }
  return items == 0 ? 0.0 : sum / static_cast<double>(items);
}

}  // namespace ibseg
