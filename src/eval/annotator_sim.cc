#include "eval/annotator_sim.h"

#include <algorithm>
#include <cassert>
#include <set>

namespace ibseg {

HumanAnnotation simulate_annotation(const Document& doc,
                                    const Segmentation& truth,
                                    const std::vector<int>& true_labels,
                                    int num_label_kinds,
                                    const AnnotatorNoise& noise, Rng& rng,
                                    double label_confusion) {
  assert(truth.num_units == doc.num_units());
  assert(true_labels.size() == truth.num_segments() ||
         true_labels.empty());
  size_t n = truth.num_units;
  HumanAnnotation out;
  out.segmentation.num_units = n;
  if (n < 2) {
    if (n == 1 && !true_labels.empty()) {
      out.segment_labels.push_back(true_labels[0]);
    }
    return out;
  }

  std::set<size_t> true_borders(truth.borders.begin(), truth.borders.end());
  std::set<size_t> borders;
  for (size_t b : true_borders) {
    if (rng.next_bool(noise.drop_prob)) continue;
    size_t placed = b;
    if (rng.next_bool(noise.shift_prob)) {
      long delta = rng.next_bool(0.5) ? 1 : -1;
      long cand = static_cast<long>(b) + delta;
      if (cand >= 1 && cand < static_cast<long>(n)) {
        placed = static_cast<size_t>(cand);
      }
    }
    borders.insert(placed);
  }
  for (size_t g = 1; g < n; ++g) {
    if (true_borders.count(g)) continue;
    if (rng.next_bool(noise.insert_prob)) borders.insert(g);
  }
  out.segmentation.borders.assign(borders.begin(), borders.end());

  // Reported character offsets with jitter, clamped into the text.
  double text_len = static_cast<double>(doc.text().size());
  for (size_t b : out.segmentation.borders) {
    double pos = static_cast<double>(doc.border_char_offset(b)) +
                 rng.next_gaussian(0.0, noise.char_jitter);
    pos = std::clamp(pos, 0.0, text_len);
    out.border_chars.push_back(pos);
  }

  // Labels: majority-overlap true label per annotated segment, confused
  // with probability label_confusion.
  if (!true_labels.empty() && num_label_kinds > 0) {
    for (auto [b, e] : out.segmentation.segments()) {
      // Count unit overlap with each true segment.
      std::vector<size_t> overlap(true_labels.size(), 0);
      for (size_t u = b; u < e; ++u) {
        ++overlap[truth.segment_of_unit(u)];
      }
      size_t best =
          std::max_element(overlap.begin(), overlap.end()) - overlap.begin();
      int label = true_labels[best];
      if (rng.next_bool(label_confusion)) {
        label = static_cast<int>(
            rng.next_below(static_cast<uint64_t>(num_label_kinds)));
      }
      out.segment_labels.push_back(label);
    }
  }
  return out;
}

std::vector<HumanAnnotation> simulate_annotators(
    const Document& doc, const Segmentation& truth,
    const std::vector<int>& true_labels, int num_label_kinds, size_t count,
    const AnnotatorNoise& noise, Rng& rng, double label_confusion) {
  std::vector<HumanAnnotation> out;
  out.reserve(count);
  for (size_t a = 0; a < count; ++a) {
    Rng child = rng.fork();
    out.push_back(simulate_annotation(doc, truth, true_labels,
                                      num_label_kinds, noise, child,
                                      label_confusion));
  }
  return out;
}

}  // namespace ibseg
