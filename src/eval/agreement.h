#ifndef IBSEG_EVAL_AGREEMENT_H_
#define IBSEG_EVAL_AGREEMENT_H_

#include <cstddef>
#include <vector>

namespace ibseg {

/// Border-placement agreement across annotators at a character-offset
/// tolerance (the paper's Table 2: +-10 / +-25 / +-40 characters).
///
/// Input: for one post, each annotator's border positions in character
/// offsets. The computation:
///  1. pool all borders and cluster them greedily — two borders belong to
///     the same candidate border site when they are within `offset_chars`;
///  2. each site becomes a rating item; each annotator votes "placed a
///     border here" / "did not";
///  3. aggregate items across posts into binary Fleiss' kappa and the
///     observed agreement percentage — the mean, over sites, of the share
///     of annotators in the majority ("how many annotators agreed over
///     all", paper Sec. 9.1.1.A).
struct AgreementResult {
  double fleiss_kappa = 0.0;
  double observed_percent = 0.0;  ///< majority share in [0, 100]
  size_t num_items = 0;
};

/// Accumulates border votes so multiple posts contribute to one result.
class BorderAgreementAccumulator {
 public:
  explicit BorderAgreementAccumulator(double offset_chars)
      : offset_chars_(offset_chars) {}

  /// Adds one post's annotations: annotator_borders[a] is annotator a's
  /// border character offsets (any order).
  void add_post(const std::vector<std::vector<double>>& annotator_borders);

  AgreementResult result() const;

 private:
  double offset_chars_;
  /// item -> {#yes, #no} counts.
  std::vector<std::vector<int>> items_;
};

}  // namespace ibseg

#endif  // IBSEG_EVAL_AGREEMENT_H_
