#ifndef IBSEG_EVAL_NDCG_H_
#define IBSEG_EVAL_NDCG_H_

#include <functional>
#include <vector>

#include "seg/document.h"

namespace ibseg {

/// Graded-relevance evaluation. The paper deliberately chooses binary
/// judgments over graded ones ("we are interested in returning to the user
/// only highly related posts", Sec. 9.2.1, citing Kekalainen 2005); this
/// module provides the graded alternative so the choice can be studied:
/// on the synthetic corpora a natural grade is
///   2 = same scenario (same problem), 1 = same component (same hardware,
///   different problem — the paper's Doc A/B pair), 0 = unrelated.

/// Discounted cumulative gain of a ranked list under `grade` (standard
/// log2 discount, gain = 2^grade - 1).
double dcg(const std::vector<DocId>& ranked,
           const std::function<int(DocId)>& grade);

/// Normalized DCG: dcg / ideal-dcg, where the ideal ranking places the
/// `ideal_grades` (the multiset of grades of ALL judged documents, any
/// order) best-first, truncated to the ranked list's length. Returns 0
/// when no judged document has a positive grade.
double ndcg(const std::vector<DocId>& ranked,
            const std::function<int(DocId)>& grade,
            std::vector<int> ideal_grades);

}  // namespace ibseg

#endif  // IBSEG_EVAL_NDCG_H_
