#include "eval/window_diff.h"

#include <algorithm>
#include <cassert>
#include <cmath>

namespace ibseg {
namespace {

int default_window(const Segmentation& reference) {
  size_t segs = reference.num_segments();
  if (segs == 0) return 1;
  double avg_len =
      static_cast<double>(reference.num_units) / static_cast<double>(segs);
  int w = static_cast<int>(std::lround(avg_len / 2.0));
  return std::max(1, w);
}

// Number of borders in gap range [begin, end) (gap i separates units i and
// i+1).
int borders_in(const std::vector<int>& gaps, size_t begin, size_t end) {
  int count = 0;
  for (size_t i = begin; i < end && i < gaps.size(); ++i) count += gaps[i];
  return count;
}

}  // namespace

double window_diff(const Segmentation& reference,
                   const Segmentation& hypothesis, int window) {
  assert(reference.num_units == hypothesis.num_units);
  size_t n = reference.num_units;
  if (n < 2) return 0.0;
  int w = window > 0 ? window : default_window(reference);
  w = std::min<int>(w, static_cast<int>(n) - 1);
  std::vector<int> ref_gaps = boundary_indicator(reference);
  std::vector<int> hyp_gaps = boundary_indicator(hypothesis);

  size_t positions = n - static_cast<size_t>(w);
  size_t errors = 0;
  for (size_t i = 0; i < positions; ++i) {
    int r = borders_in(ref_gaps, i, i + static_cast<size_t>(w));
    int h = borders_in(hyp_gaps, i, i + static_cast<size_t>(w));
    if (r != h) ++errors;
  }
  return static_cast<double>(errors) / static_cast<double>(positions);
}

double pk_metric(const Segmentation& reference,
                 const Segmentation& hypothesis, int window) {
  assert(reference.num_units == hypothesis.num_units);
  size_t n = reference.num_units;
  if (n < 2) return 0.0;
  int w = window > 0 ? window : default_window(reference);
  w = std::min<int>(w, static_cast<int>(n) - 1);

  size_t positions = n - static_cast<size_t>(w);
  size_t errors = 0;
  for (size_t i = 0; i < positions; ++i) {
    bool ref_same = reference.segment_of_unit(i) ==
                    reference.segment_of_unit(i + static_cast<size_t>(w));
    bool hyp_same = hypothesis.segment_of_unit(i) ==
                    hypothesis.segment_of_unit(i + static_cast<size_t>(w));
    if (ref_same != hyp_same) ++errors;
  }
  return static_cast<double>(errors) / static_cast<double>(positions);
}

double mult_win_diff(const std::vector<Segmentation>& references,
                     const Segmentation& hypothesis) {
  if (references.empty()) return 0.0;
  // Window: half the average reference segment length, across annotators.
  double total_len = 0.0;
  double total_segs = 0.0;
  for (const Segmentation& r : references) {
    total_len += static_cast<double>(r.num_units);
    total_segs += static_cast<double>(r.num_segments());
  }
  int w = 1;
  if (total_segs > 0.0) {
    w = std::max(1, static_cast<int>(std::lround(total_len / total_segs / 2.0)));
  }
  double sum = 0.0;
  for (const Segmentation& r : references) {
    sum += window_diff(r, hypothesis, w);
  }
  return sum / static_cast<double>(references.size());
}

}  // namespace ibseg
