#ifndef IBSEG_EVAL_BOUNDARY_SIMILARITY_H_
#define IBSEG_EVAL_BOUNDARY_SIMILARITY_H_

#include "seg/segmentation.h"

namespace ibseg {

/// Boundary-edit-distance based agreement (Fournier 2013, "Evaluating Text
/// Segmentation using Boundary Edit Distance") — the third standard
/// segmentation metric next to Pk and WindowDiff. Where WindowDiff slides
/// windows, boundary similarity aligns the two boundary sets directly:
///  * exact matches cost 0;
///  * near misses within `max_transposition_distance` gaps count as
///    transpositions with fractional cost;
///  * unmatched boundaries are full errors (additions/deletions).
struct BoundaryEditStats {
  size_t matches = 0;
  size_t transpositions = 0;
  size_t additions = 0;  ///< boundaries only in one segmentation
};

/// Computes the boundary edit operations between two segmentations of the
/// same unit count. Matching is greedy nearest-first and deterministic.
BoundaryEditStats boundary_edit(const Segmentation& a, const Segmentation& b,
                                size_t max_transposition_distance = 2);

/// Boundary similarity in [0, 1]:
///   B = 1 - (additions + w_t * transpositions) / (total edits + matches)
/// with w_t the transposition weight (default 0.5). 1 iff identical
/// boundary sets; 1 (vacuously) when both segmentations have no boundary.
double boundary_similarity(const Segmentation& a, const Segmentation& b,
                           size_t max_transposition_distance = 2,
                           double transposition_weight = 0.5);

}  // namespace ibseg

#endif  // IBSEG_EVAL_BOUNDARY_SIMILARITY_H_
