#include "eval/agreement.h"

#include <algorithm>
#include <cmath>

#include "eval/fleiss_kappa.h"

namespace ibseg {

void BorderAgreementAccumulator::add_post(
    const std::vector<std::vector<double>>& annotator_borders) {
  size_t num_annotators = annotator_borders.size();
  if (num_annotators < 2) return;

  // Pool and sort all borders with their annotator.
  struct Vote {
    double pos;
    size_t annotator;
  };
  std::vector<Vote> votes;
  for (size_t a = 0; a < num_annotators; ++a) {
    for (double p : annotator_borders[a]) votes.push_back(Vote{p, a});
  }
  std::sort(votes.begin(), votes.end(),
            [](const Vote& x, const Vote& y) { return x.pos < y.pos; });

  // Greedy clustering into candidate border sites: a vote joins the open
  // site when it lies within offset_chars of the site's first vote.
  size_t i = 0;
  while (i < votes.size()) {
    double anchor = votes[i].pos;
    std::vector<bool> voted(num_annotators, false);
    size_t j = i;
    while (j < votes.size() && votes[j].pos - anchor <= offset_chars_) {
      voted[votes[j].annotator] = true;
      ++j;
    }
    int yes = 0;
    for (bool v : voted) yes += v ? 1 : 0;
    items_.push_back({yes, static_cast<int>(num_annotators) - yes});
    i = j;
  }
}

AgreementResult BorderAgreementAccumulator::result() const {
  AgreementResult r;
  r.num_items = items_.size();
  r.fleiss_kappa = fleiss_kappa(items_);
  // Observed agreement: mean majority share per site.
  double majority_sum = 0.0;
  size_t counted = 0;
  for (const auto& item : items_) {
    int total = 0;
    int top = 0;
    for (int c : item) {
      total += c;
      top = std::max(top, c);
    }
    if (total < 2) continue;
    majority_sum += static_cast<double>(top) / static_cast<double>(total);
    ++counted;
  }
  r.observed_percent =
      counted == 0 ? 0.0
                   : 100.0 * majority_sum / static_cast<double>(counted);
  return r;
}

}  // namespace ibseg
