#include "eval/ndcg.h"

#include <algorithm>
#include <cmath>

namespace ibseg {

double dcg(const std::vector<DocId>& ranked,
           const std::function<int(DocId)>& grade) {
  double total = 0.0;
  for (size_t i = 0; i < ranked.size(); ++i) {
    int g = grade(ranked[i]);
    if (g <= 0) continue;
    total += (std::pow(2.0, g) - 1.0) / std::log2(static_cast<double>(i) + 2.0);
  }
  return total;
}

double ndcg(const std::vector<DocId>& ranked,
            const std::function<int(DocId)>& grade,
            std::vector<int> ideal_grades) {
  std::sort(ideal_grades.begin(), ideal_grades.end(), std::greater<int>());
  double ideal = 0.0;
  for (size_t i = 0; i < ideal_grades.size() && i < ranked.size(); ++i) {
    if (ideal_grades[i] <= 0) break;
    ideal += (std::pow(2.0, ideal_grades[i]) - 1.0) /
             std::log2(static_cast<double>(i) + 2.0);
  }
  if (ideal <= 0.0) return 0.0;
  return dcg(ranked, grade) / ideal;
}

}  // namespace ibseg
