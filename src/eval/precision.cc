#include "eval/precision.h"

namespace ibseg {

double list_precision(const std::vector<DocId>& retrieved,
                      const std::function<bool(DocId)>& is_relevant) {
  if (retrieved.empty()) return 0.0;
  size_t hits = 0;
  for (DocId d : retrieved) {
    if (is_relevant(d)) ++hits;
  }
  return static_cast<double>(hits) / static_cast<double>(retrieved.size());
}

PrecisionSummary summarize_precision(const std::vector<double>& per_query) {
  PrecisionSummary s;
  s.per_query = per_query;
  if (per_query.empty()) return s;
  double sum = 0.0;
  size_t zeros = 0;
  for (double p : per_query) {
    sum += p;
    if (p == 0.0) ++zeros;
  }
  s.mean = sum / static_cast<double>(per_query.size());
  s.zero_fraction =
      static_cast<double>(zeros) / static_cast<double>(per_query.size());
  return s;
}

}  // namespace ibseg
