#ifndef IBSEG_EVAL_FLEISS_KAPPA_H_
#define IBSEG_EVAL_FLEISS_KAPPA_H_

#include <vector>

namespace ibseg {

/// Fleiss' kappa for inter-rater agreement over categorical ratings.
/// `ratings[i][c]` is the number of raters that assigned category c to item
/// i; every item must have the same total number of raters. Returns values
/// in [-1, 1]; 1 is perfect agreement, 0 chance-level. Items rated by
/// fewer than 2 raters are skipped; returns 0 when nothing remains.
double fleiss_kappa(const std::vector<std::vector<int>>& ratings);

/// Observed agreement proportion (the mean over items of the fraction of
/// agreeing rater pairs) — the "Agreement Percentage" column of the paper's
/// Table 2.
double observed_agreement(const std::vector<std::vector<int>>& ratings);

}  // namespace ibseg

#endif  // IBSEG_EVAL_FLEISS_KAPPA_H_
