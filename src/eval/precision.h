#ifndef IBSEG_EVAL_PRECISION_H_
#define IBSEG_EVAL_PRECISION_H_

#include <functional>
#include <vector>

#include "seg/document.h"

namespace ibseg {

/// Precision of a retrieved list: |relevant ∩ retrieved| / |retrieved|.
/// Returns 0 for an empty list (a query with no answers scores 0, matching
/// the paper's "lists with no true positives" accounting for Fig. 10).
double list_precision(const std::vector<DocId>& retrieved,
                      const std::function<bool(DocId)>& is_relevant);

/// Per-query precision values and their mean — "mean precision" as the
/// paper reports it (Sec. 9.2.1: the mean of the precision values
/// considering each post query separately).
struct PrecisionSummary {
  std::vector<double> per_query;
  double mean = 0.0;
  /// Fraction of queries with zero true positives (Fig. 10 / Sec. 9.2.2's
  /// "lists with no true positives" reduction).
  double zero_fraction = 0.0;
};

PrecisionSummary summarize_precision(const std::vector<double>& per_query);

}  // namespace ibseg

#endif  // IBSEG_EVAL_PRECISION_H_
