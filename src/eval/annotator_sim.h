#ifndef IBSEG_EVAL_ANNOTATOR_SIM_H_
#define IBSEG_EVAL_ANNOTATOR_SIM_H_

#include <vector>

#include "seg/document.h"
#include "seg/segmentation.h"
#include "util/rng.h"

namespace ibseg {

/// Noise model for a simulated human annotator (substitute for the paper's
/// 30-participant user study; see DESIGN.md substitution table). Each
/// annotator perturbs the generator's ground-truth borders: it may miss a
/// border, shift one to a neighboring sentence, invent a spurious one, and
/// it reports character positions with jitter (people click near, not at,
/// the exact offset).
struct AnnotatorNoise {
  double drop_prob = 0.05;    ///< miss a true border
  double shift_prob = 0.08;   ///< move a border one sentence left/right
  double insert_prob = 0.015;  ///< spurious border per non-border gap
  double char_jitter = 4.0;   ///< stddev of reported char offset noise
};

/// One simulated annotation of one post.
struct HumanAnnotation {
  Segmentation segmentation;          ///< sentence-unit borders
  std::vector<double> border_chars;   ///< reported char offsets, one/border
  std::vector<int> segment_labels;    ///< intention id per segment (noisy)
};

/// Produces one annotator's view of `truth` over `doc`. `true_labels` must
/// hold one intention id per ground-truth segment; labels follow the
/// segment that covers most of the annotated segment and are themselves
/// confused with probability `label_confusion` (annotators pick synonyms /
/// adjacent intentions).
HumanAnnotation simulate_annotation(const Document& doc,
                                    const Segmentation& truth,
                                    const std::vector<int>& true_labels,
                                    int num_label_kinds,
                                    const AnnotatorNoise& noise, Rng& rng,
                                    double label_confusion = 0.1);

/// Convenience: `count` independent annotators over the same post.
std::vector<HumanAnnotation> simulate_annotators(
    const Document& doc, const Segmentation& truth,
    const std::vector<int>& true_labels, int num_label_kinds, size_t count,
    const AnnotatorNoise& noise, Rng& rng, double label_confusion = 0.1);

}  // namespace ibseg

#endif  // IBSEG_EVAL_ANNOTATOR_SIM_H_
