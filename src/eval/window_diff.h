#ifndef IBSEG_EVAL_WINDOW_DIFF_H_
#define IBSEG_EVAL_WINDOW_DIFF_H_

#include <vector>

#include "seg/segmentation.h"

namespace ibseg {

/// WindowDiff (Pevzner & Hearst 2002): slides a window of `window` units
/// over the document and counts positions where the number of reference
/// borders inside the window differs from the number of hypothesis borders.
/// In [0, 1]; 0 iff the segmentations agree within every window.
/// `window` <= 0 selects the standard half-mean-segment-length of the
/// reference.
double window_diff(const Segmentation& reference, const Segmentation& hypothesis,
                   int window = 0);

/// Pk (Beeferman et al. 1999): probability that two units `window` apart
/// are classified differently (same/different segment) by reference and
/// hypothesis. Reported for completeness alongside WindowDiff.
double pk_metric(const Segmentation& reference, const Segmentation& hypothesis,
                 int window = 0);

/// multWinDiff (Kazantseva & Szpakowicz 2012, as used by the paper for all
/// segmentation-quality comparisons): averages WindowDiff against each of
/// several reference annotations, with the window set to half the average
/// reference segment length across annotations.
double mult_win_diff(const std::vector<Segmentation>& references,
                     const Segmentation& hypothesis);

}  // namespace ibseg

#endif  // IBSEG_EVAL_WINDOW_DIFF_H_
