file(REMOVE_RECURSE
  "../bench/table4_precision"
  "../bench/table4_precision.pdb"
  "CMakeFiles/table4_precision.dir/table4_precision.cc.o"
  "CMakeFiles/table4_precision.dir/table4_precision.cc.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/table4_precision.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
