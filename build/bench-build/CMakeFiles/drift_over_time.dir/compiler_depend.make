# Empty compiler generated dependencies file for drift_over_time.
# This may be replaced when dependencies are built.
