file(REMOVE_RECURSE
  "../bench/drift_over_time"
  "../bench/drift_over_time.pdb"
  "CMakeFiles/drift_over_time.dir/drift_over_time.cc.o"
  "CMakeFiles/drift_over_time.dir/drift_over_time.cc.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/drift_over_time.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
