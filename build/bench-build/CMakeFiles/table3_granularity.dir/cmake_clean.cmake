file(REMOVE_RECURSE
  "../bench/table3_granularity"
  "../bench/table3_granularity.pdb"
  "CMakeFiles/table3_granularity.dir/table3_granularity.cc.o"
  "CMakeFiles/table3_granularity.dir/table3_granularity.cc.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/table3_granularity.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
