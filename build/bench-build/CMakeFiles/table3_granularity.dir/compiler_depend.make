# Empty compiler generated dependencies file for table3_granularity.
# This may be replaced when dependencies are built.
