file(REMOVE_RECURSE
  "../bench/ablation_design"
  "../bench/ablation_design.pdb"
  "CMakeFiles/ablation_design.dir/ablation_design.cc.o"
  "CMakeFiles/ablation_design.dir/ablation_design.cc.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ablation_design.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
