# Empty dependencies file for noise_sensitivity.
# This may be replaced when dependencies are built.
