file(REMOVE_RECURSE
  "../bench/noise_sensitivity"
  "../bench/noise_sensitivity.pdb"
  "CMakeFiles/noise_sensitivity.dir/noise_sensitivity.cc.o"
  "CMakeFiles/noise_sensitivity.dir/noise_sensitivity.cc.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/noise_sensitivity.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
