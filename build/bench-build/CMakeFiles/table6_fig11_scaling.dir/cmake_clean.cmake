file(REMOVE_RECURSE
  "../bench/table6_fig11_scaling"
  "../bench/table6_fig11_scaling.pdb"
  "CMakeFiles/table6_fig11_scaling.dir/table6_fig11_scaling.cc.o"
  "CMakeFiles/table6_fig11_scaling.dir/table6_fig11_scaling.cc.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/table6_fig11_scaling.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
