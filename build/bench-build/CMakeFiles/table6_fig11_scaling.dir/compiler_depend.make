# Empty compiler generated dependencies file for table6_fig11_scaling.
# This may be replaced when dependencies are built.
