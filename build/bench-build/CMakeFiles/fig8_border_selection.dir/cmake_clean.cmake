file(REMOVE_RECURSE
  "../bench/fig8_border_selection"
  "../bench/fig8_border_selection.pdb"
  "CMakeFiles/fig8_border_selection.dir/fig8_border_selection.cc.o"
  "CMakeFiles/fig8_border_selection.dir/fig8_border_selection.cc.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig8_border_selection.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
