# Empty dependencies file for fig7_labels.
# This may be replaced when dependencies are built.
