file(REMOVE_RECURSE
  "../bench/fig7_labels"
  "../bench/fig7_labels.pdb"
  "CMakeFiles/fig7_labels.dir/fig7_labels.cc.o"
  "CMakeFiles/fig7_labels.dir/fig7_labels.cc.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig7_labels.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
