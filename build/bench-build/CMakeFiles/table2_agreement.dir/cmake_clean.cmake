file(REMOVE_RECURSE
  "../bench/table2_agreement"
  "../bench/table2_agreement.pdb"
  "CMakeFiles/table2_agreement.dir/table2_agreement.cc.o"
  "CMakeFiles/table2_agreement.dir/table2_agreement.cc.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/table2_agreement.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
