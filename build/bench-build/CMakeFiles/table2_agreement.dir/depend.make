# Empty dependencies file for table2_agreement.
# This may be replaced when dependencies are built.
