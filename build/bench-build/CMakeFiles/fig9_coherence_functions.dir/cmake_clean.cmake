file(REMOVE_RECURSE
  "../bench/fig9_coherence_functions"
  "../bench/fig9_coherence_functions.pdb"
  "CMakeFiles/fig9_coherence_functions.dir/fig9_coherence_functions.cc.o"
  "CMakeFiles/fig9_coherence_functions.dir/fig9_coherence_functions.cc.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig9_coherence_functions.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
