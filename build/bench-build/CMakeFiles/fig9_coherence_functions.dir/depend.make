# Empty dependencies file for fig9_coherence_functions.
# This may be replaced when dependencies are built.
