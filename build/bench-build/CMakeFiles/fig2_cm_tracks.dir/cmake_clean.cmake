file(REMOVE_RECURSE
  "../bench/fig2_cm_tracks"
  "../bench/fig2_cm_tracks.pdb"
  "CMakeFiles/fig2_cm_tracks.dir/fig2_cm_tracks.cc.o"
  "CMakeFiles/fig2_cm_tracks.dir/fig2_cm_tracks.cc.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig2_cm_tracks.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
