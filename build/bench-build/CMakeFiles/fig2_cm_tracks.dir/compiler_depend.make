# Empty compiler generated dependencies file for fig2_cm_tracks.
# This may be replaced when dependencies are built.
