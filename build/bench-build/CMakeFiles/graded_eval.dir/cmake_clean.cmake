file(REMOVE_RECURSE
  "../bench/graded_eval"
  "../bench/graded_eval.pdb"
  "CMakeFiles/graded_eval.dir/graded_eval.cc.o"
  "CMakeFiles/graded_eval.dir/graded_eval.cc.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/graded_eval.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
