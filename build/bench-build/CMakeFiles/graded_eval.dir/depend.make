# Empty dependencies file for graded_eval.
# This may be replaced when dependencies are built.
