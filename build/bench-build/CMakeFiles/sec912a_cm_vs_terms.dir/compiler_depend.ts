# CMAKE generated file: DO NOT EDIT!
# Timestamp file for compiler generated dependencies management for sec912a_cm_vs_terms.
