file(REMOVE_RECURSE
  "../bench/sec912a_cm_vs_terms"
  "../bench/sec912a_cm_vs_terms.pdb"
  "CMakeFiles/sec912a_cm_vs_terms.dir/sec912a_cm_vs_terms.cc.o"
  "CMakeFiles/sec912a_cm_vs_terms.dir/sec912a_cm_vs_terms.cc.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/sec912a_cm_vs_terms.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
