# Empty compiler generated dependencies file for sec912a_cm_vs_terms.
# This may be replaced when dependencies are built.
