file(REMOVE_RECURSE
  "CMakeFiles/travel_reviews.dir/travel_reviews.cpp.o"
  "CMakeFiles/travel_reviews.dir/travel_reviews.cpp.o.d"
  "travel_reviews"
  "travel_reviews.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/travel_reviews.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
