# Empty compiler generated dependencies file for travel_reviews.
# This may be replaced when dependencies are built.
