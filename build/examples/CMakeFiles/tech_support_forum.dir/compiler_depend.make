# Empty compiler generated dependencies file for tech_support_forum.
# This may be replaced when dependencies are built.
