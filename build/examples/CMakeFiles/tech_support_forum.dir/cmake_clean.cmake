file(REMOVE_RECURSE
  "CMakeFiles/tech_support_forum.dir/tech_support_forum.cpp.o"
  "CMakeFiles/tech_support_forum.dir/tech_support_forum.cpp.o.d"
  "tech_support_forum"
  "tech_support_forum.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/tech_support_forum.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
