
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/examples/ibseg_cli.cpp" "examples/CMakeFiles/ibseg_cli.dir/ibseg_cli.cpp.o" "gcc" "examples/CMakeFiles/ibseg_cli.dir/ibseg_cli.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/core/CMakeFiles/ibseg_core.dir/DependInfo.cmake"
  "/root/repo/build/src/storage/CMakeFiles/ibseg_storage.dir/DependInfo.cmake"
  "/root/repo/build/src/datagen/CMakeFiles/ibseg_datagen.dir/DependInfo.cmake"
  "/root/repo/build/src/eval/CMakeFiles/ibseg_eval.dir/DependInfo.cmake"
  "/root/repo/build/src/topic/CMakeFiles/ibseg_topic.dir/DependInfo.cmake"
  "/root/repo/build/src/index/CMakeFiles/ibseg_index.dir/DependInfo.cmake"
  "/root/repo/build/src/cluster/CMakeFiles/ibseg_cluster.dir/DependInfo.cmake"
  "/root/repo/build/src/seg/CMakeFiles/ibseg_seg.dir/DependInfo.cmake"
  "/root/repo/build/src/nlp/CMakeFiles/ibseg_nlp.dir/DependInfo.cmake"
  "/root/repo/build/src/text/CMakeFiles/ibseg_text.dir/DependInfo.cmake"
  "/root/repo/build/src/util/CMakeFiles/ibseg_util.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
