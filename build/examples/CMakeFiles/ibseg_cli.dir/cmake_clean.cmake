file(REMOVE_RECURSE
  "CMakeFiles/ibseg_cli.dir/ibseg_cli.cpp.o"
  "CMakeFiles/ibseg_cli.dir/ibseg_cli.cpp.o.d"
  "ibseg_cli"
  "ibseg_cli.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ibseg_cli.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
