# Empty dependencies file for ibseg_cli.
# This may be replaced when dependencies are built.
