file(REMOVE_RECURSE
  "CMakeFiles/segmentation_explorer.dir/segmentation_explorer.cpp.o"
  "CMakeFiles/segmentation_explorer.dir/segmentation_explorer.cpp.o.d"
  "segmentation_explorer"
  "segmentation_explorer.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/segmentation_explorer.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
