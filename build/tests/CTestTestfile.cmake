# CMake generated Testfile for 
# Source directory: /root/repo/tests
# Build directory: /root/repo/build/tests
# 
# This file includes the relevant testing commands required for 
# testing this directory and lists subdirectories to be tested as well.
include("/root/repo/build/tests/smoke_test[1]_include.cmake")
include("/root/repo/build/tests/util_test[1]_include.cmake")
include("/root/repo/build/tests/text_test[1]_include.cmake")
include("/root/repo/build/tests/nlp_test[1]_include.cmake")
include("/root/repo/build/tests/seg_test[1]_include.cmake")
include("/root/repo/build/tests/cluster_test[1]_include.cmake")
include("/root/repo/build/tests/index_test[1]_include.cmake")
include("/root/repo/build/tests/topic_test[1]_include.cmake")
include("/root/repo/build/tests/eval_test[1]_include.cmake")
include("/root/repo/build/tests/datagen_test[1]_include.cmake")
include("/root/repo/build/tests/core_test[1]_include.cmake")
include("/root/repo/build/tests/property_test[1]_include.cmake")
include("/root/repo/build/tests/storage_test[1]_include.cmake")
include("/root/repo/build/tests/extensions_test[1]_include.cmake")
include("/root/repo/build/tests/incremental_test[1]_include.cmake")
include("/root/repo/build/tests/robustness_test[1]_include.cmake")
include("/root/repo/build/tests/formula_test[1]_include.cmake")
include("/root/repo/build/tests/collocations_test[1]_include.cmake")
include("/root/repo/build/tests/scoring_variants_test[1]_include.cmake")
include("/root/repo/build/tests/experiment_test[1]_include.cmake")
include("/root/repo/build/tests/additions_test[1]_include.cmake")
include("/root/repo/build/tests/depth_test[1]_include.cmake")
include("/root/repo/build/tests/metrics2_test[1]_include.cmake")
include("/root/repo/build/tests/segmenter_extras_test[1]_include.cmake")
include("/root/repo/build/tests/pipeline_online_test[1]_include.cmake")
