file(REMOVE_RECURSE
  "CMakeFiles/additions_test.dir/additions_test.cc.o"
  "CMakeFiles/additions_test.dir/additions_test.cc.o.d"
  "additions_test"
  "additions_test.pdb"
  "additions_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/additions_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
