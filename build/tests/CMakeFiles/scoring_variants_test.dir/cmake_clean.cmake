file(REMOVE_RECURSE
  "CMakeFiles/scoring_variants_test.dir/scoring_variants_test.cc.o"
  "CMakeFiles/scoring_variants_test.dir/scoring_variants_test.cc.o.d"
  "scoring_variants_test"
  "scoring_variants_test.pdb"
  "scoring_variants_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/scoring_variants_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
