# Empty dependencies file for seg_test.
# This may be replaced when dependencies are built.
