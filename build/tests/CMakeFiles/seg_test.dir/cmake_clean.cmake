file(REMOVE_RECURSE
  "CMakeFiles/seg_test.dir/seg_test.cc.o"
  "CMakeFiles/seg_test.dir/seg_test.cc.o.d"
  "seg_test"
  "seg_test.pdb"
  "seg_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/seg_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
