file(REMOVE_RECURSE
  "CMakeFiles/segmenter_extras_test.dir/segmenter_extras_test.cc.o"
  "CMakeFiles/segmenter_extras_test.dir/segmenter_extras_test.cc.o.d"
  "segmenter_extras_test"
  "segmenter_extras_test.pdb"
  "segmenter_extras_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/segmenter_extras_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
