# Empty dependencies file for segmenter_extras_test.
# This may be replaced when dependencies are built.
