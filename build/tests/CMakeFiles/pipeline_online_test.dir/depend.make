# Empty dependencies file for pipeline_online_test.
# This may be replaced when dependencies are built.
