file(REMOVE_RECURSE
  "CMakeFiles/pipeline_online_test.dir/pipeline_online_test.cc.o"
  "CMakeFiles/pipeline_online_test.dir/pipeline_online_test.cc.o.d"
  "pipeline_online_test"
  "pipeline_online_test.pdb"
  "pipeline_online_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/pipeline_online_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
