# Empty dependencies file for collocations_test.
# This may be replaced when dependencies are built.
