file(REMOVE_RECURSE
  "CMakeFiles/collocations_test.dir/collocations_test.cc.o"
  "CMakeFiles/collocations_test.dir/collocations_test.cc.o.d"
  "collocations_test"
  "collocations_test.pdb"
  "collocations_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/collocations_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
