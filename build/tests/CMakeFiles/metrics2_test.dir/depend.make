# Empty dependencies file for metrics2_test.
# This may be replaced when dependencies are built.
