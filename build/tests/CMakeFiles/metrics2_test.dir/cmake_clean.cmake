file(REMOVE_RECURSE
  "CMakeFiles/metrics2_test.dir/metrics2_test.cc.o"
  "CMakeFiles/metrics2_test.dir/metrics2_test.cc.o.d"
  "metrics2_test"
  "metrics2_test.pdb"
  "metrics2_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/metrics2_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
