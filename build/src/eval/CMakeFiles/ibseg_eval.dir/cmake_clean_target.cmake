file(REMOVE_RECURSE
  "libibseg_eval.a"
)
