
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/eval/agreement.cc" "src/eval/CMakeFiles/ibseg_eval.dir/agreement.cc.o" "gcc" "src/eval/CMakeFiles/ibseg_eval.dir/agreement.cc.o.d"
  "/root/repo/src/eval/annotator_sim.cc" "src/eval/CMakeFiles/ibseg_eval.dir/annotator_sim.cc.o" "gcc" "src/eval/CMakeFiles/ibseg_eval.dir/annotator_sim.cc.o.d"
  "/root/repo/src/eval/boundary_similarity.cc" "src/eval/CMakeFiles/ibseg_eval.dir/boundary_similarity.cc.o" "gcc" "src/eval/CMakeFiles/ibseg_eval.dir/boundary_similarity.cc.o.d"
  "/root/repo/src/eval/fleiss_kappa.cc" "src/eval/CMakeFiles/ibseg_eval.dir/fleiss_kappa.cc.o" "gcc" "src/eval/CMakeFiles/ibseg_eval.dir/fleiss_kappa.cc.o.d"
  "/root/repo/src/eval/ndcg.cc" "src/eval/CMakeFiles/ibseg_eval.dir/ndcg.cc.o" "gcc" "src/eval/CMakeFiles/ibseg_eval.dir/ndcg.cc.o.d"
  "/root/repo/src/eval/precision.cc" "src/eval/CMakeFiles/ibseg_eval.dir/precision.cc.o" "gcc" "src/eval/CMakeFiles/ibseg_eval.dir/precision.cc.o.d"
  "/root/repo/src/eval/window_diff.cc" "src/eval/CMakeFiles/ibseg_eval.dir/window_diff.cc.o" "gcc" "src/eval/CMakeFiles/ibseg_eval.dir/window_diff.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/seg/CMakeFiles/ibseg_seg.dir/DependInfo.cmake"
  "/root/repo/build/src/util/CMakeFiles/ibseg_util.dir/DependInfo.cmake"
  "/root/repo/build/src/nlp/CMakeFiles/ibseg_nlp.dir/DependInfo.cmake"
  "/root/repo/build/src/text/CMakeFiles/ibseg_text.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
