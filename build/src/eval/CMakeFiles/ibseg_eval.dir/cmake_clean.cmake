file(REMOVE_RECURSE
  "CMakeFiles/ibseg_eval.dir/agreement.cc.o"
  "CMakeFiles/ibseg_eval.dir/agreement.cc.o.d"
  "CMakeFiles/ibseg_eval.dir/annotator_sim.cc.o"
  "CMakeFiles/ibseg_eval.dir/annotator_sim.cc.o.d"
  "CMakeFiles/ibseg_eval.dir/boundary_similarity.cc.o"
  "CMakeFiles/ibseg_eval.dir/boundary_similarity.cc.o.d"
  "CMakeFiles/ibseg_eval.dir/fleiss_kappa.cc.o"
  "CMakeFiles/ibseg_eval.dir/fleiss_kappa.cc.o.d"
  "CMakeFiles/ibseg_eval.dir/ndcg.cc.o"
  "CMakeFiles/ibseg_eval.dir/ndcg.cc.o.d"
  "CMakeFiles/ibseg_eval.dir/precision.cc.o"
  "CMakeFiles/ibseg_eval.dir/precision.cc.o.d"
  "CMakeFiles/ibseg_eval.dir/window_diff.cc.o"
  "CMakeFiles/ibseg_eval.dir/window_diff.cc.o.d"
  "libibseg_eval.a"
  "libibseg_eval.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ibseg_eval.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
