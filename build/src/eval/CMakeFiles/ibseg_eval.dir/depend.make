# Empty dependencies file for ibseg_eval.
# This may be replaced when dependencies are built.
