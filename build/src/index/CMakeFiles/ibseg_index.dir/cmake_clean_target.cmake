file(REMOVE_RECURSE
  "libibseg_index.a"
)
