# Empty dependencies file for ibseg_index.
# This may be replaced when dependencies are built.
