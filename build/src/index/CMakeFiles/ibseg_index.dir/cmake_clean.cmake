file(REMOVE_RECURSE
  "CMakeFiles/ibseg_index.dir/fulltext_matcher.cc.o"
  "CMakeFiles/ibseg_index.dir/fulltext_matcher.cc.o.d"
  "CMakeFiles/ibseg_index.dir/intention_matcher.cc.o"
  "CMakeFiles/ibseg_index.dir/intention_matcher.cc.o.d"
  "CMakeFiles/ibseg_index.dir/inverted_index.cc.o"
  "CMakeFiles/ibseg_index.dir/inverted_index.cc.o.d"
  "CMakeFiles/ibseg_index.dir/scoring.cc.o"
  "CMakeFiles/ibseg_index.dir/scoring.cc.o.d"
  "libibseg_index.a"
  "libibseg_index.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ibseg_index.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
