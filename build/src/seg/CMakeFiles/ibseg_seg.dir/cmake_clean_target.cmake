file(REMOVE_RECURSE
  "libibseg_seg.a"
)
