
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/seg/border_strategies.cc" "src/seg/CMakeFiles/ibseg_seg.dir/border_strategies.cc.o" "gcc" "src/seg/CMakeFiles/ibseg_seg.dir/border_strategies.cc.o.d"
  "/root/repo/src/seg/c99.cc" "src/seg/CMakeFiles/ibseg_seg.dir/c99.cc.o" "gcc" "src/seg/CMakeFiles/ibseg_seg.dir/c99.cc.o.d"
  "/root/repo/src/seg/coherence.cc" "src/seg/CMakeFiles/ibseg_seg.dir/coherence.cc.o" "gcc" "src/seg/CMakeFiles/ibseg_seg.dir/coherence.cc.o.d"
  "/root/repo/src/seg/diversity.cc" "src/seg/CMakeFiles/ibseg_seg.dir/diversity.cc.o" "gcc" "src/seg/CMakeFiles/ibseg_seg.dir/diversity.cc.o.d"
  "/root/repo/src/seg/document.cc" "src/seg/CMakeFiles/ibseg_seg.dir/document.cc.o" "gcc" "src/seg/CMakeFiles/ibseg_seg.dir/document.cc.o.d"
  "/root/repo/src/seg/feature_selection.cc" "src/seg/CMakeFiles/ibseg_seg.dir/feature_selection.cc.o" "gcc" "src/seg/CMakeFiles/ibseg_seg.dir/feature_selection.cc.o.d"
  "/root/repo/src/seg/segmentation.cc" "src/seg/CMakeFiles/ibseg_seg.dir/segmentation.cc.o" "gcc" "src/seg/CMakeFiles/ibseg_seg.dir/segmentation.cc.o.d"
  "/root/repo/src/seg/segmenter.cc" "src/seg/CMakeFiles/ibseg_seg.dir/segmenter.cc.o" "gcc" "src/seg/CMakeFiles/ibseg_seg.dir/segmenter.cc.o.d"
  "/root/repo/src/seg/texttiling.cc" "src/seg/CMakeFiles/ibseg_seg.dir/texttiling.cc.o" "gcc" "src/seg/CMakeFiles/ibseg_seg.dir/texttiling.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/nlp/CMakeFiles/ibseg_nlp.dir/DependInfo.cmake"
  "/root/repo/build/src/text/CMakeFiles/ibseg_text.dir/DependInfo.cmake"
  "/root/repo/build/src/util/CMakeFiles/ibseg_util.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
