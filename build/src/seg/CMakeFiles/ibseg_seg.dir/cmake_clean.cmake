file(REMOVE_RECURSE
  "CMakeFiles/ibseg_seg.dir/border_strategies.cc.o"
  "CMakeFiles/ibseg_seg.dir/border_strategies.cc.o.d"
  "CMakeFiles/ibseg_seg.dir/c99.cc.o"
  "CMakeFiles/ibseg_seg.dir/c99.cc.o.d"
  "CMakeFiles/ibseg_seg.dir/coherence.cc.o"
  "CMakeFiles/ibseg_seg.dir/coherence.cc.o.d"
  "CMakeFiles/ibseg_seg.dir/diversity.cc.o"
  "CMakeFiles/ibseg_seg.dir/diversity.cc.o.d"
  "CMakeFiles/ibseg_seg.dir/document.cc.o"
  "CMakeFiles/ibseg_seg.dir/document.cc.o.d"
  "CMakeFiles/ibseg_seg.dir/feature_selection.cc.o"
  "CMakeFiles/ibseg_seg.dir/feature_selection.cc.o.d"
  "CMakeFiles/ibseg_seg.dir/segmentation.cc.o"
  "CMakeFiles/ibseg_seg.dir/segmentation.cc.o.d"
  "CMakeFiles/ibseg_seg.dir/segmenter.cc.o"
  "CMakeFiles/ibseg_seg.dir/segmenter.cc.o.d"
  "CMakeFiles/ibseg_seg.dir/texttiling.cc.o"
  "CMakeFiles/ibseg_seg.dir/texttiling.cc.o.d"
  "libibseg_seg.a"
  "libibseg_seg.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ibseg_seg.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
