# Empty compiler generated dependencies file for ibseg_seg.
# This may be replaced when dependencies are built.
