file(REMOVE_RECURSE
  "CMakeFiles/ibseg_topic.dir/lda.cc.o"
  "CMakeFiles/ibseg_topic.dir/lda.cc.o.d"
  "CMakeFiles/ibseg_topic.dir/lda_matcher.cc.o"
  "CMakeFiles/ibseg_topic.dir/lda_matcher.cc.o.d"
  "libibseg_topic.a"
  "libibseg_topic.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ibseg_topic.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
