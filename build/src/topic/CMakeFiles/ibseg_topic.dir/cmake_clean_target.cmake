file(REMOVE_RECURSE
  "libibseg_topic.a"
)
