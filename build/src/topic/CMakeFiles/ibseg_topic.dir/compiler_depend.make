# Empty compiler generated dependencies file for ibseg_topic.
# This may be replaced when dependencies are built.
