file(REMOVE_RECURSE
  "CMakeFiles/ibseg_datagen.dir/domain_profiles.cc.o"
  "CMakeFiles/ibseg_datagen.dir/domain_profiles.cc.o.d"
  "CMakeFiles/ibseg_datagen.dir/post_generator.cc.o"
  "CMakeFiles/ibseg_datagen.dir/post_generator.cc.o.d"
  "CMakeFiles/ibseg_datagen.dir/template_engine.cc.o"
  "CMakeFiles/ibseg_datagen.dir/template_engine.cc.o.d"
  "libibseg_datagen.a"
  "libibseg_datagen.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ibseg_datagen.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
