file(REMOVE_RECURSE
  "libibseg_datagen.a"
)
