# Empty dependencies file for ibseg_datagen.
# This may be replaced when dependencies are built.
