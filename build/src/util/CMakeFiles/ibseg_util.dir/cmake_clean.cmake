file(REMOVE_RECURSE
  "CMakeFiles/ibseg_util.dir/rng.cc.o"
  "CMakeFiles/ibseg_util.dir/rng.cc.o.d"
  "CMakeFiles/ibseg_util.dir/strings.cc.o"
  "CMakeFiles/ibseg_util.dir/strings.cc.o.d"
  "CMakeFiles/ibseg_util.dir/table_printer.cc.o"
  "CMakeFiles/ibseg_util.dir/table_printer.cc.o.d"
  "CMakeFiles/ibseg_util.dir/thread_pool.cc.o"
  "CMakeFiles/ibseg_util.dir/thread_pool.cc.o.d"
  "CMakeFiles/ibseg_util.dir/vector_math.cc.o"
  "CMakeFiles/ibseg_util.dir/vector_math.cc.o.d"
  "libibseg_util.a"
  "libibseg_util.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ibseg_util.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
