file(REMOVE_RECURSE
  "libibseg_util.a"
)
