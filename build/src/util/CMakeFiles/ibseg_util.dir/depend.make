# Empty dependencies file for ibseg_util.
# This may be replaced when dependencies are built.
