
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/nlp/cm_annotator.cc" "src/nlp/CMakeFiles/ibseg_nlp.dir/cm_annotator.cc.o" "gcc" "src/nlp/CMakeFiles/ibseg_nlp.dir/cm_annotator.cc.o.d"
  "/root/repo/src/nlp/cm_profile.cc" "src/nlp/CMakeFiles/ibseg_nlp.dir/cm_profile.cc.o" "gcc" "src/nlp/CMakeFiles/ibseg_nlp.dir/cm_profile.cc.o.d"
  "/root/repo/src/nlp/lexicon.cc" "src/nlp/CMakeFiles/ibseg_nlp.dir/lexicon.cc.o" "gcc" "src/nlp/CMakeFiles/ibseg_nlp.dir/lexicon.cc.o.d"
  "/root/repo/src/nlp/pos_tagger.cc" "src/nlp/CMakeFiles/ibseg_nlp.dir/pos_tagger.cc.o" "gcc" "src/nlp/CMakeFiles/ibseg_nlp.dir/pos_tagger.cc.o.d"
  "/root/repo/src/nlp/verb_group.cc" "src/nlp/CMakeFiles/ibseg_nlp.dir/verb_group.cc.o" "gcc" "src/nlp/CMakeFiles/ibseg_nlp.dir/verb_group.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/text/CMakeFiles/ibseg_text.dir/DependInfo.cmake"
  "/root/repo/build/src/util/CMakeFiles/ibseg_util.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
