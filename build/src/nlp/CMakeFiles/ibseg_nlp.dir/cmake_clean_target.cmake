file(REMOVE_RECURSE
  "libibseg_nlp.a"
)
