# Empty compiler generated dependencies file for ibseg_nlp.
# This may be replaced when dependencies are built.
