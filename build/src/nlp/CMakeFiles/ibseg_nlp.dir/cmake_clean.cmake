file(REMOVE_RECURSE
  "CMakeFiles/ibseg_nlp.dir/cm_annotator.cc.o"
  "CMakeFiles/ibseg_nlp.dir/cm_annotator.cc.o.d"
  "CMakeFiles/ibseg_nlp.dir/cm_profile.cc.o"
  "CMakeFiles/ibseg_nlp.dir/cm_profile.cc.o.d"
  "CMakeFiles/ibseg_nlp.dir/lexicon.cc.o"
  "CMakeFiles/ibseg_nlp.dir/lexicon.cc.o.d"
  "CMakeFiles/ibseg_nlp.dir/pos_tagger.cc.o"
  "CMakeFiles/ibseg_nlp.dir/pos_tagger.cc.o.d"
  "CMakeFiles/ibseg_nlp.dir/verb_group.cc.o"
  "CMakeFiles/ibseg_nlp.dir/verb_group.cc.o.d"
  "libibseg_nlp.a"
  "libibseg_nlp.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ibseg_nlp.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
