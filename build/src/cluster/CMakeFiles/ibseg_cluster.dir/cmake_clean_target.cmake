file(REMOVE_RECURSE
  "libibseg_cluster.a"
)
