# Empty compiler generated dependencies file for ibseg_cluster.
# This may be replaced when dependencies are built.
