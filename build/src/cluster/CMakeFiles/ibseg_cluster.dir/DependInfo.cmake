
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/cluster/dbscan.cc" "src/cluster/CMakeFiles/ibseg_cluster.dir/dbscan.cc.o" "gcc" "src/cluster/CMakeFiles/ibseg_cluster.dir/dbscan.cc.o.d"
  "/root/repo/src/cluster/feature_vector.cc" "src/cluster/CMakeFiles/ibseg_cluster.dir/feature_vector.cc.o" "gcc" "src/cluster/CMakeFiles/ibseg_cluster.dir/feature_vector.cc.o.d"
  "/root/repo/src/cluster/intention_clusters.cc" "src/cluster/CMakeFiles/ibseg_cluster.dir/intention_clusters.cc.o" "gcc" "src/cluster/CMakeFiles/ibseg_cluster.dir/intention_clusters.cc.o.d"
  "/root/repo/src/cluster/kmeans.cc" "src/cluster/CMakeFiles/ibseg_cluster.dir/kmeans.cc.o" "gcc" "src/cluster/CMakeFiles/ibseg_cluster.dir/kmeans.cc.o.d"
  "/root/repo/src/cluster/optics.cc" "src/cluster/CMakeFiles/ibseg_cluster.dir/optics.cc.o" "gcc" "src/cluster/CMakeFiles/ibseg_cluster.dir/optics.cc.o.d"
  "/root/repo/src/cluster/vp_tree.cc" "src/cluster/CMakeFiles/ibseg_cluster.dir/vp_tree.cc.o" "gcc" "src/cluster/CMakeFiles/ibseg_cluster.dir/vp_tree.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/seg/CMakeFiles/ibseg_seg.dir/DependInfo.cmake"
  "/root/repo/build/src/util/CMakeFiles/ibseg_util.dir/DependInfo.cmake"
  "/root/repo/build/src/nlp/CMakeFiles/ibseg_nlp.dir/DependInfo.cmake"
  "/root/repo/build/src/text/CMakeFiles/ibseg_text.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
