file(REMOVE_RECURSE
  "CMakeFiles/ibseg_cluster.dir/dbscan.cc.o"
  "CMakeFiles/ibseg_cluster.dir/dbscan.cc.o.d"
  "CMakeFiles/ibseg_cluster.dir/feature_vector.cc.o"
  "CMakeFiles/ibseg_cluster.dir/feature_vector.cc.o.d"
  "CMakeFiles/ibseg_cluster.dir/intention_clusters.cc.o"
  "CMakeFiles/ibseg_cluster.dir/intention_clusters.cc.o.d"
  "CMakeFiles/ibseg_cluster.dir/kmeans.cc.o"
  "CMakeFiles/ibseg_cluster.dir/kmeans.cc.o.d"
  "CMakeFiles/ibseg_cluster.dir/optics.cc.o"
  "CMakeFiles/ibseg_cluster.dir/optics.cc.o.d"
  "CMakeFiles/ibseg_cluster.dir/vp_tree.cc.o"
  "CMakeFiles/ibseg_cluster.dir/vp_tree.cc.o.d"
  "libibseg_cluster.a"
  "libibseg_cluster.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ibseg_cluster.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
