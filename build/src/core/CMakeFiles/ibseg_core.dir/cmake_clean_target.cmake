file(REMOVE_RECURSE
  "libibseg_core.a"
)
