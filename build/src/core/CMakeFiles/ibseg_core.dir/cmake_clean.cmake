file(REMOVE_RECURSE
  "CMakeFiles/ibseg_core.dir/experiment.cc.o"
  "CMakeFiles/ibseg_core.dir/experiment.cc.o.d"
  "CMakeFiles/ibseg_core.dir/methods.cc.o"
  "CMakeFiles/ibseg_core.dir/methods.cc.o.d"
  "CMakeFiles/ibseg_core.dir/pipeline.cc.o"
  "CMakeFiles/ibseg_core.dir/pipeline.cc.o.d"
  "libibseg_core.a"
  "libibseg_core.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ibseg_core.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
