# Empty dependencies file for ibseg_core.
# This may be replaced when dependencies are built.
