file(REMOVE_RECURSE
  "libibseg_text.a"
)
