file(REMOVE_RECURSE
  "CMakeFiles/ibseg_text.dir/collocations.cc.o"
  "CMakeFiles/ibseg_text.dir/collocations.cc.o.d"
  "CMakeFiles/ibseg_text.dir/html_cleaner.cc.o"
  "CMakeFiles/ibseg_text.dir/html_cleaner.cc.o.d"
  "CMakeFiles/ibseg_text.dir/normalizer.cc.o"
  "CMakeFiles/ibseg_text.dir/normalizer.cc.o.d"
  "CMakeFiles/ibseg_text.dir/porter_stemmer.cc.o"
  "CMakeFiles/ibseg_text.dir/porter_stemmer.cc.o.d"
  "CMakeFiles/ibseg_text.dir/sentence_splitter.cc.o"
  "CMakeFiles/ibseg_text.dir/sentence_splitter.cc.o.d"
  "CMakeFiles/ibseg_text.dir/stopwords.cc.o"
  "CMakeFiles/ibseg_text.dir/stopwords.cc.o.d"
  "CMakeFiles/ibseg_text.dir/term_vector.cc.o"
  "CMakeFiles/ibseg_text.dir/term_vector.cc.o.d"
  "CMakeFiles/ibseg_text.dir/tokenizer.cc.o"
  "CMakeFiles/ibseg_text.dir/tokenizer.cc.o.d"
  "CMakeFiles/ibseg_text.dir/vocabulary.cc.o"
  "CMakeFiles/ibseg_text.dir/vocabulary.cc.o.d"
  "libibseg_text.a"
  "libibseg_text.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ibseg_text.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
