# Empty dependencies file for ibseg_text.
# This may be replaced when dependencies are built.
