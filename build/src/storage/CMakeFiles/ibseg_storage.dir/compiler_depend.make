# Empty compiler generated dependencies file for ibseg_storage.
# This may be replaced when dependencies are built.
