
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/storage/corpus_io.cc" "src/storage/CMakeFiles/ibseg_storage.dir/corpus_io.cc.o" "gcc" "src/storage/CMakeFiles/ibseg_storage.dir/corpus_io.cc.o.d"
  "/root/repo/src/storage/snapshot.cc" "src/storage/CMakeFiles/ibseg_storage.dir/snapshot.cc.o" "gcc" "src/storage/CMakeFiles/ibseg_storage.dir/snapshot.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/datagen/CMakeFiles/ibseg_datagen.dir/DependInfo.cmake"
  "/root/repo/build/src/cluster/CMakeFiles/ibseg_cluster.dir/DependInfo.cmake"
  "/root/repo/build/src/util/CMakeFiles/ibseg_util.dir/DependInfo.cmake"
  "/root/repo/build/src/seg/CMakeFiles/ibseg_seg.dir/DependInfo.cmake"
  "/root/repo/build/src/nlp/CMakeFiles/ibseg_nlp.dir/DependInfo.cmake"
  "/root/repo/build/src/text/CMakeFiles/ibseg_text.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
