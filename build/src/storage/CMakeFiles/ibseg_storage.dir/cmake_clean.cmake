file(REMOVE_RECURSE
  "CMakeFiles/ibseg_storage.dir/corpus_io.cc.o"
  "CMakeFiles/ibseg_storage.dir/corpus_io.cc.o.d"
  "CMakeFiles/ibseg_storage.dir/snapshot.cc.o"
  "CMakeFiles/ibseg_storage.dir/snapshot.cc.o.d"
  "libibseg_storage.a"
  "libibseg_storage.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ibseg_storage.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
