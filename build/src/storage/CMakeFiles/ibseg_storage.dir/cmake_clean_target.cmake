file(REMOVE_RECURSE
  "libibseg_storage.a"
)
