// Quickstart: the whole public API in ~60 lines.
//
//   1. Analyze a post (tokens, POS tags, sentences, CM features).
//   2. Segment it by intention shifts.
//   3. Build the related-post pipeline over a small corpus.
//   4. Ask for the top-5 related posts.
//
// Build & run:  ./build/examples/quickstart

#include <cstdio>

#include "core/pipeline.h"
#include "datagen/post_generator.h"

using namespace ibseg;

int main() {
  // --- 1+2: analyze and segment a single post --------------------------
  const char* post =
      "I have a small laptop with a printer and a scanner attached. "
      "It is an old model but it worked fine for years. "
      "Yesterday the printer stopped and the tray blinked twice. "
      "I replaced the cartridge and restarted the machine. "
      "Do you know whether a new tray would fix the problem? "
      "Should I replace the printer instead?";
  Document doc = Document::analyze(0, post);
  Segmentation seg = cm_tiling_segment(doc);
  std::printf("Post has %zu sentences; intention segmentation found %zu "
              "segments:\n",
              doc.num_units(), seg.num_segments());
  int idx = 1;
  for (auto [begin, end] : seg.segments()) {
    std::string_view text = doc.range_text(begin, end);
    std::printf("  segment %d: %.*s\n", idx++, static_cast<int>(text.size()),
                text.data());
  }

  // --- 3: build the pipeline over a corpus -----------------------------
  // (Synthetic tech-support corpus; swap in your own `Document`s.)
  GeneratorOptions gen;
  gen.domain = ForumDomain::kTechSupport;
  gen.num_posts = 200;
  gen.seed = 1;
  SyntheticCorpus corpus = generate_corpus(gen);
  RelatedPostPipeline pipeline =
      RelatedPostPipeline::build(analyze_corpus(corpus));
  std::printf("\nPipeline: %d intention clusters over %zu posts "
              "(segmentation %.0f ms, grouping %.0f ms)\n",
              pipeline.clustering().num_clusters(), corpus.posts.size(),
              pipeline.timings().segmentation_total_sec * 1e3,
              pipeline.timings().grouping_sec * 1e3);

  // --- 4: query --------------------------------------------------------
  DocId query = 0;
  std::printf("\nTop-5 posts related to post %u (scenario %d):\n", query,
              corpus.posts[query].scenario_id);
  for (const ScoredDoc& sd : pipeline.find_related(query, 5)) {
    std::printf("  post %3u  score %.3f  scenario %d%s\n", sd.doc, sd.score,
                corpus.posts[sd.doc].scenario_id,
                corpus.posts[sd.doc].scenario_id ==
                        corpus.posts[query].scenario_id
                    ? "  <-- same problem"
                    : "");
  }
  return 0;
}
