// ibseg_cli — command-line front end for the library.
//
//   ibseg_cli generate <tech|travel|prog> <num-posts> <corpus-file>
//       Synthesize a corpus (with ground truth) and save it.
//
//   ibseg_cli segment
//       Read one post from stdin, print its intention segments.
//
//   ibseg_cli snapshot <corpus-file> <snapshot-file>
//       Run the offline phase (segment + cluster) and persist it.
//
//   ibseg_cli query <corpus-file> <doc-id> [k] [snapshot-file]
//       Top-k related posts for a post of the corpus. With a snapshot the
//       offline phase is reloaded instead of recomputed.
//
//   ibseg_cli ask <corpus-file> [k]
//       Top-k related posts for a NEW post read from stdin (external
//       query: nothing is ingested).
//
// Corpus files are either the ibseg corpus format (from `generate`) or a
// plain text file with one post per line.

#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <fstream>
#include <iostream>
#include <sstream>
#include <string>

#include "core/pipeline.h"
#include "storage/corpus_io.h"
#include "storage/snapshot.h"

using namespace ibseg;

namespace {

int usage() {
  std::fprintf(stderr,
               "usage:\n"
               "  ibseg_cli generate <tech|travel|prog|health> <num-posts> <file>\n"
               "  ibseg_cli segment            (post on stdin)\n"
               "  ibseg_cli snapshot <corpus-file> <snapshot-file>\n"
               "  ibseg_cli query <corpus-file> <doc-id> [k] [snapshot]\n"
               "  ibseg_cli ask <corpus-file> [k]     (post on stdin)\n");
  return 2;
}

// Loads either an ibseg corpus file or a plain one-post-per-line file.
std::vector<Document> load_docs(const std::string& path,
                                SyntheticCorpus* corpus_out) {
  if (auto corpus = load_corpus_file(path)) {
    if (corpus_out != nullptr) *corpus_out = *corpus;
    return analyze_corpus(*corpus);
  }
  std::ifstream is(path);
  std::vector<Document> docs;
  if (!is) return docs;
  size_t id = 0;
  for (const std::string& text : load_plain_posts(is)) {
    docs.push_back(Document::analyze(static_cast<DocId>(id++), text));
  }
  return docs;
}

int cmd_generate(int argc, char** argv) {
  if (argc != 3) return usage();
  GeneratorOptions gen;
  if (std::strcmp(argv[0], "tech") == 0) {
    gen.domain = ForumDomain::kTechSupport;
  } else if (std::strcmp(argv[0], "travel") == 0) {
    gen.domain = ForumDomain::kTravel;
  } else if (std::strcmp(argv[0], "prog") == 0) {
    gen.domain = ForumDomain::kProgramming;
  } else if (std::strcmp(argv[0], "health") == 0) {
    gen.domain = ForumDomain::kHealth;
  } else {
    return usage();
  }
  gen.num_posts = std::strtoull(argv[1], nullptr, 10);
  if (gen.num_posts == 0) return usage();
  SyntheticCorpus corpus = generate_corpus(gen);
  if (!save_corpus_file(corpus, argv[2])) {
    std::fprintf(stderr, "error: cannot write %s\n", argv[2]);
    return 1;
  }
  std::printf("wrote %zu posts (%zu scenarios) to %s\n", corpus.posts.size(),
              corpus.num_scenarios, argv[2]);
  return 0;
}

int cmd_segment() {
  std::ostringstream ss;
  ss << std::cin.rdbuf();
  Document doc = Document::analyze(0, ss.str());
  if (doc.num_units() == 0) {
    std::fprintf(stderr, "error: empty post\n");
    return 1;
  }
  Segmentation seg = cm_tiling_segment(doc);
  std::printf("%zu sentences, %zu intention segments\n", doc.num_units(),
              seg.num_segments());
  int idx = 1;
  for (auto [b, e] : seg.segments()) {
    std::string_view text = doc.range_text(b, e);
    std::printf("[%d] %.*s\n", idx++, static_cast<int>(text.size()),
                text.data());
  }
  return 0;
}

int cmd_snapshot(int argc, char** argv) {
  if (argc != 2) return usage();
  std::vector<Document> docs = load_docs(argv[0], nullptr);
  if (docs.empty()) {
    std::fprintf(stderr, "error: cannot load corpus %s\n", argv[0]);
    return 1;
  }
  Segmenter segmenter = Segmenter::cm_tiling();
  Vocabulary vocab;
  std::vector<Segmentation> segs(docs.size());
  for (size_t d = 0; d < docs.size(); ++d) {
    segs[d] = segmenter.segment(docs[d], vocab);
  }
  IntentionClustering clustering = IntentionClustering::build(docs, segs);
  PipelineSnapshot snap = make_snapshot(segs, clustering);
  if (!save_snapshot_file(snap, argv[1])) {
    std::fprintf(stderr, "error: cannot write %s\n", argv[1]);
    return 1;
  }
  std::printf("offline phase done: %zu docs, %d intention clusters -> %s\n",
              docs.size(), clustering.num_clusters(), argv[1]);
  return 0;
}

int cmd_query(int argc, char** argv) {
  if (argc < 2 || argc > 4) return usage();
  SyntheticCorpus corpus;
  std::vector<Document> docs = load_docs(argv[0], &corpus);
  if (docs.empty()) {
    std::fprintf(stderr, "error: cannot load corpus %s\n", argv[0]);
    return 1;
  }
  DocId query = static_cast<DocId>(std::strtoul(argv[1], nullptr, 10));
  int k = argc >= 3 ? std::atoi(argv[2]) : 5;
  if (query >= docs.size() || k <= 0) return usage();

  std::unique_ptr<IntentionMatcher> matcher;
  Vocabulary vocab;
  if (argc == 4) {
    auto snap = load_snapshot_file(argv[3]);
    if (!snap || snap->segmentations.size() != docs.size()) {
      std::fprintf(stderr, "error: snapshot %s missing or inconsistent\n",
                   argv[3]);
      return 1;
    }
    IntentionClustering clustering = restore_clustering(docs, *snap);
    matcher = std::make_unique<IntentionMatcher>(
        IntentionMatcher::build(docs, clustering, vocab));
  } else {
    Segmenter segmenter = Segmenter::cm_tiling();
    Vocabulary scratch;
    std::vector<Segmentation> segs(docs.size());
    for (size_t d = 0; d < docs.size(); ++d) {
      segs[d] = segmenter.segment(docs[d], scratch);
    }
    IntentionClustering clustering = IntentionClustering::build(docs, segs);
    matcher = std::make_unique<IntentionMatcher>(
        IntentionMatcher::build(docs, clustering, vocab));
  }

  std::printf("query %u: \"%.70s...\"\n", query, docs[query].text().c_str());
  for (const ScoredDoc& sd : matcher->find_related(query, k)) {
    std::printf("  %4u  %.3f  \"%.70s...\"", sd.doc, sd.score,
                docs[sd.doc].text().c_str());
    if (!corpus.posts.empty()) {
      std::printf("  [scenario %d%s]", corpus.posts[sd.doc].scenario_id,
                  corpus.posts[sd.doc].scenario_id ==
                          corpus.posts[query].scenario_id
                      ? " *"
                      : "");
    }
    std::printf("\n");
  }
  return 0;
}

int cmd_ask(int argc, char** argv) {
  if (argc < 1 || argc > 2) return usage();
  SyntheticCorpus corpus;
  std::vector<Document> docs = load_docs(argv[0], &corpus);
  if (docs.empty()) {
    std::fprintf(stderr, "error: cannot load corpus %s\n", argv[0]);
    return 1;
  }
  int k = argc >= 2 ? std::atoi(argv[1]) : 5;
  std::ostringstream ss;
  ss << std::cin.rdbuf();
  Document query = Document::analyze(1u << 30, ss.str());
  if (query.num_units() == 0) {
    std::fprintf(stderr, "error: empty post on stdin\n");
    return 1;
  }
  RelatedPostPipeline pipeline = RelatedPostPipeline::build(std::move(docs));
  auto related = pipeline.find_related_external(query, k);
  if (related.empty()) {
    std::printf("no related posts found\n");
    return 0;
  }
  for (const ScoredDoc& sd : related) {
    std::printf("  %4u  %.3f  \"%.70s...\"\n", sd.doc, sd.score,
                pipeline.docs()[sd.doc].text().c_str());
  }
  return 0;
}

}  // namespace

int main(int argc, char** argv) {
  if (argc < 2) return usage();
  const std::string cmd = argv[1];
  if (cmd == "generate") return cmd_generate(argc - 2, argv + 2);
  if (cmd == "segment") return cmd_segment();
  if (cmd == "snapshot") return cmd_snapshot(argc - 2, argv + 2);
  if (cmd == "query") return cmd_query(argc - 2, argv + 2);
  if (cmd == "ask") return cmd_ask(argc - 2, argv + 2);
  return usage();
}
