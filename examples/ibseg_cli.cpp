// ibseg_cli — command-line front end for the library.
//
//   ibseg_cli generate <tech|travel|prog> <num-posts> <corpus-file>
//       Synthesize a corpus (with ground truth) and save it.
//
//   ibseg_cli segment
//       Read one post from stdin, print its intention segments.
//
//   ibseg_cli snapshot <corpus-file> <snapshot-file>
//       Run the offline phase (segment + cluster) and persist it.
//
//   ibseg_cli query <corpus-file> <doc-id> [k] [snapshot-file]
//       Top-k related posts for a post of the corpus. With a snapshot the
//       offline phase is reloaded instead of recomputed.
//
//   ibseg_cli ask <corpus-file> [k]
//       Top-k related posts for a NEW post read from stdin (external
//       query: nothing is ingested).
//
// A leading `--metrics` (Prometheus text) or `--metrics=json` flag makes
// the process dump its metrics registry — query/ingest counters, latency
// and per-stage timing histograms, corpus gauges — after the command
// finishes:
//
//   ibseg_cli --metrics query posts.corpus 0 5
//
// Two more leading flags tune the query path (only `query` uses them):
// `--threads=N` fans per-intention scoring out over N worker threads
// (results are bit-identical to serial), and `--cache[=N]` enables the
// epoch-invalidated result cache with capacity N (default 1024) — combine
// with --metrics to see ibseg_query_cache_{hits,misses,evictions,size}:
//
//   ibseg_cli --metrics --cache=256 --threads=4 query posts.corpus 0 5
//
// Persistence flags (query command; see docs/ARCHITECTURE.md §5):
// `--save=PATH` writes the complete serving state as a binary snapshot v2
// after the command, `--restore=PATH` builds the serving pipeline from
// such a snapshot instead of recomputing the offline phase (the corpus
// file is then only consulted for scenario annotation), and `--wal=PATH`
// attaches the write-ahead ingest log — together the warm-restart loop:
//
//   ibseg_cli --save=state.snap query posts.corpus 0 5   # cold start, save
//   ibseg_cli --restore=state.snap --wal=ingest.wal query posts.corpus 0 5
//
// `--pruning=on|off` (default on) selects the MaxScore-pruned
// per-intention path or the exhaustive historic one; rankings and scores
// are bit-identical either way, so `off` is a baseline for benchmarking,
// not a different answer.
//
// `--shards=N` serves the query through N hash-partitioned shards behind
// the scatter-gather layer (core/sharded_serving.h) — results are
// bit-identical to unsharded serving at any N. With --shards, --save/
// --restore name a sharded state *directory* (per-shard snapshots + WALs,
// publication journal, manifest) instead of a single snapshot file:
//
//   ibseg_cli --shards=4 --save=state.d query posts.corpus 0 5
//   ibseg_cli --shards=4 --restore=state.d query posts.corpus 0 5
//
// `--connect=HOST:PORT` turns the CLI into a thin network client speaking
// the docs/PROTOCOL.md wire protocol against a running ibseg_server — no
// corpus file is needed, the server owns the state:
//
//   ibseg_cli --connect=127.0.0.1:7433 query <doc-id> [k]
//   ibseg_cli --connect=127.0.0.1:7433 ask [k]      (post on stdin)
//   ibseg_cli --connect=127.0.0.1:7433 add          (post on stdin)
//   ibseg_cli --connect=127.0.0.1:7433 ping | save | recluster | drain
//
// and `--metrics[=json]` with --connect fetches the *server's* metrics
// over the wire instead of dumping the local (empty) registry.
//
// Corpus files are either the ibseg corpus format (from `generate`) or a
// plain text file with one post per line.

#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <fstream>
#include <iostream>
#include <sstream>
#include <string>

#include "core/serving.h"
#include "core/sharded_serving.h"
#include "net/client.h"
#include "obs/metrics.h"
#include "storage/corpus_io.h"
#include "storage/snapshot.h"
#include "storage/snapshot_v2.h"

using namespace ibseg;

namespace {

// Leading-flag state for the query path (see usage()).
int g_query_threads = 0;      // --threads=N: parallel per-intention fan-out
size_t g_cache_capacity = 0;  // --cache[=N]: result-cache capacity, 0 = off
std::string g_save_path;      // --save=PATH: write snapshot v2 after query
std::string g_restore_path;   // --restore=PATH: warm-start from snapshot v2
std::string g_wal_path;       // --wal=PATH: attach the write-ahead ingest log
int g_num_shards = 1;         // --shards=N: hash-partitioned scatter-gather
bool g_pruning = true;        // --pruning=off: exhaustive per-intention path
std::string g_connect;        // --connect=HOST:PORT: thin network client
std::string g_tenant;         // --tenant=NAME: bind the connection (TENANT_OPEN)

int usage() {
  std::fprintf(stderr,
               "usage: ibseg_cli [--metrics[=json]] [--cache[=N]] "
               "[--threads=N]\n"
               "                 [--save=PATH] [--restore=PATH] [--wal=PATH] "
               "[--shards=N]\n"
               "                 [--pruning=on|off] <command> ...\n"
               "  ibseg_cli generate <tech|travel|prog|health> <num-posts> <file>\n"
               "  ibseg_cli segment            (post on stdin)\n"
               "  ibseg_cli snapshot <corpus-file> <snapshot-file>\n"
               "  ibseg_cli query <corpus-file> <doc-id> [k] [snapshot]\n"
               "  ibseg_cli ask <corpus-file> [k]     (post on stdin)\n"
               "  --metrics        print the Prometheus text exposition after\n"
               "                   the command (latency/stage histograms,\n"
               "                   ingest counters, corpus gauges)\n"
               "  --metrics=json   same, as a JSON dump with p50/p95/p99\n"
               "  --cache[=N]      enable the epoch-invalidated query result\n"
               "                   cache, capacity N (default 1024)\n"
               "  --threads=N      score intention clusters on N worker\n"
               "                   threads (bit-identical to serial)\n"
               "  --save=PATH      (query) after serving, persist the full\n"
               "                   state as a binary snapshot v2 (atomic,\n"
               "                   CRC-framed; see docs/ARCHITECTURE.md)\n"
               "  --restore=PATH   (query) warm-start from a snapshot v2\n"
               "                   instead of recomputing the offline phase\n"
               "  --wal=PATH       (query) write-ahead ingest log: replayed\n"
               "                   on start, appended before publication\n"
               "  --pruning=on|off MaxScore pruned per-intention top-n (on,\n"
               "                   the default) or the exhaustive historic\n"
               "                   path; rankings are bit-identical either\n"
               "                   way — off is a baseline, not a mode\n"
               "  --shards=N       (query) serve through N hash-partitioned\n"
               "                   shards (bit-identical to unsharded);\n"
               "                   --save/--restore then name a sharded\n"
               "                   state directory, --wal does not apply\n"
               "  --connect=H:P    thin client against a running\n"
               "                   ibseg_server (docs/PROTOCOL.md):\n"
               "                   query <doc-id> [k] | ask [k] | add |\n"
               "                   ping | save | recluster | drain |\n"
               "                   tenants;\n"
               "                   recluster forces one background\n"
               "                   re-clustering epoch and prints the new\n"
               "                   generation; --metrics fetches the\n"
               "                   server's metrics over the wire\n"
               "  --tenant=NAME    (with --connect) bind the connection to\n"
               "                   tenant NAME via TENANT_OPEN before the\n"
               "                   command; `tenants` lists every tenant\n"
               "                   with its corpus size\n");
  return 2;
}

// The --connect=HOST:PORT thin-client path: every command is one
// request/response exchange over the net::Client reference implementation
// of docs/PROTOCOL.md. Returns the process exit code.
int run_remote(const char* metrics_mode, int argc, char** argv) {
  size_t colon = g_connect.rfind(':');
  if (colon == std::string::npos || colon + 1 >= g_connect.size()) {
    std::fprintf(stderr, "error: --connect needs HOST:PORT\n");
    return 2;
  }
  const std::string host = g_connect.substr(0, colon);
  int port = std::atoi(g_connect.c_str() + colon + 1);
  if (port <= 0 || port > 65535) return usage();
  auto client = net::Client::connect(host, static_cast<uint16_t>(port));
  if (client == nullptr) {
    std::fprintf(stderr, "error: cannot connect to %s\n", g_connect.c_str());
    return 1;
  }

  auto report = [](const net::CallResult& result) -> int {
    if (result.ok()) return 0;
    if (result.transport_ok) {
      std::fprintf(stderr, "error: server responded %u: %s\n",
                   static_cast<unsigned>(result.error.code),
                   result.error.message.c_str());
    } else {
      std::fprintf(stderr, "error: %s\n", result.transport_error.c_str());
    }
    return 1;
  };

  // Bind the connection before the command: every subsequent request on
  // this connection then operates on the named tenant's corpus.
  if (!g_tenant.empty()) {
    net::TenantOpenedResponse opened;
    if (report(client->tenant_open(g_tenant, &opened)) != 0) return 1;
  }

  auto print_related = [](const net::RelatedResponse& related) {
    std::printf("epoch %llu, %llu docs\n",
                static_cast<unsigned long long>(related.epoch),
                static_cast<unsigned long long>(related.num_docs));
    for (const ScoredDoc& sd : related.results) {
      std::printf("  %4u  %.3f\n", sd.doc, sd.score);
    }
  };
  auto read_stdin = [] {
    std::ostringstream ss;
    ss << std::cin.rdbuf();
    return ss.str();
  };

  if (argc < 1) return usage();
  const std::string cmd = argv[0];
  int rc;
  if (cmd == "query" && (argc == 2 || argc == 3)) {
    DocId doc = static_cast<DocId>(std::strtoul(argv[1], nullptr, 10));
    uint32_t k = argc == 3 ? static_cast<uint32_t>(std::atoi(argv[2])) : 5;
    net::RelatedResponse related;
    rc = report(client->query(doc, k, &related));
    if (rc == 0) print_related(related);
  } else if (cmd == "ask" && argc <= 2) {
    uint32_t k = argc == 2 ? static_cast<uint32_t>(std::atoi(argv[1])) : 5;
    net::RelatedResponse related;
    rc = report(client->ask(read_stdin(), k, &related));
    if (rc == 0) print_related(related);
  } else if (cmd == "add" && argc == 1) {
    DocId id = 0;
    rc = report(client->add_post(read_stdin(), &id));
    if (rc == 0) std::printf("added doc %u\n", id);
  } else if (cmd == "ping" && argc == 1) {
    net::PongResponse pong;
    rc = report(client->ping(&pong));
    if (rc == 0) {
      std::printf("pong: epoch %llu, %llu docs\n",
                  static_cast<unsigned long long>(pong.epoch),
                  static_cast<unsigned long long>(pong.num_docs));
    }
  } else if (cmd == "save" && argc == 1) {
    rc = report(client->save());
    if (rc == 0) std::printf("saved\n");
  } else if (cmd == "recluster" && argc == 1) {
    net::ReclusteredResponse reclustered;
    rc = report(client->recluster(&reclustered));
    if (rc == 0) {
      std::printf("reclustered: generation %llu, %u intention clusters\n",
                  static_cast<unsigned long long>(reclustered.generation),
                  reclustered.num_clusters);
    }
  } else if (cmd == "drain" && argc == 1) {
    rc = report(client->drain());
    if (rc == 0) std::printf("draining\n");
  } else if (cmd == "tenants" && argc == 1) {
    net::TenantListingResponse listing;
    rc = report(client->tenant_list(&listing));
    if (rc == 0) {
      for (const net::TenantEntry& entry : listing.tenants) {
        std::printf("%-32s %llu docs\n", entry.name.c_str(),
                    static_cast<unsigned long long>(entry.num_docs));
      }
    }
  } else {
    return usage();
  }
  if (rc == 0 && metrics_mode != nullptr) {
    std::string body;
    rc = report(client->metrics(
        std::strcmp(metrics_mode, "json") == 0 ? 1 : 0, &body));
    if (rc == 0) std::fputs(body.c_str(), stdout);
  }
  return rc;
}

// Loads either an ibseg corpus file or a plain one-post-per-line file.
std::vector<Document> load_docs(const std::string& path,
                                SyntheticCorpus* corpus_out) {
  if (auto corpus = load_corpus_file(path)) {
    if (corpus_out != nullptr) *corpus_out = *corpus;
    return analyze_corpus(*corpus);
  }
  std::ifstream is(path);
  std::vector<Document> docs;
  if (!is) return docs;
  size_t id = 0;
  for (const std::string& text : load_plain_posts(is)) {
    docs.push_back(Document::analyze(static_cast<DocId>(id++), text));
  }
  return docs;
}

int cmd_generate(int argc, char** argv) {
  if (argc != 3) return usage();
  GeneratorOptions gen;
  if (std::strcmp(argv[0], "tech") == 0) {
    gen.domain = ForumDomain::kTechSupport;
  } else if (std::strcmp(argv[0], "travel") == 0) {
    gen.domain = ForumDomain::kTravel;
  } else if (std::strcmp(argv[0], "prog") == 0) {
    gen.domain = ForumDomain::kProgramming;
  } else if (std::strcmp(argv[0], "health") == 0) {
    gen.domain = ForumDomain::kHealth;
  } else {
    return usage();
  }
  gen.num_posts = std::strtoull(argv[1], nullptr, 10);
  if (gen.num_posts == 0) return usage();
  SyntheticCorpus corpus = generate_corpus(gen);
  if (!save_corpus_file(corpus, argv[2])) {
    std::fprintf(stderr, "error: cannot write %s\n", argv[2]);
    return 1;
  }
  std::printf("wrote %zu posts (%zu scenarios) to %s\n", corpus.posts.size(),
              corpus.num_scenarios, argv[2]);
  return 0;
}

int cmd_segment() {
  std::ostringstream ss;
  ss << std::cin.rdbuf();
  Document doc = Document::analyze(0, ss.str());
  if (doc.num_units() == 0) {
    std::fprintf(stderr, "error: empty post\n");
    return 1;
  }
  Segmentation seg = cm_tiling_segment(doc);
  std::printf("%zu sentences, %zu intention segments\n", doc.num_units(),
              seg.num_segments());
  int idx = 1;
  for (auto [b, e] : seg.segments()) {
    std::string_view text = doc.range_text(b, e);
    std::printf("[%d] %.*s\n", idx++, static_cast<int>(text.size()),
                text.data());
  }
  return 0;
}

int cmd_snapshot(int argc, char** argv) {
  if (argc != 2) return usage();
  std::vector<Document> docs = load_docs(argv[0], nullptr);
  if (docs.empty()) {
    std::fprintf(stderr, "error: cannot load corpus %s\n", argv[0]);
    return 1;
  }
  Segmenter segmenter = Segmenter::cm_tiling();
  Vocabulary vocab;
  std::vector<Segmentation> segs(docs.size());
  for (size_t d = 0; d < docs.size(); ++d) {
    segs[d] = segmenter.segment(docs[d], vocab);
  }
  IntentionClustering clustering = IntentionClustering::build(docs, segs);
  PipelineSnapshot snap = make_snapshot(segs, clustering);
  if (!save_snapshot_file(snap, argv[1])) {
    std::fprintf(stderr, "error: cannot write %s\n", argv[1]);
    return 1;
  }
  std::printf("offline phase done: %zu docs, %d intention clusters -> %s\n",
              docs.size(), clustering.num_clusters(), argv[1]);
  return 0;
}

// The --shards=N query path: same command surface, served through the
// scatter-gather layer. --save/--restore address a sharded state
// directory; the answers are bit-identical to the unsharded path.
int cmd_query_sharded(char** argv, DocId query, int k) {
  ServingOptions serving_options;
  serving_options.cache.capacity = g_cache_capacity;
  serving_options.num_shards = g_num_shards;
  PipelineOptions build_options;
  build_options.matcher.query_threads = g_query_threads;
  build_options.matcher.exhaustive_fallback = !g_pruning;

  SyntheticCorpus corpus;
  std::unique_ptr<ShardedServing> serving;
  if (!g_restore_path.empty()) {
    serving = ShardedServing::restore(g_restore_path, build_options,
                                      serving_options);
    if (serving == nullptr) {
      std::fprintf(stderr, "error: cannot restore sharded state from %s\n",
                   g_restore_path.c_str());
      return 1;
    }
    if (auto c = load_corpus_file(argv[0])) corpus = *c;
  } else {
    std::vector<Document> docs = load_docs(argv[0], &corpus);
    if (docs.empty()) {
      std::fprintf(stderr, "error: cannot load corpus %s\n", argv[0]);
      return 1;
    }
    serving = ShardedServing::create(std::move(docs), build_options,
                                     serving_options);
    if (serving == nullptr) {
      std::fprintf(stderr, "error: cannot build sharded serving\n");
      return 1;
    }
  }

  // Texts live on the owner shard; the partition function finds it.
  auto doc_text = [&](DocId id) -> std::string {
    const ServingPipeline& shard =
        serving->shard(ShardedServing::shard_of(id, serving->num_shards()));
    for (const Document& d : shard.quiescent().docs()) {
      if (d.id() == id) return d.text();
    }
    return "";
  };
  if (query >= serving->num_docs()) return usage();

  std::printf("query %u (%u shards): \"%.70s...\"\n", query,
              serving->num_shards(), doc_text(query).c_str());
  for (const ScoredDoc& sd : serving->find_related(query, k).results) {
    std::printf("  %4u  %.3f  \"%.70s...\"", sd.doc, sd.score,
                doc_text(sd.doc).c_str());
    if (sd.doc < corpus.posts.size() && query < corpus.posts.size()) {
      std::printf("  [scenario %d%s]", corpus.posts[sd.doc].scenario_id,
                  corpus.posts[sd.doc].scenario_id ==
                          corpus.posts[query].scenario_id
                      ? " *"
                      : "");
    }
    std::printf("\n");
  }
  if (!g_save_path.empty()) {
    if (!serving->save(g_save_path)) {
      std::fprintf(stderr, "error: cannot save sharded state to %s\n",
                   g_save_path.c_str());
      return 1;
    }
    std::printf(
        "saved sharded state (%zu docs, %u shards, epoch %llu) to %s\n",
        serving->num_docs(), serving->num_shards(),
        static_cast<unsigned long long>(serving->epoch()),
        g_save_path.c_str());
  }
  return 0;
}

int cmd_query(int argc, char** argv) {
  if (argc < 2 || argc > 4) return usage();
  DocId query = static_cast<DocId>(std::strtoul(argv[1], nullptr, 10));
  int k = argc >= 3 ? std::atoi(argv[2]) : 5;
  if (k <= 0) return usage();
  if (g_num_shards > 1) {
    if (!g_wal_path.empty() || argc == 4) return usage();
    return cmd_query_sharded(argv, query, k);
  }

  PipelineOptions build_options;
  build_options.matcher.query_threads = g_query_threads;
  build_options.matcher.exhaustive_fallback = !g_pruning;
  ServingOptions serving_options;
  serving_options.cache.capacity = g_cache_capacity;
  serving_options.persist.wal_path = g_wal_path;

  // Serve through ServingPipeline — the layer a deployment queries — so a
  // --metrics run shows the full serving catalog (query latency, lock
  // wait, corpus gauges), not just the offline stage timings.
  SyntheticCorpus corpus;
  std::unique_ptr<ServingPipeline> serving;
  if (!g_restore_path.empty()) {
    // Warm restart: the snapshot is self-contained (texts, segmentations,
    // labels, vocabulary), so the corpus file is only consulted for the
    // scenario annotation of the output.
    serving = ServingPipeline::restore(g_restore_path, build_options,
                                       serving_options);
    if (serving == nullptr) {
      std::fprintf(stderr, "error: cannot restore from %s\n",
                   g_restore_path.c_str());
      return 1;
    }
    if (auto c = load_corpus_file(argv[0])) corpus = *c;
  } else {
    std::vector<Document> docs = load_docs(argv[0], &corpus);
    if (docs.empty()) {
      std::fprintf(stderr, "error: cannot load corpus %s\n", argv[0]);
      return 1;
    }
    if (argc == 4) {
      // Offline-phase snapshot (v2 or the legacy v1 text format — the
      // loader sniffs the magic).
      auto snap = load_snapshot_any_file(argv[3]);
      if (!snap || snap->segmentations.size() != docs.size()) {
        std::fprintf(stderr, "error: snapshot %s missing or inconsistent\n",
                     argv[3]);
        return 1;
      }
      serving = std::make_unique<ServingPipeline>(
          RelatedPostPipeline::build_from_snapshot(std::move(docs), *snap,
                                                   build_options),
          serving_options);
    } else {
      serving = std::make_unique<ServingPipeline>(
          RelatedPostPipeline::build(std::move(docs), build_options),
          serving_options);
    }
  }
  if (query >= serving->num_docs()) return usage();

  const std::string query_text = serving->quiescent().docs()[query].text();
  std::printf("query %u: \"%.70s...\"\n", query, query_text.c_str());
  for (const ScoredDoc& sd : serving->find_related(query, k).results) {
    std::printf("  %4u  %.3f  \"%.70s...\"", sd.doc, sd.score,
                serving->quiescent().docs()[sd.doc].text().c_str());
    if (sd.doc < corpus.posts.size() && query < corpus.posts.size()) {
      std::printf("  [scenario %d%s]", corpus.posts[sd.doc].scenario_id,
                  corpus.posts[sd.doc].scenario_id ==
                          corpus.posts[query].scenario_id
                      ? " *"
                      : "");
    }
    std::printf("\n");
  }
  if (!g_save_path.empty()) {
    if (!serving->save(g_save_path)) {
      std::fprintf(stderr, "error: cannot save snapshot to %s\n",
                   g_save_path.c_str());
      return 1;
    }
    std::printf("saved serving state (%zu docs, epoch %llu) to %s\n",
                serving->num_docs(),
                static_cast<unsigned long long>(serving->epoch()),
                g_save_path.c_str());
  }
  return 0;
}

int cmd_ask(int argc, char** argv) {
  if (argc < 1 || argc > 2) return usage();
  SyntheticCorpus corpus;
  std::vector<Document> docs = load_docs(argv[0], &corpus);
  if (docs.empty()) {
    std::fprintf(stderr, "error: cannot load corpus %s\n", argv[0]);
    return 1;
  }
  int k = argc >= 2 ? std::atoi(argv[1]) : 5;
  std::ostringstream ss;
  ss << std::cin.rdbuf();
  Document query = Document::analyze(1u << 30, ss.str());
  if (query.num_units() == 0) {
    std::fprintf(stderr, "error: empty post on stdin\n");
    return 1;
  }
  ServingPipeline serving(RelatedPostPipeline::build(std::move(docs)));
  auto related = serving.find_related_external(query, k).results;
  if (related.empty()) {
    std::printf("no related posts found\n");
    return 0;
  }
  for (const ScoredDoc& sd : related) {
    std::printf("  %4u  %.3f  \"%.70s...\"\n", sd.doc, sd.score,
                serving.quiescent().docs()[sd.doc].text().c_str());
  }
  return 0;
}

}  // namespace

int main(int argc, char** argv) {
  int arg = 1;
  const char* metrics_mode = nullptr;  // "text" or "json"
  while (arg < argc && std::strncmp(argv[arg], "--", 2) == 0) {
    if (std::strncmp(argv[arg], "--metrics", 9) == 0) {
      const char* suffix = argv[arg] + 9;
      if (*suffix == '\0') {
        metrics_mode = "text";
      } else if (std::strcmp(suffix, "=text") == 0) {
        metrics_mode = "text";
      } else if (std::strcmp(suffix, "=json") == 0) {
        metrics_mode = "json";
      } else {
        return usage();
      }
    } else if (std::strncmp(argv[arg], "--cache", 7) == 0) {
      const char* suffix = argv[arg] + 7;
      if (*suffix == '\0') {
        g_cache_capacity = 1024;
      } else if (*suffix == '=') {
        g_cache_capacity = std::strtoull(suffix + 1, nullptr, 10);
        if (g_cache_capacity == 0) return usage();
      } else {
        return usage();
      }
    } else if (std::strncmp(argv[arg], "--threads=", 10) == 0) {
      g_query_threads = std::atoi(argv[arg] + 10);
      if (g_query_threads <= 0) return usage();
    } else if (std::strncmp(argv[arg], "--save=", 7) == 0) {
      g_save_path = argv[arg] + 7;
      if (g_save_path.empty()) return usage();
    } else if (std::strncmp(argv[arg], "--restore=", 10) == 0) {
      g_restore_path = argv[arg] + 10;
      if (g_restore_path.empty()) return usage();
    } else if (std::strncmp(argv[arg], "--wal=", 6) == 0) {
      g_wal_path = argv[arg] + 6;
      if (g_wal_path.empty()) return usage();
    } else if (std::strncmp(argv[arg], "--shards=", 9) == 0) {
      g_num_shards = std::atoi(argv[arg] + 9);
      if (g_num_shards <= 0) return usage();
    } else if (std::strncmp(argv[arg], "--connect=", 10) == 0) {
      g_connect = argv[arg] + 10;
      if (g_connect.empty()) return usage();
    } else if (std::strncmp(argv[arg], "--tenant=", 9) == 0) {
      g_tenant = argv[arg] + 9;
      if (g_tenant.empty()) return usage();
    } else if (std::strncmp(argv[arg], "--pruning=", 10) == 0) {
      const char* value = argv[arg] + 10;
      if (std::strcmp(value, "on") == 0) {
        g_pruning = true;
      } else if (std::strcmp(value, "off") == 0) {
        g_pruning = false;
      } else {
        return usage();
      }
    } else {
      return usage();
    }
    ++arg;
  }
  if (arg >= argc) return usage();
  if (!g_tenant.empty() && g_connect.empty()) return usage();
  if (!g_connect.empty()) {
    return run_remote(metrics_mode, argc - arg, argv + arg);
  }
  const std::string cmd = argv[arg];
  int rc;
  if (cmd == "generate") {
    rc = cmd_generate(argc - arg - 1, argv + arg + 1);
  } else if (cmd == "segment") {
    rc = cmd_segment();
  } else if (cmd == "snapshot") {
    rc = cmd_snapshot(argc - arg - 1, argv + arg + 1);
  } else if (cmd == "query") {
    rc = cmd_query(argc - arg - 1, argv + arg + 1);
  } else if (cmd == "ask") {
    rc = cmd_ask(argc - arg - 1, argv + arg + 1);
  } else {
    return usage();
  }
  if (metrics_mode != nullptr && rc == 0) {
    if (std::strcmp(metrics_mode, "json") == 0) {
      std::fputs(obs::render_json().c_str(), stdout);
    } else {
      std::fputs(obs::render_text().c_str(), stdout);
    }
  }
  return rc;
}
