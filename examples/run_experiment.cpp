// run_experiment — the library's evaluation harness end to end: generate a
// corpus, run all five methods, print the summary, and export per-query
// results as CSV for external analysis.
//
//   ./build/examples/run_experiment [num_posts] [out.csv]

#include <cstdio>
#include <cstdlib>
#include <fstream>
#include <iostream>

#include "core/experiment.h"
#include "util/strings.h"
#include "util/table_printer.h"

using namespace ibseg;

int main(int argc, char** argv) {
  size_t num_posts = argc > 1 ? std::strtoull(argv[1], nullptr, 10) : 300;
  std::string csv_path = argc > 2 ? argv[2] : "";

  GeneratorOptions gen;
  gen.domain = ForumDomain::kTechSupport;
  gen.num_posts = num_posts;
  gen.posts_per_scenario = 4;
  gen.seed = 11;
  gen.background_noise = 0.9;
  gen.mention_noise = 0.0;
  gen.contaminant_ratio = 3.0;
  gen.scenario_pool_size = 6;
  SyntheticCorpus corpus = generate_corpus(gen);
  std::vector<Document> docs = analyze_corpus(corpus);
  std::printf("corpus: %zu posts, %zu scenarios\n\n", docs.size(),
              corpus.num_scenarios);

  ExperimentOptions options;
  options.config.lda.iterations = 80;
  auto reports = run_experiment(corpus, docs, options);

  TablePrinter t({"Method", "mean precision", "mean recall", "mean F1",
                  "zero-lists", "clusters", "avg query ms"});
  for (const MethodReport& r : reports) {
    t.add_row({r.method, str_format("%.3f", r.precision.mean),
               str_format("%.3f", r.mean_recall),
               str_format("%.3f", r.mean_f1),
               str_format("%.0f%%", 100.0 * r.precision.zero_fraction),
               r.build.num_clusters > 0
                   ? str_format("%d", r.build.num_clusters)
                   : std::string("-"),
               str_format("%.3f", r.avg_query_ms)});
  }
  t.print(std::cout);

  if (!csv_path.empty()) {
    std::ofstream os(csv_path);
    if (os && write_experiment_csv(reports, corpus, os)) {
      std::printf("\nper-query results -> %s\n", csv_path.c_str());
    } else {
      std::fprintf(stderr, "error: cannot write %s\n", csv_path.c_str());
      return 1;
    }
  }
  return 0;
}
