// Segmentation explorer: renders a post the way the paper's Fig. 2 does —
// per-CM value tracks along the sentences, then the segmentations produced
// by every border mechanism (plus the term-based TextTiling comparator).
//
// Pass a post on stdin, or run without input for a built-in demo post.

#include <cstdio>
#include <iostream>
#include <sstream>
#include <unistd.h>
#include <string>

#include "seg/segmenter.h"

using namespace ibseg;

namespace {

const char* kDemoPost =
    "I have an old laptop with a printer and a big external drive. "
    "The machine runs fine and the printer is connected over the dock. "
    "Yesterday the printer failed twice and the tray blinked. "
    "It started after I installed the last update. "
    "I replaced the cartridge and cleaned the tray carefully. "
    "A friend checked the dock and found nothing wrong. "
    "Do you know whether a new tray would fix this? "
    "Should I replace the whole printer instead? "
    "I am asking because I do not want to spend money twice.";

// Dominant value of a CM within one sentence, as a single track character.
char track_char(const CmProfile& p, CmKind cm) {
  static const char* kSymbols[] = {
      "Ppf",  // tense: Present/past/future
      "1youT",  // unused; handled below
  };
  (void)kSymbols;
  int arity = kCmArity[static_cast<int>(cm)];
  int best = -1;
  double best_count = 0.0;
  for (int v = 0; v < arity; ++v) {
    double c = p.count(cm, v);
    if (c > best_count) {
      best_count = c;
      best = v;
    }
  }
  if (best < 0) return '.';
  return static_cast<char>('0' + best);
}

void print_tracks(const Document& doc) {
  std::printf("CM value tracks (dominant categorical value per sentence;"
              " '.' = CM absent):\n");
  for (int c = 0; c < kNumCms; ++c) {
    CmKind cm = static_cast<CmKind>(c);
    std::printf("  %-13s ", cm_name(cm));
    for (size_t u = 0; u < doc.num_units(); ++u) {
      std::printf("%c ", track_char(doc.unit_profile(u), cm));
    }
    std::printf("  [");
    for (int v = 0; v < kCmArity[c]; ++v) {
      std::printf("%s%d=%s", v ? ", " : "", v, cm_value_name(cm, v));
    }
    std::printf("]\n");
  }
}

void print_segmentation(const char* name, const Segmentation& seg,
                        size_t n) {
  std::printf("  %-22s ", name);
  for (size_t u = 0; u < n; ++u) {
    bool border = false;
    for (size_t b : seg.borders) border |= (b == u);
    std::printf("%s%zu", border ? "| " : (u ? "  " : ""), u + 1);
  }
  std::printf("   (%zu segments)\n", seg.num_segments());
}

}  // namespace

int main() {
  std::string text;
  if (!isatty(0)) {
    std::ostringstream ss;
    ss << std::cin.rdbuf();
    text = ss.str();
  }
  if (text.size() < 20) text = kDemoPost;

  Document doc = Document::analyze(0, text);
  std::printf("Post (%zu sentences):\n", doc.num_units());
  for (size_t u = 0; u < doc.num_units(); ++u) {
    std::string_view s = doc.range_text(u, u + 1);
    std::printf("  %zu. %.*s\n", u + 1, static_cast<int>(s.size()), s.data());
  }
  std::printf("\n");
  print_tracks(doc);

  std::printf("\nSegmentations (| marks a border before the sentence):\n");
  Vocabulary vocab;
  print_segmentation("CM tiling", Segmenter::cm_tiling().segment(doc, vocab),
                     doc.num_units());
  print_segmentation(
      "Tile",
      Segmenter::intention(BorderStrategyKind::kTile).segment(doc, vocab),
      doc.num_units());
  print_segmentation(
      "Greedy",
      Segmenter::intention(BorderStrategyKind::kGreedy).segment(doc, vocab),
      doc.num_units());
  print_segmentation(
      "StepbyStep",
      Segmenter::intention(BorderStrategyKind::kStepByStep)
          .segment(doc, vocab),
      doc.num_units());
  print_segmentation("TextTiling (terms)",
                     Segmenter::topical().segment(doc, vocab),
                     doc.num_units());
  return 0;
}
