// Travel-forum scenario: build the full pipeline over a TripAdvisor-style
// corpus and compare the IntentIntent-MR ranking against FullText side by
// side for a few queries, with ground-truth scenario annotations.

#include <cstdio>
#include <vector>

#include "core/methods.h"
#include "datagen/post_generator.h"
#include "eval/precision.h"

using namespace ibseg;

int main() {
  GeneratorOptions gen;
  gen.domain = ForumDomain::kTravel;
  gen.num_posts = 240;
  gen.posts_per_scenario = 4;
  gen.seed = 5;
  SyntheticCorpus corpus = generate_corpus(gen);
  std::vector<Document> docs = analyze_corpus(corpus);

  MethodBuildStats stats;
  auto intent =
      build_method(MethodKind::kIntentIntentMR, docs, MethodConfig{}, &stats);
  auto fulltext = build_method(MethodKind::kFullText, docs, MethodConfig{});

  std::printf("Travel corpus: %zu posts, %zu scenarios, %d intention "
              "clusters\n\n",
              docs.size(), corpus.num_scenarios, stats.num_clusters);

  double intent_prec = 0.0;
  double fulltext_prec = 0.0;
  const std::vector<DocId> queries = {0, 17, 42, 100, 163, 201};
  for (DocId q : queries) {
    int scenario = corpus.posts[q].scenario_id;
    auto judge = [&](DocId d) {
      return corpus.posts[d].scenario_id == scenario;
    };
    std::printf("Query post %u (scenario %d, %zu segments): \"%.60s...\"\n",
                q, scenario, corpus.posts[q].segment_intents.size(),
                corpus.posts[q].text.c_str());
    auto show = [&](const char* name, RelatedPostMethod& method,
                    double* acc) {
      auto related = method.find_related(q, 5);
      std::vector<DocId> ids;
      std::printf("  %-16s", name);
      for (const ScoredDoc& sd : related) {
        ids.push_back(sd.doc);
        std::printf(" %u%s", sd.doc, judge(sd.doc) ? "*" : "");
      }
      double p = list_precision(ids, judge);
      *acc += p;
      std::printf("   precision %.2f\n", p);
    };
    show("IntentIntent-MR:", *intent, &intent_prec);
    show("FullText:       ", *fulltext, &fulltext_prec);
    std::printf("\n");
  }
  std::printf("(* = same scenario as the query)\n");
  std::printf("Mean over %zu queries: IntentIntent-MR %.2f, FullText %.2f\n",
              queries.size(), intent_prec / queries.size(),
              fulltext_prec / queries.size());
  return 0;
}
