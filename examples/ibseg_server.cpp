// ibseg_server — the network serving front-end (docs/OPERATIONS.md is the
// runbook, docs/PROTOCOL.md the wire contract).
//
//   ibseg_server --corpus=FILE [options]     cold start from a corpus file
//   ibseg_server --restore=DIR [options]     warm start from sharded state
//
// Options:
//   --port=N             TCP port (default 7433; 0 = ephemeral)
//   --bind=ADDR          bind address (default 127.0.0.1)
//   --port-file=PATH     write the bound port to PATH once listening
//                        (scripts wait on this instead of parsing stdout)
//   --shards=N           hash-partitioned shards (default 1; ignored with
//                        --restore, which reads the shard count from the
//                        manifest)
//   --state=DIR          durable state directory: enables the SAVE
//                        command, attaches per-shard WALs so every
//                        acknowledged ADD_POST is durable, and saves on
//                        drain. With --restore they are usually the same
//                        directory.
//   --workers=N          request worker threads (default 2)
//   --max-in-flight=N    admission bound, queued + executing (default 64)
//   --max-connections=N  connection limit (default 256)
//   --request-timeout=S  queue-wait deadline in seconds (default 5)
//   --idle-timeout=S     idle connection close, seconds (default 300)
//   --threads=N          per-intention query scoring threads (default 0)
//   --cache=N            result cache capacity (default 0 = off)
//   --recluster-pending-threshold=D
//                        assignment-distance above which an ingested post
//                        joins the pending/outlier pool (default: off)
//   --recluster-max-pending=N
//                        background recluster when the pending pool
//                        reaches N (default 0 = trigger off)
//   --recluster-max-docs=N
//                        background recluster every N ingests regardless
//                        of pool size (default 0 = trigger off)
//   --recluster-poll-ms=N
//                        trigger poll interval (default 200)
//
// Multi-tenancy (docs/ARCHITECTURE.md §11, docs/OPERATIONS.md §8):
//   --tenants=A[,B,...]  host the named tenants (plus the implicit
//                        "default") as fully isolated corpora behind this
//                        one process. Requires --corpus (each tenant with
//                        no durable state seeds from it); with --state,
//                        each tenant persists under
//                        <state>/tenant-<name>/ and restores from there
//                        on restart. Incompatible with --restore and
//                        --replicate-from. Clients bind a connection with
//                        TENANT_OPEN (ibseg_cli --tenant=NAME).
//   --tenant-max-in-flight=N
//                        per-tenant admission bound (default 0 = the
//                        global --max-in-flight)
//   --fair-quantum=N     deficit-round-robin quantum in bytes for the
//                        cross-tenant fair scheduler (default 8192)
//
// Replication (docs/ARCHITECTURE.md §10, docs/OPERATIONS.md §7):
//   --replicate-from=HOST:PORT
//                        run as a read replica of the leader at HOST:PORT.
//                        Requires --state=DIR (the replica's own durable
//                        directory). Bootstraps from that directory if it
//                        holds committed state, otherwise fetches the
//                        leader's snapshot over the wire; then tails the
//                        leader's WAL, applying segments until drained.
//                        The server runs read-only: ADD_POST/ADD_POSTS/
//                        RECLUSTER answer ERROR/UNSUPPORTED.
//   --replica-id=NAME    stable name for the lag gauges (default the
//                        state directory's basename)
//   --replica-poll-ms=N  WAL poll interval once caught up (default 50)
//   --read-replicas=H:P[,H:P...]
//                        leader-side read fan-out: QUERY/ASK answers come
//                        from these replicas (round-robin, falling back
//                        to local execution) when fresh enough
//   --replica-staleness=N
//                        max publications a fanned-out answer may trail
//                        the local epoch (default 0 = fully caught up)
//
// Shutdown: SIGTERM or SIGINT (or a DRAIN frame from any client) starts a
// graceful drain — stop accepting, answer new requests with
// ERROR/DRAINING, finish in-flight work, flush responses, then (with
// --state) persist everything under the publication barrier. The process
// exits 0 after a clean drain.

#include <unistd.h>

#include <cerrno>
#include <csignal>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <fstream>
#include <memory>
#include <string>
#include <thread>
#include <vector>

#include "core/sharded_serving.h"
#include "core/tenant_registry.h"
#include "net/server.h"
#include "replication/replica.h"
#include "storage/corpus_io.h"

using namespace ibseg;

namespace {

// Self-pipe for async-signal-safe shutdown: the handler only write(2)s.
int g_signal_pipe[2] = {-1, -1};

void on_signal(int) {
  char byte = 1;
  [[maybe_unused]] ssize_t n = ::write(g_signal_pipe[1], &byte, 1);
}

int usage() {
  std::fprintf(stderr,
               "usage: ibseg_server (--corpus=FILE | --restore=DIR)\n"
               "                    [--port=N] [--bind=ADDR] "
               "[--port-file=PATH]\n"
               "                    [--shards=N] [--state=DIR] [--workers=N]\n"
               "                    [--max-in-flight=N] "
               "[--max-connections=N]\n"
               "                    [--request-timeout=S] [--idle-timeout=S]\n"
               "                    [--threads=N] [--cache=N]\n"
               "                    [--recluster-pending-threshold=D]\n"
               "                    [--recluster-max-pending=N] "
               "[--recluster-max-docs=N]\n"
               "                    [--recluster-poll-ms=N]\n"
               "                    [--tenants=A[,B,...]] "
               "[--tenant-max-in-flight=N]\n"
               "                    [--fair-quantum=N]\n"
               "                    [--replicate-from=H:P] [--replica-id=NAME]\n"
               "                    [--replica-poll-ms=N]\n"
               "                    [--read-replicas=H:P[,H:P...]]\n"
               "                    [--replica-staleness=N]\n"
               "see docs/OPERATIONS.md\n");
  return 2;
}

/// Splits "host:port" (port 1..65535); false on any malformation.
bool parse_host_port(const std::string& addr, std::string* host,
                     uint16_t* port) {
  const size_t colon = addr.rfind(':');
  if (colon == std::string::npos || colon == 0) return false;
  char* end = nullptr;
  const unsigned long p = std::strtoul(addr.c_str() + colon + 1, &end, 10);
  if (end == nullptr || *end != '\0' || p == 0 || p > 65535) return false;
  *host = addr.substr(0, colon);
  *port = static_cast<uint16_t>(p);
  return true;
}

std::vector<Document> load_docs(const std::string& path) {
  if (auto corpus = load_corpus_file(path)) return analyze_corpus(*corpus);
  std::ifstream is(path);
  std::vector<Document> docs;
  if (!is) return docs;
  size_t id = 0;
  for (const std::string& text : load_plain_posts(is)) {
    docs.push_back(Document::analyze(static_cast<DocId>(id++), text));
  }
  return docs;
}

}  // namespace

int main(int argc, char** argv) {
  std::string corpus_path, restore_dir, port_file;
  std::string replicate_from, replica_id;
  std::vector<std::string> tenant_names;
  bool tenants_mode = false;
  int replica_poll_ms = 50;
  net::ServerOptions server_options;
  server_options.port = 7433;
  ServingOptions serving_options;
  PipelineOptions build_options;
  int num_shards = 1;

  for (int i = 1; i < argc; ++i) {
    const char* a = argv[i];
    auto value = [&](const char* prefix) -> const char* {
      size_t n = std::strlen(prefix);
      return std::strncmp(a, prefix, n) == 0 ? a + n : nullptr;
    };
    if (const char* v = value("--corpus=")) {
      corpus_path = v;
    } else if (const char* v = value("--restore=")) {
      restore_dir = v;
    } else if (const char* v = value("--port=")) {
      server_options.port = static_cast<uint16_t>(std::atoi(v));
    } else if (const char* v = value("--bind=")) {
      server_options.bind_address = v;
    } else if (const char* v = value("--port-file=")) {
      port_file = v;
    } else if (const char* v = value("--shards=")) {
      num_shards = std::atoi(v);
      if (num_shards < 1) return usage();
    } else if (const char* v = value("--state=")) {
      server_options.state_dir = v;
    } else if (const char* v = value("--workers=")) {
      server_options.num_workers = std::atoi(v);
      if (server_options.num_workers < 1) return usage();
    } else if (const char* v = value("--max-in-flight=")) {
      server_options.max_in_flight = std::strtoull(v, nullptr, 10);
      if (server_options.max_in_flight < 1) return usage();
    } else if (const char* v = value("--max-connections=")) {
      server_options.max_connections = std::strtoull(v, nullptr, 10);
      if (server_options.max_connections < 1) return usage();
    } else if (const char* v = value("--request-timeout=")) {
      server_options.request_timeout_sec = std::atof(v);
    } else if (const char* v = value("--idle-timeout=")) {
      server_options.idle_timeout_sec = std::atof(v);
    } else if (const char* v = value("--threads=")) {
      build_options.matcher.query_threads = std::atoi(v);
    } else if (const char* v = value("--cache=")) {
      serving_options.cache.capacity = std::strtoull(v, nullptr, 10);
    } else if (const char* v = value("--recluster-pending-threshold=")) {
      serving_options.recluster.pending_distance_threshold = std::atof(v);
    } else if (const char* v = value("--recluster-max-pending=")) {
      server_options.recluster.max_pending = std::strtoull(v, nullptr, 10);
    } else if (const char* v = value("--recluster-max-docs=")) {
      server_options.recluster.max_docs_since = std::strtoull(v, nullptr, 10);
    } else if (const char* v = value("--recluster-poll-ms=")) {
      server_options.recluster.poll_interval_ms = std::atoi(v);
    } else if (const char* v = value("--tenants=")) {
      tenants_mode = true;
      std::string list = v;
      size_t pos = 0;
      while (pos <= list.size()) {
        const size_t comma = list.find(',', pos);
        const std::string name =
            list.substr(pos, comma == std::string::npos ? std::string::npos
                                                        : comma - pos);
        if (!name.empty()) tenant_names.push_back(name);
        if (comma == std::string::npos) break;
        pos = comma + 1;
      }
    } else if (const char* v = value("--tenant-max-in-flight=")) {
      server_options.tenant_max_in_flight = std::strtoull(v, nullptr, 10);
    } else if (const char* v = value("--fair-quantum=")) {
      server_options.fair_quantum_bytes = std::strtoull(v, nullptr, 10);
      if (server_options.fair_quantum_bytes < 1) return usage();
    } else if (const char* v = value("--replicate-from=")) {
      replicate_from = v;
    } else if (const char* v = value("--replica-id=")) {
      replica_id = v;
    } else if (const char* v = value("--replica-poll-ms=")) {
      replica_poll_ms = std::atoi(v);
      if (replica_poll_ms < 1) return usage();
    } else if (const char* v = value("--read-replicas=")) {
      std::string list = v;
      size_t pos = 0;
      while (pos <= list.size()) {
        const size_t comma = list.find(',', pos);
        const std::string addr =
            list.substr(pos, comma == std::string::npos ? std::string::npos
                                                        : comma - pos);
        if (!addr.empty()) server_options.read_replicas.push_back(addr);
        if (comma == std::string::npos) break;
        pos = comma + 1;
      }
    } else if (const char* v = value("--replica-staleness=")) {
      server_options.replica_staleness = std::strtoull(v, nullptr, 10);
    } else {
      return usage();
    }
  }
  // Replica mode sources its state from the leader (or its own directory);
  // --corpus/--restore are the leader-mode sources, exactly one of which
  // is required there.
  if (replicate_from.empty()) {
    if (corpus_path.empty() == restore_dir.empty()) return usage();
  } else {
    if (!corpus_path.empty() || !restore_dir.empty() ||
        server_options.state_dir.empty()) {
      return usage();
    }
  }
  // Tenant mode seeds from the corpus file (restore is implicit: any
  // tenant with a MANIFEST under <state>/tenant-<name>/ restores instead)
  // and is a leader-only concept.
  if (tenants_mode && (corpus_path.empty() || !replicate_from.empty())) {
    return usage();
  }

  serving_options.num_shards = num_shards;
  // --state wires sharded persistence: per-shard WALs absorb every
  // acknowledged ingest the moment it publishes, making ADD_POST acks
  // durable even before the drain-time snapshot.
  serving_options.persist.shard_dir = server_options.state_dir;

  std::unique_ptr<ShardedServing> backend;
  std::unique_ptr<repl::Replica> replica;
  std::unique_ptr<TenantRegistry> tenants;
  if (tenants_mode) {
    TenantRegistryOptions registry_options;
    registry_options.state_root = server_options.state_dir;
    registry_options.pipeline = build_options;
    registry_options.serving = serving_options;
    tenants = TenantRegistry::open(
        registry_options, tenant_names,
        [&corpus_path](const std::string&) { return load_docs(corpus_path); });
    if (tenants == nullptr) {
      std::fprintf(stderr,
                   "ibseg_server: cannot open tenants (invalid name, bad "
                   "state under %s, or unloadable corpus %s)\n",
                   server_options.state_dir.empty()
                       ? "<no state dir>"
                       : server_options.state_dir.c_str(),
                   corpus_path.c_str());
      return 1;
    }
  } else if (!replicate_from.empty()) {
    repl::ReplicaOptions replica_options;
    if (!parse_host_port(replicate_from, &replica_options.leader_host,
                         &replica_options.leader_port)) {
      return usage();
    }
    replica_options.dir = server_options.state_dir;
    if (replica_id.empty()) {
      const size_t slash = replica_options.dir.find_last_of('/');
      replica_id = slash == std::string::npos
                       ? replica_options.dir
                       : replica_options.dir.substr(slash + 1);
    }
    replica_options.replica_id = replica_id;
    replica_options.poll_interval_ms = replica_poll_ms;
    replica_options.pipeline = build_options;
    replica_options.serving = serving_options;
    replica = repl::Replica::bootstrap(std::move(replica_options));
    if (replica == nullptr) {
      std::fprintf(stderr,
                   "ibseg_server: cannot bootstrap replica of %s into %s\n",
                   replicate_from.c_str(), server_options.state_dir.c_str());
      return 1;
    }
    server_options.read_only = true;
  } else if (!restore_dir.empty()) {
    backend = ShardedServing::restore(restore_dir, build_options,
                                      serving_options);
    if (backend == nullptr) {
      std::fprintf(stderr, "ibseg_server: cannot restore from %s\n",
                   restore_dir.c_str());
      return 1;
    }
  } else {
    std::vector<Document> docs = load_docs(corpus_path);
    if (docs.empty()) {
      std::fprintf(stderr, "ibseg_server: cannot load corpus %s\n",
                   corpus_path.c_str());
      return 1;
    }
    backend = ShardedServing::create(std::move(docs), build_options,
                                     serving_options);
    if (backend == nullptr) {
      std::fprintf(stderr, "ibseg_server: cannot build serving state\n");
      return 1;
    }
  }

  ShardedServing* serving_backend = tenants != nullptr
                                        ? tenants->default_backend()
                                        : replica != nullptr
                                              ? &replica->backend()
                                              : backend.get();
  std::unique_ptr<net::Server> server =
      tenants != nullptr
          ? std::make_unique<net::Server>(tenants.get(), server_options)
          : std::make_unique<net::Server>(serving_backend, server_options);
  if (!server->start()) return 1;
  if (replica != nullptr) replica->start_polling();

  if (tenants != nullptr) {
    std::string joined;
    for (const std::string& name : tenants->names()) {
      if (!joined.empty()) joined += ",";
      joined += name;
    }
    std::printf(
        "ibseg_server: %zu tenants (%s), %u shards each, listening on "
        "%s:%u\n",
        tenants->size(), joined.c_str(), serving_backend->num_shards(),
        server_options.bind_address.c_str(), server->port());
  } else {
    std::printf("ibseg_server: %zu docs, %u shards, listening on %s:%u%s\n",
                serving_backend->num_docs(), serving_backend->num_shards(),
                server_options.bind_address.c_str(), server->port(),
                replica != nullptr ? " (replica, read-only)" : "");
  }
  std::fflush(stdout);
  if (!port_file.empty()) {
    std::ofstream pf(port_file);
    pf << server->port() << "\n";
  }

  if (::pipe(g_signal_pipe) != 0) {
    std::perror("ibseg_server: pipe");
    return 1;
  }
  std::signal(SIGTERM, on_signal);
  std::signal(SIGINT, on_signal);
  std::signal(SIGPIPE, SIG_IGN);

  // Wait for either a signal (self-pipe readable) or a client-initiated
  // drain (wait_drained returns). A dedicated thread bridges the signal
  // pipe to server.drain(); wait_drained() then completes on either path.
  std::thread signal_waiter([&server] {
    char byte;
    while (::read(g_signal_pipe[0], &byte, 1) < 0 && errno == EINTR) {
    }
    server->drain();
  });
  server->wait_drained();
  // Stop tailing the leader before reporting: the drain-time save already
  // persisted the replica's applied position.
  if (replica != nullptr) replica->stop();

  // Unblock the signal thread if the drain came from the wire.
  char byte = 1;
  [[maybe_unused]] ssize_t n = ::write(g_signal_pipe[1], &byte, 1);
  signal_waiter.join();

  std::printf("ibseg_server: drained cleanly (%zu docs, epoch %llu)\n",
              serving_backend->num_docs(),
              static_cast<unsigned long long>(serving_backend->epoch()));
  return 0;
}
