// Tech-support scenario: reconstructs the paper's Fig. 1 motivating
// example (Docs A-D) and shows why intention-based matching treats them
// differently from whole-post matching.
//
// Doc A: RAID context, asks about performance degradation.
// Doc B: same HP/RAID vocabulary, asks about adding a drive  -> NOT related.
// Doc C: little vocabulary overlap, same question as A       -> related.
// Doc D: different in every respect                          -> unrelated.

#include <cstdio>
#include <vector>

#include "core/methods.h"
#include "index/fulltext_matcher.h"
#include "seg/segmenter.h"

using namespace ibseg;

namespace {

// The four posts of paper Fig. 1 (lightly normalized punctuation).
const char* kDocA =
    "I have an HP system with a RAID controller and four disks in form of a "
    "JBOD. I would like to install Hadoop with a replication HDFS and only "
    "part of the disk space used from every disk. Do you know whether it "
    "would perform ok or whether the partial use of the disk would degrade "
    "performance? Friends have downloaded the Cloudera distribution but it "
    "did not work. It stopped since the web site was suggesting to have "
    "larger disks. I am asking because I do not want to install Linux to "
    "find that my hardware configuration is not right.";

const char* kDocB =
    "My boss gave me yesterday an HP Pavilion computer with Intel Matrix "
    "Storage System, a large drive and Linux pre-installed. I am thinking "
    "to add an extra drive using a RAID array. Can I do it without having "
    "to rebuild the entire system? I have already looked at the HP official "
    "web site for how to use a JBOD. But I have not found anything related "
    "to it.";

const char* kDocC =
    "Extra RAID drives seem to be the solution to my problem. But does "
    "adding RAID drives require a reformat and rebuild of the system to "
    "improve performance?";

const char* kDocD =
    "My HP Pavilion stops working after a few minutes of activity. I called "
    "our technical department but no luck. Despite the many calls I did not "
    "manage to find a person with adequate knowledge to find out what is "
    "wrong. All they said is bring it up and we will see, which frustrated "
    "me. At the end I had the brilliant idea to move it to a cooler place "
    "and voila. No more problems.";

void show_segments(const char* name, const Document& doc) {
  Segmentation seg = cm_tiling_segment(doc);
  std::printf("%s -> %zu intention segments:\n", name, seg.num_segments());
  for (auto [begin, end] : seg.segments()) {
    std::string_view text = doc.range_text(begin, end);
    std::printf("    | %.*s\n", static_cast<int>(text.size()), text.data());
  }
}

}  // namespace

int main() {
  std::vector<Document> docs;
  docs.push_back(Document::analyze(0, kDocA));
  docs.push_back(Document::analyze(1, kDocB));
  docs.push_back(Document::analyze(2, kDocC));
  docs.push_back(Document::analyze(3, kDocD));
  const char* names[] = {"Doc A", "Doc B", "Doc C", "Doc D"};

  std::printf("=== Intention segmentation of the Fig. 1 posts ===\n\n");
  for (size_t i = 0; i < docs.size(); ++i) show_segments(names[i], docs[i]);

  // Whole-post ranking for reference: B (shared HP/RAID vocabulary) tends
  // to outrank C (shared question, little shared content).
  std::printf("\n=== Whole-post (FullText) ranking for Doc A ===\n");
  {
    Vocabulary vocab;
    FullTextMatcher matcher = FullTextMatcher::build(docs, vocab);
    for (const ScoredDoc& sd : matcher.find_related(0, 3)) {
      std::printf("  %s  score %.3f\n", names[sd.doc], sd.score);
    }
  }

  // Intention-based matching: per-intention segment comparison.
  std::printf("\n=== Intention-based (IntentIntent-MR) ranking for Doc A ===\n");
  {
    MethodConfig config;
    // Four documents are far below the defaults' assumptions; relax the
    // density clustering for the demo.
    config.grouping.dbscan.min_pts = 2;
    config.grouping.target_min_clusters = 2;
    config.grouping.target_max_clusters = 4;
    config.grouping.kmeans_fallback_k = 3;
    config.grouping.min_cluster_fraction = 0.0;
    auto method = build_method(MethodKind::kIntentIntentMR, docs, config);
    for (const ScoredDoc& sd : method->find_related(0, 3)) {
      std::printf("  %s  score %.3f\n", names[sd.doc], sd.score);
    }
  }
  std::printf(
      "\n(The paper's argument: A-B share keywords only across different\n"
      "intentions, while A-C share the question. Under intention-based\n"
      "matching, D — which FullText ranks by its shared HP vocabulary —\n"
      "drops out entirely, and C enters through the shared question\n"
      "intention despite its small content overlap.)\n");
  return 0;
}
