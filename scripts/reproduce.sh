#!/usr/bin/env bash
# Reproduces everything: build, tests, every paper table/figure bench, the
# ablations, and the example programs. Outputs land in the repo root as
# test_output.txt and bench_output.txt.
#
# Usage: scripts/reproduce.sh [scale]
#   scale  multiplies the bench corpus sizes (default 1; the paper-sized
#          corpora need scale >= 10 and correspondingly more time).
#
# Opt-in extras:
#   IBSEG_SANITIZE_CHECK=1  also run scripts/check_sanitizers.sh (three
#                           extra instrumented builds; slow but proves the
#                           concurrent serving layer race/overflow-free).

set -euo pipefail
cd "$(dirname "$0")/.."

SCALE="${1:-1}"

echo "== configure + build =="
cmake -B build -G Ninja
cmake --build build

echo "== tests =="
ctest --test-dir build 2>&1 | tee test_output.txt

if [ "${IBSEG_SANITIZE_CHECK:-0}" = "1" ]; then
  echo "== sanitizer matrix (IBSEG_SANITIZE_CHECK=1) =="
  scripts/check_sanitizers.sh
fi

echo "== benches (IBSEG_BENCH_SCALE=${SCALE}) =="
export IBSEG_BENCH_SCALE="${SCALE}"
for b in build/bench/*; do "$b"; done 2>&1 | tee bench_output.txt

echo "== examples =="
./build/examples/quickstart
./build/examples/tech_support_forum
./build/examples/travel_reviews
./build/examples/segmentation_explorer </dev/null
./build/examples/run_experiment 200 experiment_results.csv

echo "done; see test_output.txt, bench_output.txt, experiment_results.csv"
