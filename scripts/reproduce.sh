#!/usr/bin/env bash
# Reproduces everything: build, tests, every paper table/figure bench, the
# ablations, and the example programs. Outputs land in the repo root as
# test_output.txt and bench_output.txt.
#
# Usage: scripts/reproduce.sh [scale]
#   scale  multiplies the bench corpus sizes (default 1; the paper-sized
#          corpora need scale >= 10 and correspondingly more time).
#
# Opt-in extras:
#   IBSEG_SANITIZE_CHECK=1  also run scripts/check_sanitizers.sh (three
#                           extra instrumented builds; slow but proves the
#                           concurrent serving layer race/overflow-free).
#   IBSEG_DOCS_CHECK=1      also run doxygen and fail on documentation
#                           warnings from src/obs, src/core or src/index
#                           (the documented operational surface). Skipped
#                           with a notice when doxygen is not installed.
#   IBSEG_DIFF_CHECK=1      also run the differential suite (serial ==
#                           parallel == batched == cached query results,
#                           bit for bit) plus the concurrency stress suite
#                           under ThreadSanitizer — one instrumented build.
#   IBSEG_PERSIST_CHECK=1   also run the persistence suites (snapshot v2 +
#                           WAL formats, "storage") and the crash-injection
#                           suite (fork + _exit mid-ingest, "killsafety")
#                           under AddressSanitizer — one instrumented
#                           build; the plain builds of both labels already
#                           ran with the normal test step.
#   IBSEG_FUZZ_CHECK=1      also run the fuzz targets (snapshot loader, WAL
#                           replay, text unescaping, flat-postings decoder,
#                           wire-frame codec — tests/fuzz/) for 30
#                           seconds each under AddressSanitizer. The short
#                           2s smoke of the same targets runs with the
#                           normal test step (ctest label "fuzz");
#                           IBSEG_FUZZ_TIME_SEC overrides the 30s.
#   IBSEG_RECLUSTER_CHECK=1 also run the background re-clustering suite
#                           (ctest label "recluster": differential
#                           bit-identity vs cold rebuild, generation-keyed
#                           cache, save/restore at generation > 0, trigger
#                           policy) explicitly, plus the recluster-touching
#                           differential + stress labels under
#                           ThreadSanitizer — the swap window is exactly
#                           where a reader/swapper race would hide.
#   IBSEG_NET_CHECK=1       also exercise the network front-end: the
#                           loopback server suite (ctest label "net") under
#                           AddressSanitizer, plus the operational smoke
#                           scripts/check_net.sh (real ibseg_server +
#                           ibseg_cli over TCP: cold start, wire commands,
#                           drain, warm restart) against both the plain and
#                           the ASan build.
#   IBSEG_REPL_CHECK=1      also exercise WAL-shipped replication: the
#                           replication suite (ctest label "replication":
#                           ship/apply bit-identity, wire bootstrap +
#                           catch-up + lag gauges, read-only replicas,
#                           leader fan-out, crash promotion) explicitly,
#                           then the same label under ThreadSanitizer —
#                           the polling thread applies segments while the
#                           replica's server threads answer queries,
#                           exactly where an apply/read race would hide.
#   IBSEG_TENANT_CHECK=1    also exercise multi-tenant serving: the tenant
#                           suite (ctest label "tenant": N-tenant process
#                           bit-identical to N single-tenant processes,
#                           save/restore + recluster per tenant, cache
#                           isolation, cross-tenant leakage probe, wire
#                           routing) explicitly, then the same label under
#                           ThreadSanitizer — tenants share the scatter
#                           pool and the metrics registry, exactly where a
#                           cross-tenant data race would hide. The gates
#                           (bench/graded_eval adversarial floors,
#                           bench/tenant_fairness_qps starvation bound)
#                           already run with the bench step below.

set -euo pipefail
cd "$(dirname "$0")/.."

SCALE="${1:-1}"

echo "== configure + build =="
cmake -B build -G Ninja
cmake --build build

echo "== tests =="
ctest --test-dir build 2>&1 | tee test_output.txt

if [ "${IBSEG_SANITIZE_CHECK:-0}" = "1" ]; then
  echo "== sanitizer matrix (IBSEG_SANITIZE_CHECK=1) =="
  scripts/check_sanitizers.sh
fi

if [ "${IBSEG_DIFF_CHECK:-0}" = "1" ]; then
  echo "== differential + stress under TSan (IBSEG_DIFF_CHECK=1) =="
  IBSEG_SAN_LABELS="differential|stress" scripts/check_sanitizers.sh thread
fi

if [ "${IBSEG_RECLUSTER_CHECK:-0}" = "1" ]; then
  echo "== background re-clustering epochs (IBSEG_RECLUSTER_CHECK=1) =="
  # Plain run of the recluster label (fast; also covered by the full ctest
  # above, repeated here so a recluster regression is named explicitly)...
  ctest --test-dir build -L recluster --output-on-failure
  # ... then the differential + stress labels under TSan: the atomic index
  # swap publishes a whole new pipeline under concurrent readers, and the
  # ReclusterWorker polls trigger atomics from its own thread.
  IBSEG_SAN_LABELS="differential|stress" scripts/check_sanitizers.sh thread
fi

if [ "${IBSEG_PERSIST_CHECK:-0}" = "1" ]; then
  echo "== persistence + crash injection (IBSEG_PERSIST_CHECK=1) =="
  # Plain run of both labels (fast; also covered by the full ctest above,
  # repeated here so a persistence regression is named explicitly) ...
  ctest --test-dir build -L 'storage|killsafety' --output-on-failure
  # ... then the same labels under ASan: the recovery paths shuffle raw
  # buffers (CRC frames, torn tails) and fork children that die by _exit,
  # exactly where a heap overflow would otherwise hide.
  IBSEG_SAN_LABELS="storage|killsafety" scripts/check_sanitizers.sh address
fi

if [ "${IBSEG_FUZZ_CHECK:-0}" = "1" ]; then
  echo "== fuzz smoke under ASan (IBSEG_FUZZ_CHECK=1) =="
  # One ASan build (shared with the other address-mode checks), then a
  # deterministic timed mutation run per target. Any crasher reproduces
  # from the printed PRNG seed; promote it to a regression test.
  cmake -B build-address -S . \
    -DIBSEG_SANITIZE=address \
    -DCMAKE_BUILD_TYPE=RelWithDebInfo >/dev/null
  cmake --build build-address -j "$(nproc)" \
    --target fuzz_snapshot fuzz_wal fuzz_unescape fuzz_flat_postings \
             fuzz_net_frame
  for target in fuzz_snapshot fuzz_wal fuzz_unescape fuzz_flat_postings \
                fuzz_net_frame; do
    echo "-- ${target}"
    env ASAN_OPTIONS="halt_on_error=1 detect_stack_use_after_return=1" \
        IBSEG_FUZZ_TIME_SEC="${IBSEG_FUZZ_TIME_SEC:-30}" \
        "build-address/tests/fuzz/${target}"
  done
fi

if [ "${IBSEG_NET_CHECK:-0}" = "1" ]; then
  echo "== network front-end (IBSEG_NET_CHECK=1) =="
  # Plain run of the loopback label (also covered by the full ctest above,
  # repeated here so a net regression is named explicitly), the loopback
  # suite under ASan — sockets, worker handoff, drain teardown are exactly
  # where a use-after-close would hide — and the operational smoke with
  # the real binaries, in both build flavors.
  ctest --test-dir build -L net --output-on-failure
  IBSEG_SAN_LABELS="net" scripts/check_sanitizers.sh address
  scripts/check_net.sh build
  cmake --build build-address -j "$(nproc)" --target ibseg_server ibseg_cli
  scripts/check_net.sh build-address
fi

if [ "${IBSEG_REPL_CHECK:-0}" = "1" ]; then
  echo "== WAL-shipped replication (IBSEG_REPL_CHECK=1) =="
  # Plain run of the replication label (also covered by the full ctest
  # above, repeated here so a replication regression is named explicitly)
  # ...
  ctest --test-dir build -L replication --output-on-failure
  # ... then the same label under TSan: apply_shipped publishes into the
  # replica's shards while its polling thread, lag-gauge writers and any
  # serving reads run concurrently.
  IBSEG_SAN_LABELS="replication" scripts/check_sanitizers.sh thread
fi

if [ "${IBSEG_TENANT_CHECK:-0}" = "1" ]; then
  echo "== multi-tenant serving (IBSEG_TENANT_CHECK=1) =="
  # Plain run of the tenant label (also covered by the full ctest above,
  # repeated here so a tenant regression is named explicitly) ...
  ctest --test-dir build -L tenant --output-on-failure
  # ... then the same label under TSan: every tenant's queries scatter on
  # the one shared thread pool and register into the one shared metrics
  # registry while the server's DRR dispatcher moves work between
  # per-tenant queues — the exact surfaces where cross-tenant races hide.
  IBSEG_SAN_LABELS="tenant" scripts/check_sanitizers.sh thread
fi

if [ "${IBSEG_DOCS_CHECK:-0}" = "1" ]; then
  echo "== docs check (IBSEG_DOCS_CHECK=1) =="
  if command -v doxygen >/dev/null 2>&1; then
    doxygen Doxyfile 2> doxygen_warnings.txt || true
    if grep -E 'src/(obs|core|index|net)/' doxygen_warnings.txt; then
      echo "error: doxygen warnings in src/obs, src/core, src/index" \
           "or src/net" >&2
      echo "       (full list: doxygen_warnings.txt)" >&2
      exit 1
    fi
    echo "doxygen warning-clean over src/obs, src/core, src/index, src/net"
  else
    echo "doxygen not installed; skipping docs check"
  fi
fi

echo "== benches (IBSEG_BENCH_SCALE=${SCALE}) =="
export IBSEG_BENCH_SCALE="${SCALE}"
for b in build/bench/*; do "$b"; done 2>&1 | tee bench_output.txt

echo "== bench JSON schema check =="
# The QPS benches must have produced machine-readable results with the
# fields the dashboards consume; a silent format drift fails here.
for key in '"bench"' '"configs"' '"query_threads"' '"cache"' '"qps"'; do
  if ! grep -q "${key}" BENCH_parallel_query_qps.json; then
    echo "error: BENCH_parallel_query_qps.json missing key ${key}" >&2
    exit 1
  fi
done
echo "BENCH_parallel_query_qps.json schema OK"
for key in '"bench"' '"cold_build_sec"' '"snapshot_save_sec"' \
           '"warm_restore_sec"' '"snapshot_bytes"'; do
  if ! grep -q "${key}" BENCH_persist_restore.json; then
    echo "error: BENCH_persist_restore.json missing key ${key}" >&2
    exit 1
  fi
done
echo "BENCH_persist_restore.json schema OK"
for key in '"bench"' '"configs"' '"shards"' '"qps"' '"ingests"'; do
  if ! grep -q "${key}" BENCH_sharded_qps.json; then
    echo "error: BENCH_sharded_qps.json missing key ${key}" >&2
    exit 1
  fi
done
echo "BENCH_sharded_qps.json schema OK"
for key in '"bench"' '"configs"' '"query_threads"' '"pruned"' '"qps"' \
           '"units_scored"' '"units_pruned"' '"speedup_vs_exhaustive"'; do
  if ! grep -q "${key}" BENCH_pruned_query_qps.json; then
    echo "error: BENCH_pruned_query_qps.json missing key ${key}" >&2
    exit 1
  fi
done
echo "BENCH_pruned_query_qps.json schema OK"
for key in '"bench"' '"configs"' '"clients"' '"qps"' '"p50_ms"' '"p95_ms"' \
           '"p99_ms"'; do
  if ! grep -q "${key}" BENCH_server_qps.json; then
    echo "error: BENCH_server_qps.json missing key ${key}" >&2
    exit 1
  fi
done
echo "BENCH_server_qps.json schema OK"
for key in '"bench"' '"configs"' '"replicas"' '"clients"' '"qps"' \
           '"p50_ms"' '"p95_ms"' '"p99_ms"'; do
  if ! grep -q "${key}" BENCH_replica_qps.json; then
    echo "error: BENCH_replica_qps.json missing key ${key}" >&2
    exit 1
  fi
done
echo "BENCH_replica_qps.json schema OK"
for key in '"bench"' '"recluster_sec"' '"pending_before"' \
           '"pending_after"' '"qps_quiescent"' '"qps_during_swap"' \
           '"qps_dip_fraction"' '"offline_generation"'; do
  if ! grep -q "${key}" BENCH_recluster.json; then
    echo "error: BENCH_recluster.json missing key ${key}" >&2
    exit 1
  fi
done
echo "BENCH_recluster.json schema OK"
for key in '"bench"' '"profiles"' '"mean_prec5"' '"mean_ndcg5"' '"floor"' \
           '"pass"'; do
  if ! grep -q "${key}" BENCH_adversarial_eval.json; then
    echo "error: BENCH_adversarial_eval.json missing key ${key}" >&2
    exit 1
  fi
done
echo "BENCH_adversarial_eval.json schema OK"
for key in '"bench"' '"tenants"' '"tenant"' '"phase"' '"qps"' '"p50_ms"' \
           '"p95_ms"' '"p99_ms"' '"gate"' '"bound_ms"'; do
  if ! grep -q "${key}" BENCH_tenant_fairness.json; then
    echo "error: BENCH_tenant_fairness.json missing key ${key}" >&2
    exit 1
  fi
done
echo "BENCH_tenant_fairness.json schema OK"

echo "== examples =="
./build/examples/quickstart
./build/examples/tech_support_forum
./build/examples/travel_reviews
./build/examples/segmentation_explorer </dev/null
./build/examples/run_experiment 200 experiment_results.csv

echo "done; see test_output.txt, bench_output.txt, experiment_results.csv"
