#!/usr/bin/env bash
# Builds the whole project (library, tests, benches, examples) under each
# sanitizer and runs the test suite in every mode. The concurrency serving
# layer is only considered correct when TSan is silent on the stress suite
# and ASan/UBSan are silent on everything.
#
# Usage: scripts/check_sanitizers.sh [thread|address|undefined]...
#   With no arguments, all three modes run. Each mode uses its own build
#   directory (build-thread/, build-address/, build-undefined/).
#
# Environment:
#   IBSEG_SAN_JOBS    parallel build/test jobs (default: nproc)
#   IBSEG_SAN_LABELS  ctest -L label regex (default: "unit|stress")

set -euo pipefail
cd "$(dirname "$0")/.."

MODES=("$@")
if [ ${#MODES[@]} -eq 0 ]; then
  MODES=(thread address undefined)
fi
JOBS="${IBSEG_SAN_JOBS:-$(nproc)}"
LABELS="${IBSEG_SAN_LABELS:-unit|stress}"

for mode in "${MODES[@]}"; do
  dir="build-${mode}"
  echo "== [${mode}] configure + build (${dir}) =="
  cmake -B "${dir}" -S . \
    -DIBSEG_SANITIZE="${mode}" \
    -DCMAKE_BUILD_TYPE=RelWithDebInfo >/dev/null
  cmake --build "${dir}" -j "${JOBS}"

  echo "== [${mode}] ctest -L '${LABELS}' =="
  # halt_on_error turns any report into a test failure instead of a log
  # line, so a single race/overflow fails the run.
  env \
    TSAN_OPTIONS="halt_on_error=1 second_deadlock_stack=1" \
    ASAN_OPTIONS="halt_on_error=1 detect_stack_use_after_return=1" \
    UBSAN_OPTIONS="halt_on_error=1 print_stacktrace=1" \
    ctest --test-dir "${dir}" -L "${LABELS}" -j "${JOBS}" \
      --output-on-failure
  echo "== [${mode}] OK =="
done

echo "sanitizer matrix clean: ${MODES[*]}"
