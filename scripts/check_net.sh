#!/usr/bin/env bash
# End-to-end loopback smoke of the network front-end, using the real
# binaries over a real TCP socket — the same drill an operator runs
# (docs/OPERATIONS.md): cold start with durable state, ping / query /
# ask / add / wire metrics through ibseg_cli --connect, graceful drain
# over the wire (process must exit 0 and print "drained cleanly"), then
# a warm restart from the drained directory answering the post-ingest
# query identically. The byte-level protocol tests live in ctest (labels
# "unit", "net", "fuzz"); this script checks the *operational* surface:
# flags, port files, signal-free drain, state-directory round trip.
#
# Usage: scripts/check_net.sh [build-dir]     (default: build)
#   The build-dir argument lets reproduce.sh run the same smoke against
#   the AddressSanitizer build (build-address).

set -euo pipefail
cd "$(dirname "$0")/.."

BUILD="${1:-build}"
SERVER="${BUILD}/examples/ibseg_server"
CLI="${BUILD}/examples/ibseg_cli"
for bin in "${SERVER}" "${CLI}"; do
  if [ ! -x "${bin}" ]; then
    echo "error: ${bin} not built" >&2
    exit 1
  fi
done

WORK="$(mktemp -d)"
SERVER_PID=""
cleanup() {
  if [ -n "${SERVER_PID}" ] && kill -0 "${SERVER_PID}" 2>/dev/null; then
    kill "${SERVER_PID}" 2>/dev/null || true
    wait "${SERVER_PID}" 2>/dev/null || true
  fi
  rm -rf "${WORK}"
}
trap cleanup EXIT

wait_port() {
  # The server writes its bound port to --port-file once listening;
  # generous deadline because sanitizer builds start slowly.
  local file="$1" i
  for i in $(seq 1 200); do
    if [ -s "${file}" ]; then
      cat "${file}"
      return 0
    fi
    sleep 0.1
  done
  echo "error: server never wrote ${file}" >&2
  return 1
}

echo "-- generate corpus"
"${CLI}" generate tech 40 "${WORK}/posts.corpus" >/dev/null

echo "-- cold start (ephemeral port, durable state)"
"${SERVER}" --corpus="${WORK}/posts.corpus" --shards=2 \
    --state="${WORK}/state.d" --port=0 --port-file="${WORK}/port" \
    >"${WORK}/server.log" 2>&1 &
SERVER_PID=$!
PORT="$(wait_port "${WORK}/port")"
ADDR="127.0.0.1:${PORT}"

echo "-- ping"
"${CLI}" --connect="${ADDR}" ping | grep -q "pong: epoch 0, 40 docs"

echo "-- add (acknowledged ingest)"
echo "my laptop powers off randomly and the battery drains fast" | \
    "${CLI}" --connect="${ADDR}" add | grep -q "added doc 40"

echo "-- query (post-ingest reference output)"
"${CLI}" --connect="${ADDR}" query 0 5 | tee "${WORK}/query_before.txt" | \
    grep -q "epoch 1, 41 docs"

echo "-- ask (external post)"
echo "the wifi drops every few minutes after resume" | \
    "${CLI}" --connect="${ADDR}" ask 3 | grep -q "epoch 1, 41 docs"

echo "-- metrics over the wire"
"${CLI}" --connect="${ADDR}" --metrics ping >"${WORK}/metrics.txt"
for series in ibseg_net_connections ibseg_net_requests_total \
              ibseg_net_rejected_total ibseg_net_request_seconds; do
  grep -q "${series}" "${WORK}/metrics.txt" || {
    echo "error: ${series} missing from wire metrics" >&2
    exit 1
  }
done

echo "-- drain over the wire"
"${CLI}" --connect="${ADDR}" drain | grep -q "draining"
wait "${SERVER_PID}"
SERVER_PID=""
grep -q "drained cleanly" "${WORK}/server.log" || {
  echo "error: server did not report a clean drain" >&2
  cat "${WORK}/server.log" >&2
  exit 1
}

echo "-- warm restart from the drained state"
: >"${WORK}/port"
"${SERVER}" --restore="${WORK}/state.d" --state="${WORK}/state.d" \
    --port=0 --port-file="${WORK}/port" \
    >"${WORK}/server2.log" 2>&1 &
SERVER_PID=$!
PORT="$(wait_port "${WORK}/port")"
ADDR="127.0.0.1:${PORT}"

# The acknowledged ingest survived (41 docs, epoch 1) and the query
# answers exactly as before the drain.
"${CLI}" --connect="${ADDR}" ping | grep -q "pong: epoch 1, 41 docs"
"${CLI}" --connect="${ADDR}" query 0 5 >"${WORK}/query_after.txt"
diff "${WORK}/query_before.txt" "${WORK}/query_after.txt"

echo "-- drain restarted server"
"${CLI}" --connect="${ADDR}" drain >/dev/null
wait "${SERVER_PID}"
SERVER_PID=""

echo "net loopback smoke OK (${BUILD})"
