// Closed-loop load generator for the network front-end: N client threads,
// each with its own TCP connection to an in-process ibseg net::Server,
// each looping send-QUERY / wait-for-RELATED for the measurement window.
// Closed loop means offered load adapts to service rate — every thread has
// exactly one request outstanding — so the table reads as "at this
// concurrency, this throughput at these latencies", with client-observed
// p50/p95/p99 per configuration.
//
// **This binary deliberately does NOT link net/client.h or the encoders in
// net/frame.h.** Every frame it sends and parses is hand-rolled from the
// byte tables in docs/PROTOCOL.md (§2 frame header, §4.2 QUERY, §5.2
// RELATED, §5.7 ERROR) — an independent second implementation of the wire
// format, so the bench doubles as a conformance check that the document
// is sufficient to interoperate from. If the server and this file
// disagree, one of them diverged from the document; fix against the
// document (it is normative).
//
// Results print as a table and land in BENCH_server_qps.json (current
// working directory); scripts/reproduce.sh checks the JSON schema.
// IBSEG_BENCH_SCALE scales the corpus; IBSEG_QPS_WINDOW_MS overrides the
// per-configuration window.

#include <arpa/inet.h>
#include <netinet/in.h>
#include <netinet/tcp.h>
#include <sys/socket.h>
#include <unistd.h>

#include <algorithm>
#include <atomic>
#include <chrono>
#include <cstdint>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <iostream>
#include <memory>
#include <string>
#include <thread>
#include <vector>

#include "bench/bench_common.h"
#include "core/sharded_serving.h"
#include "net/server.h"
#include "util/rng.h"
#include "util/stopwatch.h"
#include "util/table_printer.h"

namespace ibseg {
namespace {

// ------------------------------------------------------------------------
// Hand-rolled wire format, transcribed from docs/PROTOCOL.md. Integers are
// little-endian; the frame header is 12 bytes (§2).

constexpr uint8_t kTypeQuery = 0x02;    // §3: QUERY request
constexpr uint8_t kTypeRelated = 0x82;  // §3: RELATED response

void put_u32(std::string* out, uint32_t v) {
  for (int i = 0; i < 4; ++i) out->push_back(static_cast<char>(v >> (8 * i)));
}

uint32_t get_u32(const uint8_t* p) {
  return static_cast<uint32_t>(p[0]) | static_cast<uint32_t>(p[1]) << 8 |
         static_cast<uint32_t>(p[2]) << 16 | static_cast<uint32_t>(p[3]) << 24;
}

/// §2: "IBSN" | version 1 | type | two zero reserved bytes | payload
/// length (u32 LE) | payload.
std::string make_frame(uint8_t type, const std::string& payload) {
  std::string frame = "IBSN";
  frame.push_back(1);
  frame.push_back(static_cast<char>(type));
  frame.push_back(0);
  frame.push_back(0);
  put_u32(&frame, static_cast<uint32_t>(payload.size()));
  frame += payload;
  return frame;
}

/// §4.2: QUERY payload = doc_id (u32 LE) | k (u32 LE).
std::string make_query_frame(uint32_t doc_id, uint32_t k) {
  std::string payload;
  put_u32(&payload, doc_id);
  put_u32(&payload, k);
  return make_frame(kTypeQuery, payload);
}

bool send_all(int fd, const std::string& bytes) {
  size_t off = 0;
  while (off < bytes.size()) {
    ssize_t n = ::send(fd, bytes.data() + off, bytes.size() - off,
                       MSG_NOSIGNAL);
    if (n <= 0) {
      if (n < 0 && errno == EINTR) continue;
      return false;
    }
    off += static_cast<size_t>(n);
  }
  return true;
}

bool recv_exact(int fd, uint8_t* buf, size_t len) {
  size_t off = 0;
  while (off < len) {
    ssize_t n = ::recv(fd, buf + off, len - off, 0);
    if (n <= 0) {
      if (n < 0 && errno == EINTR) continue;
      return false;
    }
    off += static_cast<size_t>(n);
  }
  return true;
}

/// Reads one response frame and validates it against §2/§5.2: a RELATED
/// answer whose payload is epoch u64 | num_docs u64 | count u32 | count ×
/// (doc u32 | score f64) — 20 + 12*count bytes exactly.
bool read_related_response(int fd, uint32_t expect_max_results) {
  uint8_t header[12];
  if (!recv_exact(fd, header, sizeof(header))) return false;
  if (std::memcmp(header, "IBSN", 4) != 0 || header[4] != 1 ||
      header[6] != 0 || header[7] != 0) {
    return false;
  }
  const uint8_t type = header[5];
  const uint32_t payload_len = get_u32(header + 8);
  if (payload_len > 16u * 1024u * 1024u) return false;
  std::vector<uint8_t> payload(payload_len);
  if (payload_len > 0 && !recv_exact(fd, payload.data(), payload_len)) {
    return false;
  }
  if (type != kTypeRelated) return false;  // ERROR (§5.7) counts as failure
  if (payload_len < 20) return false;
  const uint32_t count = get_u32(payload.data() + 16);
  if (count > expect_max_results) return false;
  return payload_len == 20 + 12ull * count;
}

int connect_loopback(uint16_t port) {
  int fd = ::socket(AF_INET, SOCK_STREAM, 0);
  if (fd < 0) return -1;
  sockaddr_in addr;
  std::memset(&addr, 0, sizeof(addr));
  addr.sin_family = AF_INET;
  addr.sin_port = htons(port);
  ::inet_pton(AF_INET, "127.0.0.1", &addr.sin_addr);
  if (::connect(fd, reinterpret_cast<sockaddr*>(&addr), sizeof(addr)) != 0) {
    ::close(fd);
    return -1;
  }
  int one = 1;
  ::setsockopt(fd, IPPROTO_TCP, TCP_NODELAY, &one, sizeof(one));
  return fd;
}

// ------------------------------------------------------------------------

struct LoadRow {
  int clients = 0;
  double qps = 0.0;
  uint64_t queries = 0;
  uint64_t errors = 0;
  double p50_ms = 0.0;
  double p95_ms = 0.0;
  double p99_ms = 0.0;
};

std::string fmt(double v, int precision) {
  char buf[64];
  std::snprintf(buf, sizeof(buf), "%.*f", precision, v);
  return buf;
}

int window_ms() {
  const char* env = std::getenv("IBSEG_QPS_WINDOW_MS");
  if (env == nullptr) return 1200;
  int v = std::atoi(env);
  return v > 0 ? v : 1200;
}

double percentile(std::vector<double>& sorted_ms, double q) {
  if (sorted_ms.empty()) return 0.0;
  size_t idx = static_cast<size_t>(q * static_cast<double>(sorted_ms.size()));
  if (idx >= sorted_ms.size()) idx = sorted_ms.size() - 1;
  return sorted_ms[idx];
}

LoadRow run_config(uint16_t port, size_t num_docs, int clients) {
  const double window_sec = window_ms() / 1000.0;
  constexpr uint32_t kTopK = 5;

  std::vector<std::vector<double>> latencies(clients);
  std::vector<uint64_t> errors(clients, 0);
  std::atomic<bool> go{false};
  std::vector<std::thread> threads;
  threads.reserve(clients);
  for (int t = 0; t < clients; ++t) {
    threads.emplace_back([&, t] {
      int fd = connect_loopback(port);
      if (fd < 0) {
        ++errors[static_cast<size_t>(t)];
        return;
      }
      Rng rng(1000 + static_cast<uint64_t>(t));
      while (!go.load(std::memory_order_acquire)) {
        std::this_thread::yield();
      }
      Stopwatch window;
      while (window.elapsed_seconds() < window_sec) {
        const uint32_t doc = static_cast<uint32_t>(rng.next_below(num_docs));
        Stopwatch one;
        bool ok = send_all(fd, make_query_frame(doc, kTopK)) &&
                  read_related_response(fd, kTopK);
        if (ok) {
          latencies[static_cast<size_t>(t)].push_back(
              one.elapsed_seconds() * 1000.0);
        } else {
          ++errors[static_cast<size_t>(t)];
        }
      }
      ::close(fd);
    });
  }

  Stopwatch watch;
  go.store(true, std::memory_order_release);
  for (std::thread& th : threads) th.join();
  const double elapsed = watch.elapsed_seconds();

  std::vector<double> all_ms;
  uint64_t total_errors = 0;
  for (int t = 0; t < clients; ++t) {
    const auto& v = latencies[static_cast<size_t>(t)];
    all_ms.insert(all_ms.end(), v.begin(), v.end());
    total_errors += errors[static_cast<size_t>(t)];
  }
  std::sort(all_ms.begin(), all_ms.end());

  LoadRow row;
  row.clients = clients;
  row.queries = all_ms.size();
  row.errors = total_errors;
  row.qps = elapsed > 0.0 ? static_cast<double>(all_ms.size()) / elapsed : 0.0;
  row.p50_ms = percentile(all_ms, 0.50);
  row.p95_ms = percentile(all_ms, 0.95);
  row.p99_ms = percentile(all_ms, 0.99);
  return row;
}

}  // namespace
}  // namespace ibseg

int main() {
  using namespace ibseg;
  using namespace ibseg::bench;

  const size_t corpus_size = static_cast<size_t>(240 * bench_scale());
  GeneratorOptions gen = eval_profile(ForumDomain::kTechSupport, corpus_size);
  SyntheticCorpus corpus = generate_corpus(gen);

  ServingOptions serving;
  serving.num_shards = 2;
  std::unique_ptr<ShardedServing> backend =
      ShardedServing::create(analyze_corpus(corpus), {}, serving);
  if (backend == nullptr) {
    std::fprintf(stderr, "server_qps: backend build failed\n");
    return 1;
  }

  net::ServerOptions options;
  options.port = 0;  // ephemeral
  options.num_workers = 2;
  net::Server server(backend.get(), options);
  if (!server.start()) {
    std::fprintf(stderr, "server_qps: server start failed\n");
    return 1;
  }

  std::vector<LoadRow> rows;
  for (int clients : {1, 2, 4, 8}) {
    rows.push_back(run_config(server.port(), backend->num_docs(), clients));
  }
  server.drain();

  TablePrinter table({"clients", "queries/sec", "p50 ms", "p95 ms", "p99 ms",
                      "errors"});
  for (const LoadRow& row : rows) {
    table.add_row({std::to_string(row.clients), fmt(row.qps, 1),
                   fmt(row.p50_ms, 3), fmt(row.p95_ms, 3), fmt(row.p99_ms, 3),
                   std::to_string(row.errors)});
  }
  std::printf(
      "server_qps: closed-loop QUERY load over loopback TCP "
      "(hand-rolled docs/PROTOCOL.md frames)\n");
  table.print(std::cout);

  FILE* out = std::fopen("BENCH_server_qps.json", "w");
  if (out != nullptr) {
    std::fprintf(out, "{\n  \"bench\": \"server_qps\",\n");
    std::fprintf(out, "  \"corpus_posts\": %zu,\n", corpus_size);
    std::fprintf(out, "  \"window_ms\": %d,\n", window_ms());
    std::fprintf(out, "  \"hardware_threads\": %u,\n",
                 std::thread::hardware_concurrency());
    std::fprintf(out, "  \"configs\": [\n");
    for (size_t i = 0; i < rows.size(); ++i) {
      const LoadRow& row = rows[i];
      std::fprintf(out,
                   "    {\"clients\": %d, \"qps\": %.1f, "
                   "\"queries\": %llu, \"errors\": %llu, "
                   "\"p50_ms\": %.3f, \"p95_ms\": %.3f, \"p99_ms\": %.3f}%s\n",
                   row.clients, row.qps,
                   static_cast<unsigned long long>(row.queries),
                   static_cast<unsigned long long>(row.errors),
                   row.p50_ms, row.p95_ms, row.p99_ms,
                   i + 1 < rows.size() ? "," : "");
    }
    std::fprintf(out, "  ]\n}\n");
    std::fclose(out);
    std::printf("wrote BENCH_server_qps.json\n");
  }

  uint64_t total_errors = 0;
  for (const LoadRow& row : rows) total_errors += row.errors;
  return total_errors == 0 ? 0 : 1;
}
