// Read fan-out throughput: a leader net::Server configured with 0, 1 or 2
// read replicas (each a bit-identical ShardedServing behind its own
// read-only server, all in-process on loopback), hammered by a closed-loop
// QUERY load. The replicas-0 row is the baseline — every query executes on
// the leader's backend; the other rows route queries round-robin across
// the replica pool (docs/ARCHITECTURE.md §10), so the table answers the
// operational question "what does adding a replica buy at this
// concurrency".
//
// Replicas here are built from the same corpus rather than WAL-shipped:
// fan-out correctness (replica answers byte-identical to local) is the
// replication test suite's job; this bench isolates the serving-path cost
// of the indirection. Results print as a table and land in
// BENCH_replica_qps.json; scripts/reproduce.sh IBSEG_REPL_CHECK=1 checks
// the JSON schema. IBSEG_BENCH_SCALE scales the corpus;
// IBSEG_QPS_WINDOW_MS overrides the per-configuration window.

#include <algorithm>
#include <atomic>
#include <cstdint>
#include <cstdio>
#include <cstdlib>
#include <iostream>
#include <memory>
#include <string>
#include <thread>
#include <vector>

#include "bench/bench_common.h"
#include "core/sharded_serving.h"
#include "net/client.h"
#include "net/server.h"
#include "util/rng.h"
#include "util/stopwatch.h"
#include "util/table_printer.h"

namespace ibseg {
namespace {

struct LoadRow {
  int replicas = 0;
  int clients = 0;
  double qps = 0.0;
  uint64_t queries = 0;
  uint64_t errors = 0;
  double p50_ms = 0.0;
  double p95_ms = 0.0;
  double p99_ms = 0.0;
};

std::string fmt(double v, int precision) {
  char buf[64];
  std::snprintf(buf, sizeof(buf), "%.*f", precision, v);
  return buf;
}

int window_ms() {
  const char* env = std::getenv("IBSEG_QPS_WINDOW_MS");
  if (env == nullptr) return 1200;
  int v = std::atoi(env);
  return v > 0 ? v : 1200;
}

double percentile(std::vector<double>& sorted_ms, double q) {
  if (sorted_ms.empty()) return 0.0;
  size_t idx = static_cast<size_t>(q * static_cast<double>(sorted_ms.size()));
  if (idx >= sorted_ms.size()) idx = sorted_ms.size() - 1;
  return sorted_ms[idx];
}

LoadRow run_config(uint16_t port, size_t num_docs, int replicas,
                   int clients) {
  const double window_sec = window_ms() / 1000.0;
  constexpr uint32_t kTopK = 5;

  std::vector<std::vector<double>> latencies(clients);
  std::vector<uint64_t> errors(clients, 0);
  std::atomic<bool> go{false};
  std::vector<std::thread> threads;
  threads.reserve(clients);
  for (int t = 0; t < clients; ++t) {
    threads.emplace_back([&, t] {
      auto client = net::Client::connect("127.0.0.1", port);
      if (client == nullptr) {
        ++errors[static_cast<size_t>(t)];
        return;
      }
      Rng rng(2000 + static_cast<uint64_t>(t));
      while (!go.load(std::memory_order_acquire)) {
        std::this_thread::yield();
      }
      Stopwatch window;
      while (window.elapsed_seconds() < window_sec) {
        const DocId doc = static_cast<DocId>(rng.next_below(num_docs));
        Stopwatch one;
        net::RelatedResponse related;
        if (client->query(doc, kTopK, &related).ok()) {
          latencies[static_cast<size_t>(t)].push_back(
              one.elapsed_seconds() * 1000.0);
        } else {
          ++errors[static_cast<size_t>(t)];
        }
      }
    });
  }

  Stopwatch watch;
  go.store(true, std::memory_order_release);
  for (std::thread& th : threads) th.join();
  const double elapsed = watch.elapsed_seconds();

  std::vector<double> all_ms;
  uint64_t total_errors = 0;
  for (int t = 0; t < clients; ++t) {
    const auto& v = latencies[static_cast<size_t>(t)];
    all_ms.insert(all_ms.end(), v.begin(), v.end());
    total_errors += errors[static_cast<size_t>(t)];
  }
  std::sort(all_ms.begin(), all_ms.end());

  LoadRow row;
  row.replicas = replicas;
  row.clients = clients;
  row.queries = all_ms.size();
  row.errors = total_errors;
  row.qps = elapsed > 0.0 ? static_cast<double>(all_ms.size()) / elapsed : 0.0;
  row.p50_ms = percentile(all_ms, 0.50);
  row.p95_ms = percentile(all_ms, 0.95);
  row.p99_ms = percentile(all_ms, 0.99);
  return row;
}

}  // namespace
}  // namespace ibseg

int main() {
  using namespace ibseg;
  using namespace ibseg::bench;

  const size_t corpus_size = static_cast<size_t>(240 * bench_scale());
  GeneratorOptions gen = eval_profile(ForumDomain::kTechSupport, corpus_size);
  std::vector<Document> docs = analyze_corpus(generate_corpus(gen));

  ServingOptions serving;
  serving.num_shards = 2;
  std::unique_ptr<ShardedServing> leader =
      ShardedServing::create(docs, {}, serving);
  if (leader == nullptr) {
    std::fprintf(stderr, "replica_fanout_qps: leader build failed\n");
    return 1;
  }

  // Replica pool: identical deployments behind read-only servers. Built
  // once; each fan-out configuration points at a prefix of the pool.
  constexpr int kMaxReplicas = 2;
  std::vector<std::unique_ptr<ShardedServing>> replica_backends;
  std::vector<std::unique_ptr<net::Server>> replica_servers;
  std::vector<std::string> replica_addresses;
  for (int r = 0; r < kMaxReplicas; ++r) {
    auto backend = ShardedServing::create(docs, {}, serving);
    if (backend == nullptr) {
      std::fprintf(stderr, "replica_fanout_qps: replica build failed\n");
      return 1;
    }
    net::ServerOptions options;
    options.port = 0;
    options.num_workers = 2;
    options.read_only = true;
    auto server = std::make_unique<net::Server>(backend.get(), options);
    if (!server->start()) {
      std::fprintf(stderr, "replica_fanout_qps: replica server failed\n");
      return 1;
    }
    replica_addresses.push_back("127.0.0.1:" +
                                std::to_string(server->port()));
    replica_backends.push_back(std::move(backend));
    replica_servers.push_back(std::move(server));
  }

  constexpr int kClients = 8;
  std::vector<LoadRow> rows;
  for (int replicas : {0, 1, 2}) {
    net::ServerOptions options;
    options.port = 0;
    options.num_workers = 2;
    options.read_replicas.assign(replica_addresses.begin(),
                                 replica_addresses.begin() + replicas);
    net::Server front(leader.get(), options);
    if (!front.start()) {
      std::fprintf(stderr, "replica_fanout_qps: front server failed\n");
      return 1;
    }
    rows.push_back(
        run_config(front.port(), leader->num_docs(), replicas, kClients));
    front.drain();
  }
  for (auto& server : replica_servers) server->drain();

  TablePrinter table({"replicas", "clients", "queries/sec", "p50 ms",
                      "p95 ms", "p99 ms", "errors"});
  for (const LoadRow& row : rows) {
    table.add_row({std::to_string(row.replicas), std::to_string(row.clients),
                   fmt(row.qps, 1), fmt(row.p50_ms, 3), fmt(row.p95_ms, 3),
                   fmt(row.p99_ms, 3), std::to_string(row.errors)});
  }
  std::printf(
      "replica_fanout_qps: closed-loop QUERY load against a leader with "
      "0/1/2 read replicas\n");
  table.print(std::cout);

  FILE* out = std::fopen("BENCH_replica_qps.json", "w");
  if (out != nullptr) {
    std::fprintf(out, "{\n  \"bench\": \"replica_fanout_qps\",\n");
    std::fprintf(out, "  \"corpus_posts\": %zu,\n", corpus_size);
    std::fprintf(out, "  \"window_ms\": %d,\n", window_ms());
    std::fprintf(out, "  \"hardware_threads\": %u,\n",
                 std::thread::hardware_concurrency());
    std::fprintf(out, "  \"configs\": [\n");
    for (size_t i = 0; i < rows.size(); ++i) {
      const LoadRow& row = rows[i];
      std::fprintf(out,
                   "    {\"replicas\": %d, \"clients\": %d, \"qps\": %.1f, "
                   "\"queries\": %llu, \"errors\": %llu, "
                   "\"p50_ms\": %.3f, \"p95_ms\": %.3f, \"p99_ms\": %.3f}%s\n",
                   row.replicas, row.clients, row.qps,
                   static_cast<unsigned long long>(row.queries),
                   static_cast<unsigned long long>(row.errors),
                   row.p50_ms, row.p95_ms, row.p99_ms,
                   i + 1 < rows.size() ? "," : "");
    }
    std::fprintf(out, "  ]\n}\n");
    std::fclose(out);
    std::printf("wrote BENCH_replica_qps.json\n");
  }

  uint64_t total_errors = 0;
  for (const LoadRow& row : rows) total_errors += row.errors;
  return total_errors == 0 ? 0 : 1;
}
