// Sharded scatter-gather throughput: queries/sec through
// ShardedServing::find_related at 1, 2, 4 and 8 shards while a background
// writer streams ingests — the mixed read/write regime sharding is for.
// Every configuration serves the identical corpus (sharding is
// bit-identical by construction, so the rows differ only in cost), which
// makes the table a pure overhead/scaling measurement: the 1-shard row is
// the scatter layer's fixed tax over a plain ServingPipeline, and the
// higher rows show how fan-out amortizes under per-shard locking. On a
// single-core container the thread rows report hardware-limited numbers
// (hardware_threads lands in the JSON for exactly that reason).
//
// Results print as a table and are recorded in BENCH_sharded_qps.json
// (current working directory); scripts/reproduce.sh checks the JSON
// schema. IBSEG_BENCH_SCALE scales the corpus; IBSEG_QPS_WINDOW_MS
// overrides the per-configuration measurement window.

#include <atomic>
#include <chrono>
#include <cstdint>
#include <cstdio>
#include <cstdlib>
#include <iostream>
#include <string>
#include <thread>
#include <vector>

#include "bench/bench_common.h"
#include "core/sharded_serving.h"
#include "util/rng.h"
#include "util/stopwatch.h"
#include "util/table_printer.h"

namespace ibseg {
namespace {

struct ShardRow {
  int shards = 0;
  double qps = 0.0;
  uint64_t queries = 0;
  uint64_t ingests = 0;
};

std::string fmt(double v, int precision) {
  char buf[64];
  std::snprintf(buf, sizeof(buf), "%.*f", precision, v);
  return buf;
}

int window_ms() {
  const char* env = std::getenv("IBSEG_QPS_WINDOW_MS");
  if (env == nullptr) return 1200;
  int v = std::atoi(env);
  return v > 0 ? v : 1200;
}

ShardRow run_config(const SyntheticCorpus& corpus,
                    const std::vector<std::string>& ingest_texts,
                    int shards) {
  ServingOptions options;
  options.num_shards = shards;
  std::unique_ptr<ShardedServing> serving =
      ShardedServing::create(analyze_corpus(corpus), {}, options);
  if (serving == nullptr) {
    std::fprintf(stderr, "sharded_qps: create failed at %d shards\n", shards);
    std::exit(1);
  }
  const size_t num_docs = serving->num_docs();

  // Background writer: a steady ingest trickle for the whole window, so
  // every query row is measured against concurrent publications (the
  // trickle cycles through the prepared texts; ids never repeat).
  std::atomic<bool> stop{false};
  std::atomic<uint64_t> ingested{0};
  std::thread writer([&] {
    size_t i = 0;
    while (!stop.load(std::memory_order_relaxed)) {
      serving->add_post(ingest_texts[i++ % ingest_texts.size()]);
      ingested.fetch_add(1, std::memory_order_relaxed);
      std::this_thread::sleep_for(std::chrono::milliseconds(2));
    }
  });

  Rng rng(99);
  const double window_sec = window_ms() / 1000.0;
  uint64_t queries = 0;
  Stopwatch watch;
  while (watch.elapsed_seconds() < window_sec) {
    serving->find_related(static_cast<DocId>(rng.next_below(num_docs)), 5);
    ++queries;
  }
  double elapsed = watch.elapsed_seconds();
  stop.store(true, std::memory_order_relaxed);
  writer.join();

  ShardRow row;
  row.shards = shards;
  row.queries = queries;
  row.qps = static_cast<double>(queries) / elapsed;
  row.ingests = ingested.load(std::memory_order_relaxed);
  return row;
}

}  // namespace
}  // namespace ibseg

int main() {
  using namespace ibseg;
  using namespace ibseg::bench;

  const size_t corpus_size = static_cast<size_t>(240 * bench_scale());
  GeneratorOptions gen = eval_profile(ForumDomain::kTechSupport, corpus_size);
  SyntheticCorpus corpus = generate_corpus(gen);

  GeneratorOptions extra_gen =
      eval_profile(ForumDomain::kTechSupport, 32);
  extra_gen.seed = gen.seed + 1;
  SyntheticCorpus extra = generate_corpus(extra_gen);
  std::vector<std::string> ingest_texts;
  for (const GeneratedPost& p : extra.posts) ingest_texts.push_back(p.text);

  std::vector<ShardRow> rows;
  for (int shards : {1, 2, 4, 8}) {
    rows.push_back(run_config(corpus, ingest_texts, shards));
  }

  double base_qps = rows[0].qps;
  TablePrinter table(
      {"shards", "queries/sec", "ingests during window", "vs 1 shard"});
  for (const ShardRow& row : rows) {
    table.add_row({std::to_string(row.shards), fmt(row.qps, 1),
                   std::to_string(row.ingests),
                   fmt(base_qps > 0.0 ? row.qps / base_qps : 0.0, 2)});
  }
  std::printf(
      "sharded_qps: scatter-gather query throughput under concurrent "
      "ingest\n");
  table.print(std::cout);

  FILE* out = std::fopen("BENCH_sharded_qps.json", "w");
  if (out != nullptr) {
    std::fprintf(out, "{\n  \"bench\": \"sharded_qps\",\n");
    std::fprintf(out, "  \"corpus_posts\": %zu,\n", corpus_size);
    std::fprintf(out, "  \"window_ms\": %d,\n", window_ms());
    std::fprintf(out, "  \"hardware_threads\": %u,\n",
                 std::thread::hardware_concurrency());
    std::fprintf(out, "  \"configs\": [\n");
    for (size_t i = 0; i < rows.size(); ++i) {
      const ShardRow& row = rows[i];
      std::fprintf(out,
                   "    {\"shards\": %d, \"qps\": %.1f, "
                   "\"queries\": %llu, \"ingests\": %llu, "
                   "\"speedup_vs_one_shard\": %.2f}%s\n",
                   row.shards, row.qps,
                   static_cast<unsigned long long>(row.queries),
                   static_cast<unsigned long long>(row.ingests),
                   base_qps > 0.0 ? row.qps / base_qps : 0.0,
                   i + 1 < rows.size() ? "," : "");
    }
    std::fprintf(out, "  ]\n}\n");
    std::fclose(out);
    std::printf("wrote BENCH_sharded_qps.json\n");
  }
  return 0;
}
