// Operational cost of one background re-clustering epoch
// (docs/ARCHITECTURE.md §9): what a deployment pays to run recluster()
// and what happens to reads while it runs. Three measurements:
//
//   1. recluster latency — wall time of one recluster() over a seed
//      corpus plus a streamed ingest tail (capture + shadow offline
//      rebuild + catch-up + swap),
//   2. pending-pool drain — outlier/pending pool size before vs after
//      the swap (pending_distance_threshold is set to 0.0 so every
//      ingest pools, making the drain fully visible),
//   3. QPS dip during swap — find_related throughput from a concurrent
//      reader thread while recluster() runs on the main thread, versus
//      the same reader loop quiescent. Readers keep serving the old
//      generation for the whole shadow build; only the final swap takes
//      the exclusive lock, so the dip should be modest.
//
// Results print as a table and are recorded in BENCH_recluster.json
// (current working directory, like the other reproduce.sh outputs, which
// schema-checks the keys). IBSEG_BENCH_SCALE scales the corpus.

#include <atomic>
#include <cstdio>
#include <iostream>
#include <string>
#include <thread>
#include <vector>

#include "bench/bench_common.h"
#include "core/serving.h"
#include "util/stopwatch.h"
#include "util/table_printer.h"

namespace ibseg {
namespace {

std::string fmt(double v, int precision) {
  char buf[64];
  std::snprintf(buf, sizeof(buf), "%.*f", precision, v);
  return buf;
}

/// One pass of the reader loop: top-5 queries round-robin over the
/// corpus. Returns the number of queries issued.
uint64_t reader_pass(const ServingPipeline& serving, size_t num_docs) {
  for (size_t q = 0; q < num_docs; ++q) {
    serving.find_related(static_cast<DocId>(q), 5);
  }
  return num_docs;
}

int run() {
  const size_t seed_posts =
      static_cast<size_t>(240 * bench::bench_scale());
  const size_t tail_posts =
      static_cast<size_t>(64 * bench::bench_scale());
  SyntheticCorpus corpus = generate_corpus(
      bench::eval_profile(ForumDomain::kTechSupport, seed_posts));
  SyntheticCorpus extra = generate_corpus(
      bench::eval_profile(ForumDomain::kTechSupport, tail_posts, 17));

  ServingOptions options;
  // Pool every ingest: the drain measurement wants a full pool, and the
  // differential suite proves pooling never changes results.
  options.recluster.pending_distance_threshold = 0.0;
  ServingPipeline serving(RelatedPostPipeline::build(analyze_corpus(corpus)),
                          options);
  for (const GeneratedPost& p : extra.posts) serving.add_post(p.text);

  const size_t num_docs = serving.num_docs();
  const size_t pending_before = serving.pending_pool_size();
  const uint64_t docs_since_before = serving.docs_since_recluster();

  // 1. Quiescent read throughput (same loop the dip measurement runs).
  uint64_t quiescent_queries = 0;
  Stopwatch quiescent_watch;
  while (quiescent_watch.elapsed_seconds() < 0.25) {
    quiescent_queries += reader_pass(serving, num_docs);
  }
  const double qps_quiescent =
      static_cast<double>(quiescent_queries) /
      quiescent_watch.elapsed_seconds();

  // 2+3. Recluster latency with a concurrent reader: the reader counts
  // completed queries in an atomic; the delta across the recluster()
  // window over its wall time is the during-swap QPS.
  std::atomic<uint64_t> reader_queries{0};
  std::atomic<bool> stop{false};
  std::thread reader([&] {
    while (!stop.load(std::memory_order_relaxed)) {
      reader_pass(serving, num_docs);
      reader_queries.fetch_add(num_docs, std::memory_order_relaxed);
    }
  });
  const uint64_t before_swap = reader_queries.load();
  Stopwatch recluster_watch;
  const uint64_t generation = serving.recluster();
  const double recluster_sec = recluster_watch.elapsed_seconds();
  const uint64_t during_swap = reader_queries.load() - before_swap;
  stop.store(true);
  reader.join();

  const size_t pending_after = serving.pending_pool_size();
  const uint64_t docs_since_after = serving.docs_since_recluster();
  const double qps_during_swap =
      recluster_sec > 0.0 ? static_cast<double>(during_swap) / recluster_sec
                          : 0.0;
  const double dip_fraction =
      qps_quiescent > 0.0 ? 1.0 - qps_during_swap / qps_quiescent : 0.0;

  TablePrinter table({"measurement", "value"});
  table.add_row({"seed posts", std::to_string(seed_posts)});
  table.add_row({"ingested tail", std::to_string(tail_posts)});
  table.add_row({"pending pool before", std::to_string(pending_before)});
  table.add_row({"pending pool after", std::to_string(pending_after)});
  table.add_row({"docs since recluster before",
                 std::to_string(static_cast<unsigned long long>(
                     docs_since_before))});
  table.add_row({"docs since recluster after",
                 std::to_string(static_cast<unsigned long long>(
                     docs_since_after))});
  table.add_row({"recluster (s)", fmt(recluster_sec, 3)});
  table.add_row({"QPS quiescent", fmt(qps_quiescent, 1)});
  table.add_row({"QPS during swap", fmt(qps_during_swap, 1)});
  table.add_row({"QPS dip fraction", fmt(dip_fraction, 3)});
  std::printf("recluster_epoch: background re-clustering cost\n");
  table.print(std::cout);

  if (generation != 1 || pending_after != 0 || docs_since_after != 0) {
    std::fprintf(stderr,
                 "error: recluster did not drain (generation %llu, pool"
                 " %zu, docs_since %llu)\n",
                 static_cast<unsigned long long>(generation), pending_after,
                 static_cast<unsigned long long>(docs_since_after));
    return 1;
  }

  FILE* out = std::fopen("BENCH_recluster.json", "w");
  if (out != nullptr) {
    std::fprintf(out, "{\n  \"bench\": \"recluster\",\n");
    std::fprintf(out, "  \"seed_posts\": %zu,\n", seed_posts);
    std::fprintf(out, "  \"ingested_posts\": %zu,\n", tail_posts);
    std::fprintf(out, "  \"pending_before\": %zu,\n", pending_before);
    std::fprintf(out, "  \"pending_after\": %zu,\n", pending_after);
    std::fprintf(out, "  \"docs_since_before\": %llu,\n",
                 static_cast<unsigned long long>(docs_since_before));
    std::fprintf(out, "  \"docs_since_after\": %llu,\n",
                 static_cast<unsigned long long>(docs_since_after));
    std::fprintf(out, "  \"offline_generation\": %llu,\n",
                 static_cast<unsigned long long>(generation));
    std::fprintf(out, "  \"recluster_sec\": %.6f,\n", recluster_sec);
    std::fprintf(out, "  \"qps_quiescent\": %.1f,\n", qps_quiescent);
    std::fprintf(out, "  \"qps_during_swap\": %.1f,\n", qps_during_swap);
    std::fprintf(out, "  \"qps_dip_fraction\": %.4f\n", dip_fraction);
    std::fprintf(out, "}\n");
    std::fclose(out);
    std::printf("wrote BENCH_recluster.json\n");
  }
  return 0;
}

}  // namespace
}  // namespace ibseg

int main() { return ibseg::run(); }
