// Reproduces paper Table 6 and Fig. 11: execution-time behaviour of the
// offline phases (segmentation, segment grouping) and the online phase
// (top-k retrieval), across growing corpus sizes and across methods.
//
// Fig. 11 uses 1k/10k/100k posts of the product forum; scaled down by
// default (set IBSEG_BENCH_SCALE=10 for paper-sized runs). Table 6 reports
// per-post segmentation time, total grouping time and average retrieval
// time on the largest (StackOverflow-style) corpus, with the segmentation
// parallelized the way the paper describes (Sec. 9.2.4).

#include <cstdio>
#include <iostream>
#include <vector>

#include "bench/bench_common.h"
#include "util/stopwatch.h"
#include "util/strings.h"
#include "util/table_printer.h"

namespace ibseg {
namespace {

struct Timings {
  double segmentation_sec = 0.0;
  double grouping_sec = 0.0;
  double retrieval_ms = 0.0;  // average per query
  int clusters = 0;
};

Timings measure(MethodKind kind, const std::vector<Document>& docs,
                const MethodConfig& config) {
  Timings t;
  MethodBuildStats stats;
  auto method = build_method(kind, docs, config, &stats);
  t.segmentation_sec = stats.segmentation_sec;
  t.grouping_sec = stats.grouping_sec;
  t.clusters = stats.num_clusters;
  Stopwatch watch;
  size_t queries = 0;
  for (DocId q = 0; q < docs.size(); q += 7) {
    method->find_related(q, 5);
    ++queries;
  }
  t.retrieval_ms = watch.elapsed_millis() / static_cast<double>(queries);
  return t;
}

void run() {
  // ---- Fig. 11: times across corpus sizes, per method --------------------
  std::vector<size_t> sizes = {
      static_cast<size_t>(500 * bench::bench_scale()),
      static_cast<size_t>(2000 * bench::bench_scale()),
      static_cast<size_t>(5000 * bench::bench_scale())};
  const std::vector<MethodKind> methods = {
      MethodKind::kLda, MethodKind::kFullText, MethodKind::kContentMR,
      MethodKind::kSentIntentMR, MethodKind::kIntentIntentMR};

  std::printf("== Fig. 11: execution times, product-forum corpus ==\n");
  std::printf("(scale with IBSEG_BENCH_SCALE; paper uses 1k/10k/100k posts)\n\n");
  TablePrinter t({"Posts", "Method", "(a) segmentation s", "(b) grouping s",
                  "(c) retrieval ms/query"});
  for (size_t n : sizes) {
    SyntheticCorpus corpus =
        generate_corpus(bench::eval_profile(ForumDomain::kTechSupport, n));
    std::vector<Document> docs = analyze_corpus(corpus);
    MethodConfig config;
    config.num_threads = 1;   // worst-case sequential, as the paper reports
    config.lda.iterations = 20;
    for (MethodKind kind : methods) {
      Timings timing = measure(kind, docs, config);
      t.add_row({str_format("%zu", n), method_name(kind),
                 str_format("%.3f", timing.segmentation_sec),
                 str_format("%.3f", timing.grouping_sec),
                 str_format("%.3f", timing.retrieval_ms)});
    }
  }
  t.print(std::cout);
  std::printf(
      "\n(Paper shapes: IntentIntent-MR segmentation costs ~60%% more than"
      " SentIntent-MR; Content-MR segments fastest; FullText retrieves"
      " fastest; LDA retrieves slowest — no index.)\n");

  // ---- Table 6: the large (StackOverflow-style) corpus -------------------
  size_t big = static_cast<size_t>(10000 * bench::bench_scale());
  SyntheticCorpus corpus =
      generate_corpus(bench::eval_profile(ForumDomain::kProgramming, big));
  std::vector<Document> docs;
  {
    Stopwatch watch;
    docs = analyze_corpus(corpus);
    std::printf("\n== Table 6: %zu-post programming corpus ==\n", big);
    std::printf("(analysis incl. tokenization/POS/CM annotation: %.2fs)\n",
                watch.elapsed_seconds());
  }
  MethodConfig config;
  config.num_threads = 8;  // the paper parallelizes segmentation in chunks
  Timings timing = measure(MethodKind::kIntentIntentMR, docs, config);
  TablePrinter t6({"Avg segmentation time / post", "Total grouping time",
                   "Avg retrieval time"});
  t6.add_row({str_format("%.4f sec",
                         timing.segmentation_sec /
                             static_cast<double>(docs.size())),
              str_format("%.2f sec", timing.grouping_sec),
              str_format("%.3f msec", timing.retrieval_ms)});
  t6.print(std::cout);
  std::printf("\n(Paper, 1.5M posts: 0.067s avg segmentation, 3.18min"
              " grouping, 2.9ms retrieval; clusters here: %d)\n",
              timing.clusters);
}

}  // namespace
}  // namespace ibseg

int main() {
  ibseg::run();
  return 0;
}
