// Reproduces paper Fig. 8: comparison of the border selection mechanisms
// Tile, Greedy and StepbyStep against (simulated) human segmentations —
// (a) average number of borders, (b) mean segment coherence, (c)
// multWinDiff error. CM tiling (the Sec. 9.1.2.A configuration) is shown
// as an extra row for reference.

#include <cstdio>
#include <iostream>
#include <vector>

#include "bench/bench_common.h"
#include "eval/annotator_sim.h"
#include "eval/boundary_similarity.h"
#include "eval/window_diff.h"
#include "seg/segmenter.h"
#include "util/strings.h"
#include "util/table_printer.h"

namespace ibseg {
namespace {

struct Row {
  std::string name;
  double borders = 0.0;
  double coherence = 0.0;
  double error = 0.0;
  double boundary_sim = 0.0;
};

void run() {
  for (ForumDomain domain :
       {ForumDomain::kTechSupport, ForumDomain::kTravel}) {
    size_t posts = domain == ForumDomain::kTechSupport
                       ? static_cast<size_t>(500 * bench::bench_scale())
                       : static_cast<size_t>(100 * bench::bench_scale());
    SyntheticCorpus corpus =
        generate_corpus(bench::eval_profile(domain, posts));
    std::vector<Document> docs = analyze_corpus(corpus);

    Rng rng(47);
    std::vector<std::vector<Segmentation>> refs(docs.size());
    double human_borders = 0.0;
    double human_coherence = 0.0;
    size_t human_count = 0;
    SegScoring scoring;
    for (size_t d = 0; d < docs.size(); ++d) {
      auto anns = simulate_annotators(
          docs[d], corpus.posts[d].true_segmentation,
          corpus.posts[d].segment_intents,
          static_cast<int>(corpus.profile().intentions.size()), 5,
          AnnotatorNoise{}, rng);
      for (const HumanAnnotation& a : anns) {
        refs[d].push_back(a.segmentation);
        human_borders += static_cast<double>(a.segmentation.borders.size());
        human_coherence +=
            mean_segment_coherence(docs[d], a.segmentation, scoring);
        ++human_count;
      }
    }

    auto measure = [&](const std::string& name, const Segmenter& segmenter) {
      Vocabulary vocab;
      Row row;
      row.name = name;
      for (size_t d = 0; d < docs.size(); ++d) {
        Segmentation hyp = segmenter.segment(docs[d], vocab);
        row.borders += static_cast<double>(hyp.borders.size());
        row.coherence += mean_segment_coherence(docs[d], hyp, scoring);
        row.error += mult_win_diff(refs[d], hyp);
        double b = 0.0;
        for (const Segmentation& ref : refs[d]) {
          b += boundary_similarity(ref, hyp);
        }
        row.boundary_sim += b / static_cast<double>(refs[d].size());
      }
      double n = static_cast<double>(docs.size());
      row.borders /= n;
      row.coherence /= n;
      row.error /= n;
      row.boundary_sim /= n;
      return row;
    };

    std::vector<Row> rows;
    rows.push_back(measure("Tile", Segmenter::intention(
                                       BorderStrategyKind::kTile)));
    rows.push_back(measure("Greedy", Segmenter::intention(
                                         BorderStrategyKind::kGreedy)));
    rows.push_back(measure(
        "StepbyStep", Segmenter::intention(BorderStrategyKind::kStepByStep)));
    rows.push_back(measure(
        "TopDown", Segmenter::intention(BorderStrategyKind::kTopDown)));
    rows.push_back(measure("CmTiling (9.1.2.A)", Segmenter::cm_tiling()));
    rows.push_back(measure("Random baseline",
                           Segmenter::random_baseline(0.25)));
    rows.push_back(measure("Even-split baseline", Segmenter::even_split(3)));

    TablePrinter table({"Mechanism", "(a) avg #borders", "(b) coherence",
                        "(c) multWinDiff", "boundary sim"});
    table.add_row({"Human (sim)",
                   str_format("%.2f", human_borders / human_count),
                   str_format("%.3f", human_coherence / human_count), "-",
                   "-"});
    for (const Row& r : rows) {
      table.add_row({r.name, str_format("%.2f", r.borders),
                     str_format("%.3f", r.coherence),
                     str_format("%.3f", r.error),
                     str_format("%.3f", r.boundary_sim)});
    }
    std::printf("== Fig. 8 (%s): border selection mechanisms ==\n",
                bench::paper_dataset_name(domain));
    table.print(std::cout);
    std::printf("\n");
  }
  std::printf(
      "(Paper: StepbyStep returns far more borders than annotators; Tile and"
      " Greedy produce the most coherent segments and the lowest error.)\n");
}

}  // namespace
}  // namespace ibseg

int main() {
  ibseg::run();
  return 0;
}
