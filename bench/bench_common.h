#ifndef IBSEG_BENCH_BENCH_COMMON_H_
#define IBSEG_BENCH_BENCH_COMMON_H_

// Shared setup for the paper-reproduction benchmark binaries: the
// calibrated corpus profiles (one per paper dataset), relevance judging
// against the generator's scenario ground truth, and scaling via the
// IBSEG_BENCH_SCALE environment variable.

#include <cstdlib>
#include <string>
#include <vector>

#include "core/methods.h"
#include "datagen/post_generator.h"
#include "eval/precision.h"

namespace ibseg {
namespace bench {

/// Scale factor for corpus sizes (default 1.0). Set IBSEG_BENCH_SCALE=10
/// to run the scaling benches closer to paper-sized corpora.
inline double bench_scale() {
  const char* env = std::getenv("IBSEG_BENCH_SCALE");
  if (env == nullptr) return 1.0;
  double v = std::atof(env);
  return v > 0.0 ? v : 1.0;
}

/// The calibrated evaluation profile of one paper dataset (see DESIGN.md,
/// substitution table). The three domains differ in intention inventory,
/// segment-count mix and post length, mirroring HP Forum / TripAdvisor /
/// StackOverflow.
inline GeneratorOptions eval_profile(ForumDomain domain, size_t num_posts,
                                     uint64_t seed = 11) {
  GeneratorOptions gen;
  gen.domain = domain;
  gen.num_posts = num_posts;
  gen.posts_per_scenario = 4;
  gen.seed = seed;
  gen.background_noise = 0.9;
  gen.mention_noise = 0.0;
  gen.contaminant_ratio = 3.0;
  gen.scenario_pool_size = 6;
  return gen;
}

/// Default corpus size per domain for the quality benches (scaled).
inline size_t eval_corpus_size() {
  return static_cast<size_t>(600 * bench_scale());
}

/// Mean precision of `method` over every `stride`-th post as the reference
/// query, with same-scenario ground truth (the stand-in for the paper's
/// human judgments; Sec. 9.2.1).
inline PrecisionSummary evaluate_method(const RelatedPostMethod& method,
                                        const SyntheticCorpus& corpus,
                                        size_t num_docs, int k = 5,
                                        size_t stride = 2) {
  std::vector<double> precisions;
  for (DocId q = 0; q < num_docs; q += static_cast<DocId>(stride)) {
    auto related = method.find_related(q, k);
    std::vector<DocId> ids;
    ids.reserve(related.size());
    for (const ScoredDoc& sd : related) ids.push_back(sd.doc);
    int scenario = corpus.posts[q].scenario_id;
    precisions.push_back(list_precision(ids, [&](DocId d) {
      return corpus.posts[d].scenario_id == scenario;
    }));
  }
  return summarize_precision(precisions);
}

inline const std::vector<ForumDomain>& all_domains() {
  static const std::vector<ForumDomain> kDomains = {
      ForumDomain::kTechSupport, ForumDomain::kTravel,
      ForumDomain::kProgramming};
  return kDomains;
}

/// Paper-dataset display name for a domain.
inline const char* paper_dataset_name(ForumDomain domain) {
  switch (domain) {
    case ForumDomain::kTechSupport: return "HP Forum (synthetic)";
    case ForumDomain::kTravel: return "TripAdvisor (synthetic)";
    case ForumDomain::kProgramming: return "StackOverflow (synthetic)";
    case ForumDomain::kHealth: return "Medhelp (synthetic)";
  }
  return "?";
}

}  // namespace bench
}  // namespace ibseg

#endif  // IBSEG_BENCH_BENCH_COMMON_H_
