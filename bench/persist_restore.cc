// Persistence cost and warm-restart payoff: what a deployment pays for
// crash safety (snapshot save time, WAL append overhead on the ingest
// path) and what it gets back at startup (restore-from-snapshot versus a
// cold offline rebuild of the same corpus). Three measurements:
//
//   1. cold build   — RelatedPostPipeline::build over the corpus (the
//                     segmentation + clustering + indexing a restart
//                     without persistence repeats every time),
//   2. save         — ServingPipeline::save to a snapshot v2 file,
//   3. warm restore — ServingPipeline::restore from that file, including
//                     WAL replay of a tail of post-snapshot ingests.
//
// Also reported: ingest latency with the WAL off / fsync=none /
// fsync=every-append, isolating the durability tax on add_post.
//
// Results print as a table and are recorded in BENCH_persist_restore.json
// (current working directory, like the other reproduce.sh outputs).
// IBSEG_BENCH_SCALE scales the corpus.

#include <cstdio>
#include <cstdlib>
#include <fstream>
#include <iostream>
#include <memory>
#include <string>
#include <vector>

#include "bench/bench_common.h"
#include "core/serving.h"
#include "storage/snapshot_v2.h"
#include "util/stopwatch.h"
#include "util/table_printer.h"

namespace ibseg {
namespace {

std::string fmt(double v, int precision) {
  char buf[64];
  std::snprintf(buf, sizeof(buf), "%.*f", precision, v);
  return buf;
}

std::string tmp_file(const char* name) {
  const char* dir = std::getenv("TMPDIR");
  std::string path = (dir != nullptr && *dir != '\0') ? dir : "/tmp";
  path += "/ibseg_bench_";
  path += name;
  return path;
}

/// Mean add_post latency (seconds) over `texts` for one WAL config.
double ingest_latency(const SyntheticCorpus& corpus,
                      const std::vector<std::string>& texts,
                      const ServingOptions& options) {
  ServingPipeline serving(RelatedPostPipeline::build(analyze_corpus(corpus)),
                          options);
  Stopwatch watch;
  for (const std::string& text : texts) serving.add_post(text);
  return texts.empty() ? 0.0
                       : watch.elapsed_seconds() /
                             static_cast<double>(texts.size());
}

int run() {
  const size_t corpus_size =
      static_cast<size_t>(240 * bench::bench_scale());
  const size_t wal_tail = 32;  // ingests between last snapshot and "crash"
  GeneratorOptions gen =
      bench::eval_profile(ForumDomain::kTechSupport, corpus_size);
  SyntheticCorpus corpus = generate_corpus(gen);

  GeneratorOptions extra_gen =
      bench::eval_profile(ForumDomain::kTechSupport, wal_tail, 17);
  SyntheticCorpus extra = generate_corpus(extra_gen);
  std::vector<std::string> tail_texts;
  for (const GeneratedPost& p : extra.posts) tail_texts.push_back(p.text);

  const std::string snap_path = tmp_file("persist.snap");
  const std::string wal_path = tmp_file("persist.wal");
  std::remove(snap_path.c_str());
  std::remove(wal_path.c_str());

  // 1. Cold build (what every restart costs without persistence).
  Stopwatch cold_watch;
  auto serving = std::make_unique<ServingPipeline>(
      RelatedPostPipeline::build(analyze_corpus(corpus)));
  const double cold_build_sec = cold_watch.elapsed_seconds();

  // 2. Save.
  Stopwatch save_watch;
  if (!serving->save(snap_path)) {
    std::fprintf(stderr, "error: snapshot save failed\n");
    return 1;
  }
  const double save_sec = save_watch.elapsed_seconds();
  uint64_t snapshot_bytes = 0;
  {
    std::ifstream is(snap_path, std::ios::binary | std::ios::ate);
    snapshot_bytes = is ? static_cast<uint64_t>(is.tellg()) : 0;
  }
  serving.reset();

  // 3. Warm restore, with a WAL tail to replay on top of the snapshot.
  {
    ServingOptions wal_options;
    wal_options.persist.wal_path = wal_path;
    auto writer = ServingPipeline::restore(snap_path, {}, wal_options);
    if (writer == nullptr) {
      std::fprintf(stderr, "error: restore (WAL writer) failed\n");
      return 1;
    }
    for (const std::string& text : tail_texts) writer->add_post(text);
  }
  ServingOptions wal_options;
  wal_options.persist.wal_path = wal_path;
  Stopwatch restore_watch;
  auto restored = ServingPipeline::restore(snap_path, {}, wal_options);
  const double restore_sec = restore_watch.elapsed_seconds();
  if (restored == nullptr || restored->epoch() != wal_tail) {
    std::fprintf(stderr, "error: warm restore failed\n");
    return 1;
  }

  // 4. Durability tax on the ingest path.
  ServingOptions no_wal;
  ServingOptions wal_nosync;
  wal_nosync.persist.wal_path = wal_path + ".nosync";
  wal_nosync.persist.wal.fsync = WalFsync::kNone;
  ServingOptions wal_sync;
  wal_sync.persist.wal_path = wal_path + ".sync";
  wal_sync.persist.wal.fsync = WalFsync::kEveryAppend;
  const double ingest_off = ingest_latency(corpus, tail_texts, no_wal);
  const double ingest_nosync = ingest_latency(corpus, tail_texts, wal_nosync);
  const double ingest_sync = ingest_latency(corpus, tail_texts, wal_sync);
  std::remove((wal_path + ".nosync").c_str());
  std::remove((wal_path + ".sync").c_str());

  const double speedup =
      restore_sec > 0.0 ? cold_build_sec / restore_sec : 0.0;

  TablePrinter table({"measurement", "value"});
  table.add_row({"corpus posts", std::to_string(corpus_size)});
  table.add_row({"cold build (s)", fmt(cold_build_sec, 3)});
  table.add_row({"snapshot save (s)", fmt(save_sec, 3)});
  table.add_row({"snapshot bytes",
                 std::to_string(static_cast<unsigned long long>(
                     snapshot_bytes))});
  table.add_row({"warm restore (s), " + std::to_string(wal_tail) +
                     " WAL records",
                 fmt(restore_sec, 3)});
  table.add_row({"restore speedup vs cold", fmt(speedup, 2)});
  table.add_row({"add_post, no WAL (ms)", fmt(ingest_off * 1e3, 3)});
  table.add_row({"add_post, WAL fsync=none (ms)", fmt(ingest_nosync * 1e3, 3)});
  table.add_row({"add_post, WAL fsync=every (ms)", fmt(ingest_sync * 1e3, 3)});
  std::printf("persist_restore: crash-safe persistence cost/payoff\n");
  table.print(std::cout);

  FILE* out = std::fopen("BENCH_persist_restore.json", "w");
  if (out != nullptr) {
    std::fprintf(out, "{\n  \"bench\": \"persist_restore\",\n");
    std::fprintf(out, "  \"corpus_posts\": %zu,\n", corpus_size);
    std::fprintf(out, "  \"wal_tail_records\": %zu,\n", wal_tail);
    std::fprintf(out, "  \"cold_build_sec\": %.6f,\n", cold_build_sec);
    std::fprintf(out, "  \"snapshot_save_sec\": %.6f,\n", save_sec);
    std::fprintf(out, "  \"snapshot_bytes\": %llu,\n",
                 static_cast<unsigned long long>(snapshot_bytes));
    std::fprintf(out, "  \"warm_restore_sec\": %.6f,\n", restore_sec);
    std::fprintf(out, "  \"restore_speedup_vs_cold\": %.3f,\n", speedup);
    std::fprintf(out, "  \"ingest_ms_no_wal\": %.6f,\n", ingest_off * 1e3);
    std::fprintf(out, "  \"ingest_ms_wal_nosync\": %.6f,\n",
                 ingest_nosync * 1e3);
    std::fprintf(out, "  \"ingest_ms_wal_fsync\": %.6f\n", ingest_sync * 1e3);
    std::fprintf(out, "}\n");
    std::fclose(out);
    std::printf("wrote BENCH_persist_restore.json\n");
  }
  std::remove(snap_path.c_str());
  std::remove(wal_path.c_str());
  return 0;
}

}  // namespace
}  // namespace ibseg

int main() { return ibseg::run(); }
