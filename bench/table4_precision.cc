// Reproduces paper Table 4 (mean precision of the five methods on the
// three datasets, with the gain of IntentIntent-MR over the best
// baseline), Table 5 (the evaluation-set description) and Fig. 10 (the
// distribution of per-query precision, including the share of queries with
// no true positives).
//
// Relevance ground truth: posts generated from the same scenario (the
// substitution for the paper's human judges; DESIGN.md).

#include <cstdio>
#include <iostream>
#include <map>
#include <vector>

#include "bench/bench_common.h"
#include "util/strings.h"
#include "util/table_printer.h"

namespace ibseg {
namespace {

void run() {
  const std::vector<MethodKind> methods = {
      MethodKind::kRandom, MethodKind::kLda, MethodKind::kFullText,
      MethodKind::kContentMR, MethodKind::kSentIntentMR,
      MethodKind::kIntentIntentMR};
  const int k = 5;
  const size_t stride = 2;

  std::map<ForumDomain, std::map<MethodKind, PrecisionSummary>> results;
  std::map<ForumDomain, size_t> query_counts;
  std::map<ForumDomain, CorpusStats> corpus_stats;

  for (ForumDomain domain : bench::all_domains()) {
    SyntheticCorpus corpus = generate_corpus(
        bench::eval_profile(domain, bench::eval_corpus_size()));
    corpus_stats[domain] = compute_corpus_stats(corpus);
    std::vector<Document> docs = analyze_corpus(corpus);
    query_counts[domain] = (docs.size() + stride - 1) / stride;
    MethodConfig config;
    config.lda.iterations = 120;
    for (MethodKind kind : methods) {
      auto method = build_method(kind, docs, config, nullptr);
      results[domain][kind] =
          bench::evaluate_method(*method, corpus, docs.size(), k, stride);
    }
  }

  // ---- Table 5: evaluation-set description -------------------------------
  std::printf("== Table 5: evaluation set (synthetic substitution) ==\n\n");
  {
    TablePrinter t({"", "TechSupport", "Travel", "Programming"});
    auto row = [&](const std::string& label, auto getter) {
      std::vector<std::string> cells = {label};
      for (ForumDomain d : bench::all_domains()) cells.push_back(getter(d));
      t.add_row(cells);
    };
    row("Corpus size", [&](ForumDomain) {
      return str_format("%zu", bench::eval_corpus_size());
    });
    row("Query posts", [&](ForumDomain d) {
      return str_format("%zu", query_counts[d]);
    });
    row("Judgments", [&](ForumDomain d) {
      return str_format("%zu", query_counts[d] * methods.size() * k);
    });
    row("Ground truth", [&](ForumDomain) {
      return std::string("same-scenario");
    });
    row("Avg terms/post", [&](ForumDomain d) {
      return str_format("%.0f", corpus_stats[d].avg_terms_per_post);
    });
    row("Unique terms", [&](ForumDomain d) {
      return str_format("%.1f%%", corpus_stats[d].unique_term_percent);
    });
    t.print(std::cout);
    std::printf("(paper corpora: 93 terms/2.3%% HP, 195/3.2%% TripAdvisor,"
                " 79/2.5%% StackOverflow)\n");
  }

  // ---- Table 4: mean precision -------------------------------------------
  std::printf("\n== Table 4: mean precision (top-%d, %zu queries/domain) ==\n",
              k, query_counts[ForumDomain::kTechSupport]);
  std::printf("(Paper: HP 0.26 vs FullText 0.16 (+10%%); TripAdvisor 0.65 vs"
              " 0.53 (+12%%); StackOverflow 0.262 vs 0.161 (+10.1%%))\n\n");
  {
    TablePrinter t({"Dataset", "Random", "LDA", "FullText", "Content-MR",
                    "SentIntent-MR", "IntentIntent-MR", "Gain vs FullText"});
    for (ForumDomain domain : bench::all_domains()) {
      std::vector<std::string> cells = {bench::paper_dataset_name(domain)};
      for (MethodKind kind : methods) {
        cells.push_back(str_format("%.3f", results[domain][kind].mean));
      }
      double gain = results[domain][MethodKind::kIntentIntentMR].mean -
                    results[domain][MethodKind::kFullText].mean;
      cells.push_back(str_format("%+.1f pts", 100.0 * gain));
      t.add_row(cells);
    }
    t.print(std::cout);
  }

  // ---- Fig. 10: per-query precision distribution -------------------------
  std::printf("\n== Fig. 10: queries by precision level ==\n\n");
  {
    TablePrinter t({"Dataset", "Method", "prec=0", "0<prec<0.4",
                    "0.4<=prec<0.8", "prec>=0.8"});
    for (ForumDomain domain : bench::all_domains()) {
      for (MethodKind kind :
           {MethodKind::kFullText, MethodKind::kIntentIntentMR}) {
        const PrecisionSummary& s = results[domain][kind];
        size_t zero = 0;
        size_t low = 0;
        size_t mid = 0;
        size_t high = 0;
        for (double p : s.per_query) {
          if (p == 0.0) {
            ++zero;
          } else if (p < 0.4) {
            ++low;
          } else if (p < 0.8) {
            ++mid;
          } else {
            ++high;
          }
        }
        double n = static_cast<double>(s.per_query.size());
        t.add_row({bench::paper_dataset_name(domain), method_name(kind),
                   str_format("%.0f%%", 100.0 * zero / n),
                   str_format("%.0f%%", 100.0 * low / n),
                   str_format("%.0f%%", 100.0 * mid / n),
                   str_format("%.0f%%", 100.0 * high / n)});
      }
    }
    t.print(std::cout);
  }
  std::printf("\n(Paper: IntentIntent-MR reduces zero-precision lists by"
              " 28.6%% on StackOverflow.)\n");
}

}  // namespace
}  // namespace ibseg

int main() {
  ibseg::run();
  return 0;
}
