// Reproduces paper Fig. 9: the coherence/depth function sweep. For each
// function (cosine dissimilarity, Euclidean distance, Manhattan distance,
// richness, Shannon diversity) the paper reports the share of posts whose
// segmentation error decreased / stayed / increased relative to the
// no-merging (sentence) baseline, plus the average error change.

#include <cstdio>
#include <iostream>
#include <vector>

#include "bench/bench_common.h"
#include "eval/annotator_sim.h"
#include "eval/window_diff.h"
#include "seg/segmenter.h"
#include "util/strings.h"
#include "util/table_printer.h"

namespace ibseg {
namespace {

struct FnCase {
  std::string name;
  SegScoring scoring;
};

void run() {
  SyntheticCorpus corpus = generate_corpus(bench::eval_profile(
      ForumDomain::kTechSupport,
      static_cast<size_t>(500 * bench::bench_scale())));
  std::vector<Document> docs = analyze_corpus(corpus);

  Rng rng(61);
  std::vector<std::vector<Segmentation>> refs(docs.size());
  for (size_t d = 0; d < docs.size(); ++d) {
    auto anns = simulate_annotators(
        docs[d], corpus.posts[d].true_segmentation,
        corpus.posts[d].segment_intents,
        static_cast<int>(corpus.profile().intentions.size()), 5,
        AnnotatorNoise{}, rng);
    for (const HumanAnnotation& a : anns) refs[d].push_back(a.segmentation);
  }

  // Baseline: the sentence segmentation (no border selection).
  std::vector<double> baseline(docs.size());
  for (size_t d = 0; d < docs.size(); ++d) {
    baseline[d] = mult_win_diff(
        refs[d], Segmentation::all_units(docs[d].num_units()));
  }

  std::vector<FnCase> cases;
  {
    FnCase c;
    c.name = "Cos.Sim.";
    c.scoring.depth = DepthFn::kCosine;
    cases.push_back(c);
    c.name = "Eucl.Dist.";
    c.scoring.depth = DepthFn::kEuclidean;
    cases.push_back(c);
    c.name = "Manh.Dist.";
    c.scoring.depth = DepthFn::kManhattan;
    cases.push_back(c);
    FnCase rich;
    rich.name = "Richness";
    rich.scoring.diversity = DiversityIndex::kRichness;
    cases.push_back(rich);
    FnCase shan;
    shan.name = "Shan.Div.";
    cases.push_back(shan);  // the defaults: Shannon + Eq. 3 depth
  }

  TablePrinter table({"Function", "Posts w/ error decrease",
                      "Posts w/ no change", "Posts w/ error increase",
                      "Avg error change"});
  for (const FnCase& fn : cases) {
    Segmenter segmenter =
        Segmenter::intention(BorderStrategyKind::kTile, fn.scoring);
    Vocabulary vocab;
    size_t better = 0;
    size_t same = 0;
    size_t worse = 0;
    double delta = 0.0;
    for (size_t d = 0; d < docs.size(); ++d) {
      double err =
          mult_win_diff(refs[d], segmenter.segment(docs[d], vocab));
      double change = err - baseline[d];
      delta += change;
      if (change < -1e-9) {
        ++better;
      } else if (change > 1e-9) {
        ++worse;
      } else {
        ++same;
      }
    }
    double n = static_cast<double>(docs.size());
    table.add_row({fn.name, str_format("%.1f%%", 100.0 * better / n),
                   str_format("%.1f%%", 100.0 * same / n),
                   str_format("%.1f%%", 100.0 * worse / n),
                   str_format("%+.3f", delta / n)});
  }
  std::printf("== Fig. 9: coherence/depth functions (Tile mechanism, vs"
              " sentence baseline) ==\n");
  std::printf("(Paper: Shannon diversity reduces error the most, -0.24 avg,"
              " 79.9%% of posts improved)\n\n");
  table.print(std::cout);
}

}  // namespace
}  // namespace ibseg

int main() {
  ibseg::run();
  return 0;
}
