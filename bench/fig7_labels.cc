// Reproduces paper Fig. 7: the annotators' segment labels grouped into the
// per-domain intention categories. Our simulated annotators attach labels
// drawn from each intention's label synonym list (with confusion noise);
// this bench tallies them the way the paper's authors grouped the 4.7K
// human labels.

#include <cstdio>
#include <iostream>
#include <map>
#include <vector>

#include "bench/bench_common.h"
#include "eval/annotator_sim.h"
#include "util/rng.h"

namespace ibseg {
namespace {

void run() {
  for (ForumDomain domain : bench::all_domains()) {
    SyntheticCorpus corpus = generate_corpus(bench::eval_profile(
        domain, static_cast<size_t>(200 * bench::bench_scale())));
    std::vector<Document> docs = analyze_corpus(corpus);
    const DomainProfile& profile = corpus.profile();

    // Simulated annotators label every segment; tally per intention.
    Rng rng(7);
    std::vector<size_t> counts(profile.intentions.size(), 0);
    size_t total = 0;
    for (size_t d = 0; d < docs.size(); ++d) {
      auto anns = simulate_annotators(
          docs[d], corpus.posts[d].true_segmentation,
          corpus.posts[d].segment_intents,
          static_cast<int>(profile.intentions.size()), 3, AnnotatorNoise{},
          rng, /*label_confusion=*/0.1);
      for (const HumanAnnotation& a : anns) {
        for (int label : a.segment_labels) {
          ++counts[static_cast<size_t>(label)];
          ++total;
        }
      }
    }

    std::printf("== Fig. 7 (%s): intention categories and label keywords ==\n",
                bench::paper_dataset_name(domain));
    for (size_t i = 0; i < profile.intentions.size(); ++i) {
      const IntentionSpec& spec = profile.intentions[i];
      std::string keywords;
      for (size_t l = 0; l < spec.labels.size(); ++l) {
        if (l > 0) keywords += ", ";
        keywords += spec.labels[l];
      }
      std::printf("  %c. %-28s %5.1f%%  (labels: %s)\n",
                  static_cast<char>('a' + i), spec.name.c_str(),
                  100.0 * static_cast<double>(counts[i]) /
                      static_cast<double>(total),
                  keywords.c_str());
    }
    std::printf("  total labeled segments: %zu\n\n", total);
  }
  std::printf(
      "(Paper reports 7-8 label categories for the support forum and 6 for"
      " the travel forum, collected from 4.7K human-labeled segments.)\n");
}

}  // namespace
}  // namespace ibseg

int main() {
  ibseg::run();
  return 0;
}
