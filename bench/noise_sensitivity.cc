// Sensitivity analysis: how the headline measurements degrade as the
// corpus gets harder — (a) segmentation error vs annotator noise, and
// (b) retrieval precision vs within-category vocabulary confusion (the
// background-mention density dial of the generator). Neither curve is in
// the paper; they bound how robust its conclusions are to the evaluation
// conditions.

#include <cstdio>
#include <iostream>
#include <vector>

#include "bench/bench_common.h"
#include "eval/annotator_sim.h"
#include "eval/window_diff.h"
#include "seg/segmenter.h"
#include "util/strings.h"
#include "util/table_printer.h"

namespace ibseg {
namespace {

void segmentation_vs_annotator_noise() {
  SyntheticCorpus corpus = generate_corpus(bench::eval_profile(
      ForumDomain::kTechSupport,
      static_cast<size_t>(250 * bench::bench_scale())));
  std::vector<Document> docs = analyze_corpus(corpus);
  TablePrinter t({"Annotator noise level", "human-vs-human",
                  "CmTiling error", "TextTiling error"});
  for (double level : {0.5, 1.0, 2.0, 3.0}) {
    AnnotatorNoise noise;
    noise.drop_prob *= level;
    noise.shift_prob *= level;
    noise.insert_prob *= level;
    noise.char_jitter *= level;
    Rng rng(17);
    double human_err = 0.0;
    double cm_err = 0.0;
    double tt_err = 0.0;
    Vocabulary vocab;
    Segmenter cm = Segmenter::cm_tiling();
    Segmenter tt = Segmenter::topical();
    for (size_t d = 0; d < docs.size(); ++d) {
      auto anns = simulate_annotators(
          docs[d], corpus.posts[d].true_segmentation,
          corpus.posts[d].segment_intents,
          static_cast<int>(corpus.profile().intentions.size()), 5, noise,
          rng);
      std::vector<Segmentation> refs;
      for (const HumanAnnotation& a : anns) refs.push_back(a.segmentation);
      // Human-vs-human: each annotator against the others.
      double pairwise = 0.0;
      for (size_t a = 0; a < refs.size(); ++a) {
        std::vector<Segmentation> others;
        for (size_t b = 0; b < refs.size(); ++b) {
          if (b != a) others.push_back(refs[b]);
        }
        pairwise += mult_win_diff(others, refs[a]);
      }
      human_err += pairwise / static_cast<double>(refs.size());
      cm_err += mult_win_diff(refs, cm.segment(docs[d], vocab));
      tt_err += mult_win_diff(refs, tt.segment(docs[d], vocab));
    }
    double n = static_cast<double>(docs.size());
    t.add_row({str_format("%.1fx", level), str_format("%.3f", human_err / n),
               str_format("%.3f", cm_err / n),
               str_format("%.3f", tt_err / n)});
  }
  std::printf("== Sensitivity (a): segmentation error vs annotator noise ==\n");
  std::printf("(CM-tiling should track the human-vs-human floor)\n\n");
  t.print(std::cout);
}

void precision_vs_confusion() {
  TablePrinter t({"Background mention density", "FullText",
                  "IntentIntent-MR", "SentIntent-MR"});
  for (double bg : {0.3, 0.6, 0.9}) {
    GeneratorOptions gen = bench::eval_profile(
        ForumDomain::kTechSupport,
        static_cast<size_t>(400 * bench::bench_scale()));
    gen.background_noise = bg;
    SyntheticCorpus corpus = generate_corpus(gen);
    std::vector<Document> docs = analyze_corpus(corpus);
    MethodConfig config;
    std::vector<std::string> row = {str_format("%.1f", bg)};
    for (MethodKind kind : {MethodKind::kFullText,
                            MethodKind::kIntentIntentMR,
                            MethodKind::kSentIntentMR}) {
      auto method = build_method(kind, docs, config, nullptr);
      row.push_back(str_format(
          "%.3f", bench::evaluate_method(*method, corpus, docs.size()).mean));
    }
    t.add_row(row);
  }
  std::printf("\n== Sensitivity (b): precision vs within-category vocabulary"
              " confusion ==\n");
  std::printf("(every method degrades as passing mentions of other"
              " components densify; whole-post matching has the most to"
              " lose)\n\n");
  t.print(std::cout);
}

}  // namespace
}  // namespace ibseg

int main() {
  ibseg::segmentation_vs_annotator_noise();
  ibseg::precision_vs_confusion();
  return 0;
}
