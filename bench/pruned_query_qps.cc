// MaxScore pruning throughput: queries/sec through
// ServingPipeline::find_related_batch with the pruned per-intention path
// (the default) against the exhaustive score-then-select fallback
// (MatcherOptions::exhaustive_fallback), at 1 and 4 matcher query
// threads, result cache OFF — every query does real scoring work, so the
// ratio is the pruning win, not a cache artifact. Both paths return
// bit-identical rankings (the differential suite proves it); the bench
// also reports the work counters — units fully scored and candidates
// abandoned mid-scoring — so the speedup can be traced to scored-work
// actually avoided rather than measurement noise. The headline number is
// the single-core k=10 ratio (pruned vs exhaustive at query_threads 1).
//
// Results print as a table and are recorded in
// BENCH_pruned_query_qps.json (current working directory);
// scripts/reproduce.sh checks the JSON schema. IBSEG_BENCH_SCALE scales
// the corpus; IBSEG_QPS_WINDOW_MS overrides the measurement window.

#include <cstdint>
#include <cstdio>
#include <cstdlib>
#include <iostream>
#include <string>
#include <vector>

#include "bench/bench_common.h"
#include "core/serving.h"
#include "util/rng.h"
#include "util/stopwatch.h"
#include "util/table_printer.h"

namespace ibseg {
namespace {

constexpr size_t kBatchSize = 64;
constexpr int kTopK = 10;

struct QpsRow {
  int query_threads = 0;
  bool pruned = false;
  double qps = 0.0;
  uint64_t queries = 0;
  uint64_t units_scored = 0;
  uint64_t units_pruned = 0;
};

std::string fmt(double v, int precision) {
  char buf[64];
  std::snprintf(buf, sizeof(buf), "%.*f", precision, v);
  return buf;
}

int window_ms() {
  const char* env = std::getenv("IBSEG_QPS_WINDOW_MS");
  if (env == nullptr) return 1200;
  int v = std::atoi(env);
  return v > 0 ? v : 1200;
}

QpsRow run_config(const SyntheticCorpus& corpus,
                  const PipelineSnapshot& snapshot, int query_threads,
                  bool pruned) {
  PipelineOptions build_options;
  build_options.matcher.query_threads = query_threads;
  build_options.matcher.exhaustive_fallback = !pruned;
  // Cache off: ServingOptions default capacity 0 — every query scores.
  ServingPipeline serving(RelatedPostPipeline::build_from_snapshot(
      analyze_corpus(corpus), snapshot, build_options));
  const size_t num_docs = serving.seed_docs();

  // Uniform query stream, deterministic per config (same seed), so every
  // row answers the same queries.
  Rng rng(99);
  const double window_sec = window_ms() / 1000.0;
  uint64_t queries = 0;
  Stopwatch watch;
  std::vector<DocId> batch(kBatchSize);
  while (watch.elapsed_seconds() < window_sec) {
    for (DocId& q : batch) {
      q = static_cast<DocId>(rng.next_below(num_docs));
    }
    serving.find_related_batch(batch, kTopK);
    queries += kBatchSize;
  }
  double elapsed = watch.elapsed_seconds();

  QpsRow row;
  row.query_threads = query_threads;
  row.pruned = pruned;
  row.queries = queries;
  row.qps = static_cast<double>(queries) / elapsed;
  const QueryWorkCounters& work = serving.quiescent().matcher().work_counters();
  row.units_scored = work.units_scored.load(std::memory_order_relaxed);
  row.units_pruned = work.units_pruned.load(std::memory_order_relaxed);
  return row;
}

}  // namespace
}  // namespace ibseg

int main() {
  using namespace ibseg;
  using namespace ibseg::bench;

  // Serving-scale corpus (20x the micro-bench base of 240): pruning is a
  // top-k-vs-corpus-size win, so per-intention candidate lists must far
  // exceed n = 2k for the measurement to say anything — at 240 posts the
  // lists are barely longer than n and the ratio only measures driver
  // overhead.
  const size_t corpus_size = static_cast<size_t>(4800 * bench_scale());
  GeneratorOptions gen = eval_profile(ForumDomain::kTechSupport, corpus_size);
  SyntheticCorpus corpus = generate_corpus(gen);

  // One shared offline build; per-config pipelines restore from its
  // snapshot so both paths serve identical state (and therefore identical
  // rankings — only the work differs).
  RelatedPostPipeline offline =
      RelatedPostPipeline::build(analyze_corpus(corpus), {});
  PipelineSnapshot snapshot = offline.snapshot();

  std::vector<QpsRow> rows;
  for (int query_threads : {1, 4}) {
    for (bool pruned : {false, true}) {
      rows.push_back(run_config(corpus, snapshot, query_threads, pruned));
    }
  }

  // The headline: pruned vs exhaustive at the same thread count.
  auto exhaustive_qps = [&](int threads) {
    for (const QpsRow& r : rows) {
      if (r.query_threads == threads && !r.pruned) return r.qps;
    }
    return 0.0;
  };
  TablePrinter table({"query threads", "path", "queries/sec",
                      "units scored/query", "units abandoned/query",
                      "speedup vs exhaustive"});
  for (const QpsRow& row : rows) {
    double base = exhaustive_qps(row.query_threads);
    table.add_row(
        {std::to_string(row.query_threads),
         row.pruned ? "pruned" : "exhaustive", fmt(row.qps, 1),
         fmt(row.queries > 0
                 ? static_cast<double>(row.units_scored) / row.queries
                 : 0.0,
             1),
         fmt(row.queries > 0
                 ? static_cast<double>(row.units_pruned) / row.queries
                 : 0.0,
             1),
         fmt(base > 0.0 ? row.qps / base : 0.0, 2)});
  }
  std::printf(
      "pruned_query_qps: MaxScore top-%d pruning vs exhaustive scoring "
      "(cache off)\n",
      kTopK);
  table.print(std::cout);

  FILE* out = std::fopen("BENCH_pruned_query_qps.json", "w");
  if (out != nullptr) {
    std::fprintf(out, "{\n  \"bench\": \"pruned_query_qps\",\n");
    std::fprintf(out, "  \"corpus_posts\": %zu,\n", corpus_size);
    std::fprintf(out, "  \"window_ms\": %d,\n", window_ms());
    std::fprintf(out, "  \"batch_size\": %zu,\n", kBatchSize);
    std::fprintf(out, "  \"top_k\": %d,\n", kTopK);
    std::fprintf(out, "  \"configs\": [\n");
    for (size_t i = 0; i < rows.size(); ++i) {
      const QpsRow& row = rows[i];
      double base = exhaustive_qps(row.query_threads);
      std::fprintf(out,
                   "    {\"query_threads\": %d, \"pruned\": %s, "
                   "\"qps\": %.1f, \"queries\": %llu, "
                   "\"units_scored\": %llu, \"units_pruned\": %llu, "
                   "\"speedup_vs_exhaustive\": %.2f}%s\n",
                   row.query_threads, row.pruned ? "true" : "false", row.qps,
                   static_cast<unsigned long long>(row.queries),
                   static_cast<unsigned long long>(row.units_scored),
                   static_cast<unsigned long long>(row.units_pruned),
                   base > 0.0 ? row.qps / base : 0.0,
                   i + 1 < rows.size() ? "," : "");
    }
    std::fprintf(out, "  ]\n}\n");
    std::fclose(out);
    std::printf("wrote BENCH_pruned_query_qps.json\n");
  }
  return 0;
}
