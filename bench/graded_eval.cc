// Graded-relevance companion to Table 4, promoted to a pass/fail quality
// gate over adversarial CQA workloads.
//
// Part 1 reproduces the original study: the paper chooses binary
// judgments ("we are interested in returning to the user only highly
// related posts", Sec. 9.2.1, citing Kekalainen 2005 on binary vs graded
// relevance); this part evaluates the same runs under graded relevance —
// grade 2 for same-scenario posts (same problem), grade 1 for
// same-component posts (the paper's Doc A/B pair: same hardware,
// different question), 0 otherwise — reporting nDCG@5 next to binary
// mean precision.
//
// Part 2 is the GATE. Three adversarial workloads modeled on
// SemEval-2016 Task 3 (src/datagen/adversarial.h) — near-duplicate
// question pairs, bursty hot-topic streams (the burst arrives as ONLINE
// ingests after the offline build), and cross-domain confounder
// vocabulary — are served by the production pipeline and judged at
// meanPrec@5 against the generator's same-scenario ground truth. Every
// profile has a calibrated floor; any profile scoring below its floor
// prints GATE FAILED and exits non-zero, which fails
// scripts/reproduce.sh (same contract as bench/drift_over_time).
// Results are recorded in BENCH_adversarial_eval.json; reproduce.sh
// checks the schema. IBSEG_BENCH_SCALE scales every corpus.

#include <cstdio>
#include <iostream>
#include <vector>

#include "bench/bench_common.h"
#include "core/serving.h"
#include "datagen/adversarial.h"
#include "eval/ndcg.h"
#include "eval/precision.h"
#include "util/strings.h"
#include "util/table_printer.h"

namespace ibseg {
namespace {

// ----------------- Part 1: graded-relevance companion to Table 4 --------

void graded_table() {
  SyntheticCorpus corpus = generate_corpus(bench::eval_profile(
      ForumDomain::kTechSupport,
      static_cast<size_t>(400 * bench::bench_scale())));
  std::vector<Document> docs = analyze_corpus(corpus);

  const std::vector<MethodKind> methods = {
      MethodKind::kFullText, MethodKind::kContentMR,
      MethodKind::kSentIntentMR, MethodKind::kIntentIntentMR};
  MethodConfig config;

  TablePrinter t({"Method", "binary meanPrec@5", "graded nDCG@5"});
  for (MethodKind kind : methods) {
    auto method = build_method(kind, docs, config, nullptr);
    double prec_total = 0.0;
    double ndcg_total = 0.0;
    size_t queries = 0;
    for (DocId q = 0; q < docs.size(); q += 2) {
      int scenario = corpus.posts[q].scenario_id;
      int component = corpus.posts[q].component_id;
      auto grade = [&](DocId d) {
        if (corpus.posts[d].scenario_id == scenario) return 2;
        if (corpus.posts[d].component_id == component) return 1;
        return 0;
      };
      // Ideal grade multiset over the whole corpus (minus the query).
      std::vector<int> ideal;
      for (DocId d = 0; d < docs.size(); ++d) {
        if (d != q) ideal.push_back(grade(d));
      }
      auto related = method->find_related(q, 5);
      std::vector<DocId> ids;
      size_t hits = 0;
      for (const ScoredDoc& sd : related) {
        ids.push_back(sd.doc);
        if (grade(sd.doc) == 2) ++hits;
      }
      prec_total += related.empty()
                        ? 0.0
                        : static_cast<double>(hits) / related.size();
      ndcg_total += ndcg(ids, grade, std::move(ideal));
      ++queries;
    }
    t.add_row({method_name(kind),
               str_format("%.3f", prec_total / queries),
               str_format("%.3f", ndcg_total / queries)});
  }
  std::printf("== Graded relevance (companion to Table 4; grade 2 = same"
              " problem, 1 = same component) ==\n\n");
  t.print(std::cout);
  std::printf("\n(Under graded relevance, same-component matches — worthless"
              " under the paper's binary judgment — earn partial credit,"
              " which favors whole-post matching even more strongly; the"
              " paper's binary choice is the stricter test.)\n\n");
}

// --------------------------- Part 2: adversarial CQA quality gate --------

/// Calibrated meanPrec@5 floor per profile. The floors sit well below
/// the scores a healthy pipeline produces (see the table the gate
/// prints) so the gate trips on real retrieval regressions, not on
/// noise; they are NOT aspirational targets.
double floor_for(const std::string& profile) {
  // Calibration (scale 1.0, the default): observed 0.030 / 0.400 / 0.150.
  if (profile == "near_duplicates") return 0.02;   // max 0.2 (1 relevant)
  if (profile == "bursty_hot_topic") return 0.28;
  if (profile == "cross_domain_confounders") return 0.10;
  return 0.0;
}

struct GateRow {
  std::string profile;
  size_t posts = 0;
  size_t queries = 0;
  double mean_prec5 = 0.0;
  double mean_ndcg5 = 0.0;
  double max_mean_prec5 = 0.0;
  double floor = 0.0;
  bool pass = false;
};

GateRow run_profile(const AdversarialCorpus& adversarial) {
  const SyntheticCorpus& corpus = adversarial.corpus;
  // Offline build over the prefix; the rest arrives as streaming ingests
  // in corpus order (the bursty profile's hot threads land here).
  std::vector<Document> offline;
  offline.reserve(adversarial.offline_posts);
  for (size_t i = 0; i < adversarial.offline_posts; ++i) {
    offline.push_back(
        Document::analyze(static_cast<DocId>(i), corpus.posts[i].text));
  }
  ServingPipeline serving(RelatedPostPipeline::build(std::move(offline)));
  for (size_t i = adversarial.offline_posts; i < corpus.posts.size(); ++i) {
    serving.add_post(corpus.posts[i].text);
  }

  std::vector<double> precisions;
  double ndcg_total = 0.0;
  for (DocId q : adversarial.queries) {
    int scenario = corpus.posts[q].scenario_id;
    int component = corpus.posts[q].component_id;
    auto grade = [&](DocId d) {
      if (d == q) return 0;
      if (corpus.posts[d].scenario_id == scenario) return 2;
      if (corpus.posts[d].component_id == component) return 1;
      return 0;
    };
    auto result = serving.find_related(q, 5);
    std::vector<DocId> ids;
    ids.reserve(result.results.size());
    for (const ScoredDoc& sd : result.results) ids.push_back(sd.doc);
    precisions.push_back(
        list_precision(ids, [&](DocId d) { return grade(d) == 2; }));
    std::vector<int> ideal;
    ideal.reserve(corpus.posts.size());
    for (DocId d = 0; d < corpus.posts.size(); ++d) {
      if (d != q) ideal.push_back(grade(d));
    }
    ndcg_total += ndcg(ids, grade, std::move(ideal));
  }

  GateRow row;
  row.profile = adversarial.name;
  row.posts = corpus.posts.size();
  row.queries = adversarial.queries.size();
  row.mean_prec5 = summarize_precision(precisions).mean;
  row.mean_ndcg5 = adversarial.queries.empty()
                       ? 0.0
                       : ndcg_total /
                             static_cast<double>(adversarial.queries.size());
  row.max_mean_prec5 = adversarial.max_mean_prec5;
  row.floor = floor_for(adversarial.name);
  row.pass = row.mean_prec5 >= row.floor;
  return row;
}

int adversarial_gate(size_t num_posts) {
  std::vector<GateRow> rows;
  for (const AdversarialCorpus& profile :
       all_adversarial_profiles(num_posts)) {
    rows.push_back(run_profile(profile));
  }

  std::printf("== Adversarial CQA gate (SemEval-2016 Task 3 stress axes,"
              " top-5) ==\n");
  TablePrinter t({"profile", "posts", "queries", "meanPrec@5", "nDCG@5",
                  "max", "floor", "gate"});
  for (const GateRow& row : rows) {
    t.add_row({row.profile, str_format("%zu", row.posts),
               str_format("%zu", row.queries),
               str_format("%.3f", row.mean_prec5),
               str_format("%.3f", row.mean_ndcg5),
               str_format("%.3f", row.max_mean_prec5),
               str_format("%.3f", row.floor), row.pass ? "pass" : "FAIL"});
  }
  t.print(std::cout);

  FILE* out = std::fopen("BENCH_adversarial_eval.json", "w");
  if (out != nullptr) {
    std::fprintf(out, "{\n  \"bench\": \"adversarial_eval\",\n");
    std::fprintf(out, "  \"profiles\": [\n");
    for (size_t i = 0; i < rows.size(); ++i) {
      const GateRow& row = rows[i];
      std::fprintf(out,
                   "    {\"profile\": \"%s\", \"posts\": %zu, "
                   "\"queries\": %zu, \"mean_prec5\": %.4f, "
                   "\"mean_ndcg5\": %.4f, \"max_mean_prec5\": %.4f, "
                   "\"floor\": %.4f, \"pass\": %s}%s\n",
                   row.profile.c_str(), row.posts, row.queries,
                   row.mean_prec5, row.mean_ndcg5, row.max_mean_prec5,
                   row.floor, row.pass ? "true" : "false",
                   i + 1 < rows.size() ? "," : "");
    }
    std::fprintf(out, "  ]\n}\n");
    std::fclose(out);
    std::printf("wrote BENCH_adversarial_eval.json\n");
  }

  bool all_pass = true;
  for (const GateRow& row : rows) {
    if (!row.pass) {
      all_pass = false;
      std::fprintf(stderr,
                   "GATE FAILED: profile %s meanPrec@5 %.3f below floor"
                   " %.3f (max achievable %.3f)\n",
                   row.profile.c_str(), row.mean_prec5, row.floor,
                   row.max_mean_prec5);
    }
  }
  if (!all_pass) return 1;
  std::printf("GATE PASSED\n");
  return 0;
}

int run() {
  graded_table();
  return adversarial_gate(static_cast<size_t>(240 * bench::bench_scale()));
}

}  // namespace
}  // namespace ibseg

int main() { return ibseg::run(); }
