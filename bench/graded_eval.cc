// Graded-relevance companion to Table 4. The paper chooses binary
// judgments ("we are interested in returning to the user only highly
// related posts", Sec. 9.2.1, citing Kekalainen 2005 on binary vs graded
// relevance); this bench evaluates the same runs under graded relevance —
// grade 2 for same-scenario posts (same problem), grade 1 for
// same-component posts (the paper's Doc A/B pair: same hardware, different
// question), 0 otherwise — reporting nDCG@5 next to binary mean precision.

#include <cstdio>
#include <iostream>
#include <vector>

#include "bench/bench_common.h"
#include "eval/ndcg.h"
#include "util/strings.h"
#include "util/table_printer.h"

namespace ibseg {
namespace {

void run() {
  SyntheticCorpus corpus = generate_corpus(bench::eval_profile(
      ForumDomain::kTechSupport,
      static_cast<size_t>(400 * bench::bench_scale())));
  std::vector<Document> docs = analyze_corpus(corpus);

  const std::vector<MethodKind> methods = {
      MethodKind::kFullText, MethodKind::kContentMR,
      MethodKind::kSentIntentMR, MethodKind::kIntentIntentMR};
  MethodConfig config;

  TablePrinter t({"Method", "binary meanPrec@5", "graded nDCG@5"});
  for (MethodKind kind : methods) {
    auto method = build_method(kind, docs, config, nullptr);
    double prec_total = 0.0;
    double ndcg_total = 0.0;
    size_t queries = 0;
    for (DocId q = 0; q < docs.size(); q += 2) {
      int scenario = corpus.posts[q].scenario_id;
      int component = corpus.posts[q].component_id;
      auto grade = [&](DocId d) {
        if (corpus.posts[d].scenario_id == scenario) return 2;
        if (corpus.posts[d].component_id == component) return 1;
        return 0;
      };
      // Ideal grade multiset over the whole corpus (minus the query).
      std::vector<int> ideal;
      for (DocId d = 0; d < docs.size(); ++d) {
        if (d != q) ideal.push_back(grade(d));
      }
      auto related = method->find_related(q, 5);
      std::vector<DocId> ids;
      size_t hits = 0;
      for (const ScoredDoc& sd : related) {
        ids.push_back(sd.doc);
        if (grade(sd.doc) == 2) ++hits;
      }
      prec_total += related.empty()
                        ? 0.0
                        : static_cast<double>(hits) / related.size();
      ndcg_total += ndcg(ids, grade, std::move(ideal));
      ++queries;
    }
    t.add_row({method_name(kind),
               str_format("%.3f", prec_total / queries),
               str_format("%.3f", ndcg_total / queries)});
  }
  std::printf("== Graded relevance (companion to Table 4; grade 2 = same"
              " problem, 1 = same component) ==\n\n");
  t.print(std::cout);
  std::printf("\n(Under graded relevance, same-component matches — worthless"
              " under the paper's binary judgment — earn partial credit,"
              " which favors whole-post matching even more strongly; the"
              " paper's binary choice is the stricter test.)\n");
}

}  // namespace
}  // namespace ibseg

int main() {
  ibseg::run();
  return 0;
}
