// Parallel/cached query throughput: queries/sec through
// ServingPipeline::find_related_batch at 1, 4 and 8 matcher query
// threads, with the result cache off and on — the repeated-query CQA
// workload (duplicate/near-duplicate question lookups dominate community
// QA traffic) the epoch-invalidated cache is built for. The workload
// draws 80% of queries from a small hot set and 20% uniformly, so the
// cache-on rows show the hit-dominated regime while cache-off rows
// isolate the pure fan-out scaling. Thread rows above the machine's core
// count are oversubscribed and report hardware-limited numbers
// (hardware_threads is recorded in the JSON for exactly that reason).
//
// Results print as a table and are recorded in
// BENCH_parallel_query_qps.json (current working directory, like the
// other reproduce.sh outputs); scripts/reproduce.sh checks the JSON
// schema. IBSEG_BENCH_SCALE scales the corpus; IBSEG_QPS_WINDOW_MS
// overrides the per-configuration measurement window.

#include <cstdint>
#include <cstdio>
#include <cstdlib>
#include <iostream>
#include <string>
#include <thread>
#include <vector>

#include "bench/bench_common.h"
#include "core/serving.h"
#include "util/rng.h"
#include "util/stopwatch.h"
#include "util/table_printer.h"

namespace ibseg {
namespace {

constexpr size_t kBatchSize = 64;
constexpr size_t kHotSetSize = 16;

struct QpsRow {
  int query_threads = 0;
  bool cache = false;
  double qps = 0.0;
  uint64_t queries = 0;
  uint64_t cache_hits = 0;
  double hit_rate = 0.0;
};

std::string fmt(double v, int precision) {
  char buf[64];
  std::snprintf(buf, sizeof(buf), "%.*f", precision, v);
  return buf;
}

int window_ms() {
  const char* env = std::getenv("IBSEG_QPS_WINDOW_MS");
  if (env == nullptr) return 1200;
  int v = std::atoi(env);
  return v > 0 ? v : 1200;
}

QpsRow run_config(const SyntheticCorpus& corpus,
                  const PipelineSnapshot& snapshot, int query_threads,
                  bool cache) {
  PipelineOptions build_options;
  build_options.matcher.query_threads = query_threads;
  ServingOptions serving_options;
  if (cache) {
    serving_options.cache.capacity = 4096;
    serving_options.cache.shards = 8;
  }
  ServingPipeline serving(
      RelatedPostPipeline::build_from_snapshot(analyze_corpus(corpus),
                                               snapshot, build_options),
      serving_options);
  const size_t num_docs = serving.seed_docs();

  // Repeated-query mix: 80% hot set, 20% uniform. Deterministic schedule
  // per config (same seed), so every row answers the same query stream.
  Rng rng(99);
  auto next_query = [&]() -> DocId {
    if (rng.next_bool(0.8)) {
      return static_cast<DocId>(rng.next_below(kHotSetSize) %
                                static_cast<uint64_t>(num_docs));
    }
    return static_cast<DocId>(rng.next_below(num_docs));
  };

  const double window_sec = window_ms() / 1000.0;
  uint64_t queries = 0;
  Stopwatch watch;
  std::vector<DocId> batch(kBatchSize);
  while (watch.elapsed_seconds() < window_sec) {
    for (DocId& q : batch) q = next_query();
    serving.find_related_batch(batch, 5);
    queries += kBatchSize;
  }
  double elapsed = watch.elapsed_seconds();

  QpsRow row;
  row.query_threads = query_threads;
  row.cache = cache;
  row.queries = queries;
  row.qps = static_cast<double>(queries) / elapsed;
  if (serving.query_cache() != nullptr) {
    row.cache_hits = serving.query_cache()->hits();
    uint64_t lookups =
        serving.query_cache()->hits() + serving.query_cache()->misses();
    row.hit_rate = lookups > 0
                       ? static_cast<double>(row.cache_hits) / lookups
                       : 0.0;
  }
  return row;
}

}  // namespace
}  // namespace ibseg

int main() {
  using namespace ibseg;
  using namespace ibseg::bench;

  const size_t corpus_size = static_cast<size_t>(240 * bench_scale());
  GeneratorOptions gen = eval_profile(ForumDomain::kTechSupport, corpus_size);
  SyntheticCorpus corpus = generate_corpus(gen);

  // One shared offline build; per-config pipelines restore from its
  // snapshot so every configuration serves identical state.
  RelatedPostPipeline offline =
      RelatedPostPipeline::build(analyze_corpus(corpus), {});
  PipelineSnapshot snapshot = offline.snapshot();

  std::vector<QpsRow> rows;
  for (int query_threads : {1, 4, 8}) {
    for (bool cache : {false, true}) {
      rows.push_back(run_config(corpus, snapshot, query_threads, cache));
    }
  }

  // Speedups are against the serial uncached row (query_threads 1,
  // cache off).
  double base_qps = rows[0].qps;
  TablePrinter table({"query threads", "cache", "queries/sec", "hit rate",
                      "speedup vs serial"});
  for (const QpsRow& row : rows) {
    table.add_row({std::to_string(row.query_threads),
                   row.cache ? "on" : "off", fmt(row.qps, 1),
                   row.cache ? fmt(row.hit_rate, 2) : "-",
                   fmt(base_qps > 0.0 ? row.qps / base_qps : 0.0, 2)});
  }
  std::printf(
      "parallel_query_qps: batched query throughput, fan-out x cache\n");
  table.print(std::cout);

  FILE* out = std::fopen("BENCH_parallel_query_qps.json", "w");
  if (out != nullptr) {
    std::fprintf(out, "{\n  \"bench\": \"parallel_query_qps\",\n");
    std::fprintf(out, "  \"corpus_posts\": %zu,\n", corpus_size);
    std::fprintf(out, "  \"window_ms\": %d,\n", window_ms());
    std::fprintf(out, "  \"batch_size\": %zu,\n", kBatchSize);
    std::fprintf(out, "  \"hardware_threads\": %u,\n",
                 std::thread::hardware_concurrency());
    std::fprintf(out, "  \"configs\": [\n");
    for (size_t i = 0; i < rows.size(); ++i) {
      const QpsRow& row = rows[i];
      std::fprintf(out,
                   "    {\"query_threads\": %d, \"cache\": %s, "
                   "\"qps\": %.1f, \"queries\": %llu, "
                   "\"cache_hits\": %llu, \"cache_hit_rate\": %.3f, "
                   "\"speedup_vs_serial\": %.2f}%s\n",
                   row.query_threads, row.cache ? "true" : "false", row.qps,
                   static_cast<unsigned long long>(row.queries),
                   static_cast<unsigned long long>(row.cache_hits),
                   row.hit_rate,
                   base_qps > 0.0 ? row.qps / base_qps : 0.0,
                   i + 1 < rows.size() ? "," : "");
    }
    std::fprintf(out, "  ]\n}\n");
    std::fclose(out);
    std::printf("wrote BENCH_parallel_query_qps.json\n");
  }
  return 0;
}
