// Reproduces paper Fig. 2: the communication-means value tracks along the
// motivating post (Fig. 1 Doc A) and the segmentations induced by
// (a) CM_tense alone, (b) CM_subj alone, (c) CM_qneg alone,
// (d) the full intention-based configuration, and (e) Hearst's thematic
// segmentation — showing how different the intention borders are from the
// topical ones.

#include <cstdio>
#include <string>

#include "seg/segmenter.h"

namespace ibseg {
namespace {

const char* kDocA =
    "I have an HP system with a RAID controller and four disks in form of a "
    "JBOD. I would like to install Hadoop with a replication HDFS and only "
    "part of the disk space used from every disk. Do you know whether it "
    "would perform ok or whether the partial use of the disk would degrade "
    "performance? Friends have downloaded the Cloudera distribution but it "
    "did not work. It stopped since the web site was suggesting to have "
    "larger disks. I am asking because I do not want to install Linux to "
    "find that my hardware configuration is not right.";

char dominant_value(const CmProfile& p, CmKind cm) {
  int arity = kCmArity[static_cast<int>(cm)];
  int best = -1;
  double best_count = 0.0;
  for (int v = 0; v < arity; ++v) {
    if (p.count(cm, v) > best_count) {
      best_count = p.count(cm, v);
      best = v;
    }
  }
  return best < 0 ? '.' : static_cast<char>('0' + best);
}

void print_segmentation_line(char tag, const char* name,
                             const Segmentation& seg) {
  std::printf("  (%c) %-22s ", tag, name);
  for (size_t u = 0; u < seg.num_units; ++u) {
    bool border = false;
    for (size_t b : seg.borders) border |= (b == u);
    std::printf("%s%zu ", border ? "| " : "", u + 1);
  }
  std::printf("  -> %zu segments\n", seg.num_segments());
}

void run() {
  Document doc = Document::analyze(0, kDocA);
  std::printf("== Fig. 2: CM tracks and segmentations of Fig. 1 Doc A ==\n\n");
  for (size_t u = 0; u < doc.num_units(); ++u) {
    std::string_view s = doc.range_text(u, u + 1);
    std::printf("  %zu. %.*s\n", u + 1, static_cast<int>(s.size()), s.data());
  }

  std::printf("\nPer-sentence dominant CM values ('.' = CM absent):\n");
  for (int c = 0; c < kNumCms; ++c) {
    CmKind cm = static_cast<CmKind>(c);
    std::printf("  %-13s ", cm_name(cm));
    for (size_t u = 0; u < doc.num_units(); ++u) {
      std::printf("%c ", dominant_value(doc.unit_profile(u), cm));
    }
    std::printf("\n");
  }

  std::printf("\nSegmentations ('|' before a sentence = border):\n");
  Vocabulary vocab;
  struct SingleCm {
    char tag;
    const char* name;
    CmKind cm;
  };
  for (SingleCm s : {SingleCm{'a', "CM_tense only", CmKind::kTense},
                     SingleCm{'b', "CM_subj only", CmKind::kSubject},
                     SingleCm{'c', "CM_qneg only", CmKind::kStyle}}) {
    SegScoring scoring;
    scoring.cm_mask = 1u << static_cast<int>(s.cm);
    print_segmentation_line(
        s.tag, s.name,
        select_borders(doc, BorderStrategyKind::kTile, scoring));
  }
  // (d) per the paper: Table 1 features + Sec. 5.2 coherence/depth +
  // Eq. 4 scoring (the Tile mechanism over all CMs).
  print_segmentation_line(
      'd', "intention-based (all)",
      select_borders(doc, BorderStrategyKind::kTile, SegScoring{}));
  print_segmentation_line('e', "Hearst thematic",
                          texttiling_segment(doc, vocab));
  std::printf(
      "\n(The paper's point: (d) differs significantly from the thematic"
      " segmentation (e) — borders fall at intention shifts, e.g. before"
      " the 'Do you know...' request, not at topic shifts.)\n");
}

}  // namespace
}  // namespace ibseg

int main() {
  ibseg::run();
  return 0;
}
