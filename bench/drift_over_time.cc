// Intentions over time, promoted to a pass/fail quality gate for the
// background re-clustering epoch (docs/ARCHITECTURE.md §9).
//
// Part 1 reproduces the paper's observational side experiment (Sec. 9.2):
// "we have investigated the way that intentions change over time by
// performing a comparison between the intentions in the posts of two
// consecutive years ... and noticed no significant changes." Two
// programming-forum corpora with disjoint seeds and scenario populations
// ("year 1" and "year 2") are clustered independently and their intention
// centroids aligned by greedy best cosine match; near-1 similarities
// reproduce the finding.
//
// Part 2 is the gate — drift that actually hurts. Within one genre the
// paper's stability finding holds and nearest-centroid ingest loses
// almost nothing, so the gate uses the scenario where the streaming
// approximation genuinely degrades: a THIN seed (a small year-1
// programming corpus, so the offline clustering is built from a sliver
// of what the index will eventually hold) followed by a 4x larger
// year-2 stream from a different forum genre (travel). The stale
// centroids misfit the stream, and year-2 queries are answered under
// year-1 intention structure ("drifted").
// Retrieval quality over the year-2 queries — meanPrec@5 against the
// generator's same-scenario ground truth and graded nDCG@5 (2 = same
// scenario, 1 = same component; the graded_eval harness judgments) — is
// measured in three conditions:
//
//   fresh       cold build over the combined two-year corpus (the ideal
//               a recluster aims for),
//   drifted     year-1 build + year-2 streaming ingests,
//   reclustered the drifted pipeline after one recluster() epoch.
//
// GATE: the recluster must recover at least kMinRecovery of the quality
// lost to drift, per metric:
//   (reclustered - drifted) / (fresh - drifted) >= kMinRecovery
// whenever drift cost anything (fresh > drifted). The differential suite
// proves reclustered == fresh bit-identically, so the expected recovered
// fraction is exactly 1.0; the gate's slack exists only so the bench
// fails loudly on a real regression rather than flaking on a tie. A
// failed gate exits non-zero, which fails scripts/reproduce.sh.
//
// IBSEG_BENCH_SCALE scales both corpora.

#include <cstdio>
#include <iostream>
#include <vector>

#include "bench/bench_common.h"
#include "cluster/intention_clusters.h"
#include "core/serving.h"
#include "eval/ndcg.h"
#include "eval/precision.h"
#include "seg/segmenter.h"
#include "util/strings.h"
#include "util/table_printer.h"
#include "util/vector_math.h"

namespace ibseg {
namespace {

constexpr double kMinRecovery = 0.9;
constexpr int kTopK = 5;

IntentionClustering cluster_year(uint64_t seed, size_t posts) {
  GeneratorOptions gen =
      bench::eval_profile(ForumDomain::kProgramming, posts, seed);
  SyntheticCorpus corpus = generate_corpus(gen);
  std::vector<Document> docs = analyze_corpus(corpus);
  Segmenter segmenter = Segmenter::cm_tiling();
  Vocabulary vocab;
  std::vector<Segmentation> segs(docs.size());
  for (size_t d = 0; d < docs.size(); ++d) {
    segs[d] = segmenter.segment(docs[d], vocab);
  }
  return IntentionClustering::build(docs, segs);
}

// ----------------------- Part 1: centroid stability table (Sec. 9.2) ----

void centroid_stability(size_t posts) {
  IntentionClustering year1 = cluster_year(101, posts);
  IntentionClustering year2 = cluster_year(202, posts);

  std::printf("== Intentions over time (Sec. 9.2 side experiment) ==\n");
  std::printf("Year 1: %d clusters; Year 2: %d clusters\n\n",
              year1.num_clusters(), year2.num_clusters());

  TablePrinter t({"Year-1 cluster", "size", "best Year-2 match",
                  "centroid cosine"});
  double total = 0.0;
  for (int c1 = 0; c1 < year1.num_clusters(); ++c1) {
    const auto& centroid = year1.centroids()[static_cast<size_t>(c1)];
    int best = -1;
    double best_sim = -1.0;
    for (int c2 = 0; c2 < year2.num_clusters(); ++c2) {
      double sim = cosine_similarity(
          centroid, year2.centroids()[static_cast<size_t>(c2)]);
      if (sim > best_sim) {
        best_sim = sim;
        best = c2;
      }
    }
    total += best_sim;
    t.add_row({str_format("I%d", c1),
               str_format("%zu",
                          year1.cluster_members()[static_cast<size_t>(c1)]
                              .size()),
               str_format("I%d", best), str_format("%.3f", best_sim)});
  }
  t.print(std::cout);
  std::printf("\nMean best-match centroid cosine: %.3f\n",
              total / year1.num_clusters());
  std::printf("(Values near 1 reproduce the paper's 'no significant"
              " changes' finding: the intention structure is a property of"
              " the forum genre, not of the particular posts.)\n\n");
}

// ------------------------------- Part 2: recluster recovery gate --------

/// Binary meanPrec@k and graded mean nDCG@k of `serving` over every
/// year-2 post as the query, judged against year-2 ground truth. Year-1
/// documents are a different scenario population, so they grade 0 — a
/// drifted pipeline that keeps ranking year-1 posts for year-2 queries
/// loses on both metrics.
struct Quality {
  double mean_prec = 0.0;
  double mean_ndcg = 0.0;
};

Quality evaluate(const ServingPipeline& serving,
                 const SyntheticCorpus& year2, size_t year1_docs) {
  const size_t n2 = year2.posts.size();
  auto grade_of = [&](DocId q, DocId d) {
    if (d < year1_docs || d == q) return 0;
    const GeneratedPost& cand = year2.posts[d - year1_docs];
    const GeneratedPost& query = year2.posts[q - year1_docs];
    if (cand.scenario_id == query.scenario_id) return 2;
    if (cand.component_id == query.component_id) return 1;
    return 0;
  };
  std::vector<double> precisions;
  double ndcg_total = 0.0;
  for (size_t j = 0; j < n2; ++j) {
    DocId q = static_cast<DocId>(year1_docs + j);
    auto result = serving.find_related(q, kTopK);
    std::vector<DocId> ids;
    ids.reserve(result.results.size());
    for (const ScoredDoc& sd : result.results) ids.push_back(sd.doc);
    precisions.push_back(list_precision(
        ids, [&](DocId d) { return grade_of(q, d) == 2; }));
    std::vector<int> ideal;
    ideal.reserve(year1_docs + n2);
    for (size_t d = 0; d < year1_docs + n2; ++d) {
      if (static_cast<DocId>(d) != q) {
        ideal.push_back(grade_of(q, static_cast<DocId>(d)));
      }
    }
    ndcg_total += ndcg(ids, [&](DocId d) { return grade_of(q, d); },
                       std::move(ideal));
  }
  Quality quality;
  quality.mean_prec = summarize_precision(precisions).mean;
  quality.mean_ndcg = n2 > 0 ? ndcg_total / static_cast<double>(n2) : 0.0;
  return quality;
}

/// Fraction of the drift-induced quality loss the recluster won back;
/// 1.0 when drift cost nothing (there was nothing to recover).
double recovered_fraction(double fresh, double drifted, double reclustered) {
  const double lost = fresh - drifted;
  if (lost <= 1e-12) return 1.0;
  return (reclustered - drifted) / lost;
}

int recovery_gate(size_t year1_posts, size_t year2_posts) {
  SyntheticCorpus year1 = generate_corpus(
      bench::eval_profile(ForumDomain::kProgramming, year1_posts, 101));
  SyntheticCorpus year2 = generate_corpus(
      bench::eval_profile(ForumDomain::kTravel, year2_posts, 202));
  const size_t n1 = year1.posts.size();

  // Drifted: year-1 offline build, year-2 arrives through streaming
  // nearest-centroid ingest (ids n1..n1+n2-1, the order add_post assigns).
  ServingPipeline drifted(RelatedPostPipeline::build(analyze_corpus(year1)));
  for (const GeneratedPost& p : year2.posts) drifted.add_post(p.text);

  // Fresh: the cold two-year build the recluster is measured against,
  // with the year-2 documents at the very ids add_post handed out.
  std::vector<Document> combined = analyze_corpus(year1);
  for (size_t j = 0; j < year2.posts.size(); ++j) {
    combined.push_back(Document::analyze(static_cast<DocId>(n1 + j),
                                         year2.posts[j].text));
  }
  ServingPipeline fresh(RelatedPostPipeline::build(std::move(combined)));

  const Quality q_drifted = evaluate(drifted, year2, n1);
  const Quality q_fresh = evaluate(fresh, year2, n1);
  drifted.recluster();
  const Quality q_reclustered = evaluate(drifted, year2, n1);

  const double rec_prec = recovered_fraction(
      q_fresh.mean_prec, q_drifted.mean_prec, q_reclustered.mean_prec);
  const double rec_ndcg = recovered_fraction(
      q_fresh.mean_ndcg, q_drifted.mean_ndcg, q_reclustered.mean_ndcg);

  std::printf("== Recluster recovery gate (year-2 queries, top-%d) ==\n",
              kTopK);
  TablePrinter t({"condition", "meanPrec@5", "nDCG@5"});
  t.add_row({"fresh (cold two-year build)",
             str_format("%.3f", q_fresh.mean_prec),
             str_format("%.3f", q_fresh.mean_ndcg)});
  t.add_row({"drifted (year-1 build + ingest)",
             str_format("%.3f", q_drifted.mean_prec),
             str_format("%.3f", q_drifted.mean_ndcg)});
  t.add_row({"reclustered (one epoch)",
             str_format("%.3f", q_reclustered.mean_prec),
             str_format("%.3f", q_reclustered.mean_ndcg)});
  t.print(std::cout);
  std::printf("\nRecovered fraction of drift loss: meanPrec@5 %.3f,"
              " nDCG@5 %.3f (gate: >= %.2f)\n",
              rec_prec, rec_ndcg, kMinRecovery);
  std::printf("Offline generation after gate: %llu\n",
              static_cast<unsigned long long>(drifted.offline_generation()));

  if (rec_prec < kMinRecovery || rec_ndcg < kMinRecovery) {
    std::fprintf(stderr,
                 "GATE FAILED: recluster recovered %.3f (prec) / %.3f"
                 " (ndcg) of the quality lost to drift; required %.2f.\n"
                 "The swap is supposed to be bit-identical to the fresh"
                 " build — see tests/recluster_differential_test.cc.\n",
                 rec_prec, rec_ndcg, kMinRecovery);
    return 1;
  }
  std::printf("GATE PASSED\n");
  return 0;
}

int run() {
  centroid_stability(static_cast<size_t>(400 * bench::bench_scale()));
  return recovery_gate(static_cast<size_t>(48 * bench::bench_scale()),
                       static_cast<size_t>(192 * bench::bench_scale()));
}

}  // namespace
}  // namespace ibseg

int main() { return ibseg::run(); }
