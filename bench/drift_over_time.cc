// Reproduces the paper's intentions-over-time observation (Sec. 9.2): "we
// have investigated the way that intentions change over time by performing
// a comparison between the intentions in the posts of two consecutive
// years ... and noticed no significant changes."
//
// We generate two programming-forum corpora with disjoint seeds and
// scenario populations ("year 1" and "year 2"), cluster each independently,
// and align the intention-cluster centroids across years by greedy best
// cosine match. Stable intentions show up as near-1 centroid similarities.

#include <cstdio>
#include <iostream>
#include <vector>

#include "bench/bench_common.h"
#include "cluster/intention_clusters.h"
#include "seg/segmenter.h"
#include "util/strings.h"
#include "util/table_printer.h"
#include "util/vector_math.h"

namespace ibseg {
namespace {

IntentionClustering cluster_year(uint64_t seed, size_t posts) {
  GeneratorOptions gen =
      bench::eval_profile(ForumDomain::kProgramming, posts, seed);
  SyntheticCorpus corpus = generate_corpus(gen);
  std::vector<Document> docs = analyze_corpus(corpus);
  Segmenter segmenter = Segmenter::cm_tiling();
  Vocabulary vocab;
  std::vector<Segmentation> segs(docs.size());
  for (size_t d = 0; d < docs.size(); ++d) {
    segs[d] = segmenter.segment(docs[d], vocab);
  }
  return IntentionClustering::build(docs, segs);
}

void run() {
  size_t posts = static_cast<size_t>(400 * bench::bench_scale());
  IntentionClustering year1 = cluster_year(101, posts);
  IntentionClustering year2 = cluster_year(202, posts);

  std::printf("== Intentions over time (Sec. 9.2 side experiment) ==\n");
  std::printf("Year 1: %d clusters; Year 2: %d clusters\n\n",
              year1.num_clusters(), year2.num_clusters());

  TablePrinter t({"Year-1 cluster", "size", "best Year-2 match",
                  "centroid cosine"});
  double total = 0.0;
  for (int c1 = 0; c1 < year1.num_clusters(); ++c1) {
    const auto& centroid = year1.centroids()[static_cast<size_t>(c1)];
    int best = -1;
    double best_sim = -1.0;
    for (int c2 = 0; c2 < year2.num_clusters(); ++c2) {
      double sim = cosine_similarity(
          centroid, year2.centroids()[static_cast<size_t>(c2)]);
      if (sim > best_sim) {
        best_sim = sim;
        best = c2;
      }
    }
    total += best_sim;
    t.add_row({str_format("I%d", c1),
               str_format("%zu",
                          year1.cluster_members()[static_cast<size_t>(c1)]
                              .size()),
               str_format("I%d", best), str_format("%.3f", best_sim)});
  }
  t.print(std::cout);
  std::printf("\nMean best-match centroid cosine: %.3f\n",
              total / year1.num_clusters());
  std::printf("(Values near 1 reproduce the paper's 'no significant"
              " changes' finding: the intention structure is a property of"
              " the forum genre, not of the particular posts.)\n");
}

}  // namespace
}  // namespace ibseg

int main() {
  ibseg::run();
  return 0;
}
