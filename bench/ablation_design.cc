// Ablations for the design choices the paper discusses but does not table:
//
//   A. Feature selection (Sec. 5.1): segmentation error using each single
//      communication mean vs all five together ("we experimented with
//      different alternatives, either single CMs or combinations").
//   B. Per-intention list length (Sec. 7): the n = factor*k sweep around
//      the paper's empirical n = 2k, plus the Fagin-style threshold
//      variant the paper rejects.
//   C. Segment grouping: DBSCAN-with-eps-grid (default) vs plain k-means
//      vs DBSCAN keeping noise as its own cluster.
//   D. Eq. 7/8 unit-norm floor (this implementation's guard against
//      short-segment weight blowup).

#include <cstdio>
#include <iostream>
#include <vector>

#include "bench/bench_common.h"
#include "index/fulltext_matcher.h"
#include "eval/annotator_sim.h"
#include "eval/window_diff.h"
#include "cluster/optics.h"
#include "seg/feature_selection.h"
#include "seg/segmenter.h"
#include "util/strings.h"
#include "util/table_printer.h"

namespace ibseg {
namespace {

SyntheticCorpus the_corpus() {
  return generate_corpus(bench::eval_profile(
      ForumDomain::kTechSupport,
      static_cast<size_t>(400 * bench::bench_scale())));
}

void ablation_feature_selection(const SyntheticCorpus& corpus,
                                const std::vector<Document>& docs) {
  // References: simulated annotators.
  Rng rng(83);
  std::vector<std::vector<Segmentation>> refs(docs.size());
  for (size_t d = 0; d < docs.size(); ++d) {
    auto anns = simulate_annotators(
        docs[d], corpus.posts[d].true_segmentation,
        corpus.posts[d].segment_intents,
        static_cast<int>(corpus.profile().intentions.size()), 5,
        AnnotatorNoise{}, rng);
    for (const HumanAnnotation& a : anns) refs[d].push_back(a.segmentation);
  }
  auto avg_error = [&](unsigned cm_mask) {
    SegScoring scoring;
    scoring.cm_mask = cm_mask;
    Segmenter segmenter =
        Segmenter::intention(BorderStrategyKind::kTile, scoring);
    Vocabulary vocab;
    double total = 0.0;
    for (size_t d = 0; d < docs.size(); ++d) {
      total += mult_win_diff(refs[d], segmenter.segment(docs[d], vocab));
    }
    return total / static_cast<double>(docs.size());
  };
  TablePrinter t({"CM set", "multWinDiff"});
  for (int c = 0; c < kNumCms; ++c) {
    t.add_row({cm_name(static_cast<CmKind>(c)),
               str_format("%.3f", avg_error(1u << c))});
  }
  t.add_row({"All five (paper Table 1)", str_format("%.3f", avg_error(0x1F))});
  std::printf("== Ablation A: single CMs vs the full Table 1 set ==\n\n");
  t.print(std::cout);

  // The paper's own selection criterion (Sec. 5.1): diversity of segments
  // vs the unsegmented post, over all 31 CM subsets.
  std::vector<CmSubsetScore> ranked = rank_cm_subsets(docs);
  TablePrinter t2({"Rank", "CM subset", "coherence gain", "avg #segments"});
  for (size_t i = 0; i < ranked.size() && i < 5; ++i) {
    t2.add_row({str_format("%zu", i + 1), ranked[i].name,
                str_format("%.3f", ranked[i].mean_gain),
                str_format("%.2f", ranked[i].mean_segments)});
  }
  for (size_t i = ranked.size() - 2; i < ranked.size(); ++i) {
    t2.add_row({str_format("%zu", i + 1), ranked[i].name,
                str_format("%.3f", ranked[i].mean_gain),
                str_format("%.2f", ranked[i].mean_segments)});
  }
  std::printf("\n== Ablation A2: Sec. 5.1 subset selection (top 5 and bottom"
              " 2 of all 31 CM subsets, by segment-vs-post coherence gain)"
              " ==\n\n");
  t2.print(std::cout);
}

void ablation_topn(const SyntheticCorpus& corpus,
                   const std::vector<Document>& docs) {
  TablePrinter t({"Per-intention rule", "mean precision", "zero-lists"});
  for (int factor : {1, 2, 4, 8}) {
    MethodConfig config;
    config.matcher.top_n_factor = factor;
    auto method =
        build_method(MethodKind::kIntentIntentMR, docs, config, nullptr);
    auto s = bench::evaluate_method(*method, corpus, docs.size());
    t.add_row({str_format("top-n, n = %d*k", factor),
               str_format("%.3f", s.mean),
               str_format("%.0f%%", 100.0 * s.zero_fraction)});
  }
  for (double threshold : {0.02, 0.1}) {
    MethodConfig config;
    config.matcher.score_threshold = threshold;
    auto method =
        build_method(MethodKind::kIntentIntentMR, docs, config, nullptr);
    auto s = bench::evaluate_method(*method, corpus, docs.size());
    t.add_row({str_format("score threshold %.2f", threshold),
               str_format("%.3f", s.mean),
               str_format("%.0f%%", 100.0 * s.zero_fraction)});
  }
  std::printf("\n== Ablation B: Algorithm 2 list selection (paper picks"
              " n = 2k) ==\n\n");
  t.print(std::cout);
}

void ablation_grouping(const SyntheticCorpus& corpus,
                       const std::vector<Document>& docs) {
  TablePrinter t({"Grouping", "clusters", "mean precision"});
  auto run = [&](const char* name, GroupingOptions grouping) {
    MethodConfig config;
    config.grouping = grouping;
    MethodBuildStats stats;
    auto method =
        build_method(MethodKind::kIntentIntentMR, docs, config, &stats);
    auto s = bench::evaluate_method(*method, corpus, docs.size());
    t.add_row({name, str_format("%d", stats.num_clusters),
               str_format("%.3f", s.mean)});
  };
  run("DBSCAN eps grid (default)", GroupingOptions{});
  {
    GroupingOptions g;
    g.eps_grid.clear();  // single auto eps, no search
    run("DBSCAN single auto eps", g);
  }
  {
    GroupingOptions g;
    g.eps_grid = {1e-6};  // force degenerate -> k-means fallback
    run("k-means (fallback forced)", g);
  }
  {
    GroupingOptions g;
    g.assign_noise_to_nearest = false;
    run("DBSCAN, noise kept separate", g);
  }
  // OPTICS: compute the ordering once, extract at the DBSCAN-grid's
  // operating radius, and feed the labels through from_labels.
  {
    Segmenter segmenter = Segmenter::cm_tiling();
    Vocabulary vocab;
    std::vector<Segmentation> segs(docs.size());
    std::vector<std::vector<double>> feats;
    for (size_t d = 0; d < docs.size(); ++d) {
      segs[d] = segmenter.segment(docs[d], vocab);
      for (auto [b, e] : segs[d].segments()) {
        if (b == e) continue;
        feats.push_back(segment_feature_vector(docs[d], b, e, {}));
      }
    }
    OpticsParams op;
    OpticsResult ordering = optics(feats, op);
    DbscanResult extracted = extract_dbscan_clustering(
        ordering, feats.size(), ordering.eps_used / 3.0);
    // Noise -> its own trailing cluster so every segment stays matchable.
    int clusters = extracted.num_clusters;
    int noise_cluster = clusters;
    bool has_noise = false;
    for (int& l : extracted.labels) {
      if (l < 0) {
        l = noise_cluster;
        has_noise = true;
      }
    }
    if (has_noise) ++clusters;
    if (clusters == 0) {
      clusters = 1;
      for (int& l : extracted.labels) l = 0;
    }
    auto clustering = IntentionClustering::from_labels(
        docs, segs, extracted.labels, clusters);
    Vocabulary match_vocab;
    auto matcher = IntentionMatcher::build(docs, clustering, match_vocab);
    double total = 0.0;
    size_t queries = 0;
    for (DocId q = 0; q < docs.size(); q += 2) {
      auto related = matcher.find_related(q, 5);
      std::vector<DocId> ids;
      for (const ScoredDoc& sd : related) ids.push_back(sd.doc);
      int scenario = corpus.posts[q].scenario_id;
      total += list_precision(ids, [&](DocId d) {
        return corpus.posts[d].scenario_id == scenario;
      });
      ++queries;
    }
    t.add_row({"OPTICS extraction", str_format("%d", clusters),
               str_format("%.3f", total / queries)});
  }
  std::printf("\n== Ablation C: segment grouping algorithm (paper: DBSCAN,"
              " Sec. 6) ==\n\n");
  t.print(std::cout);
}

void ablation_norm_floor(const SyntheticCorpus& corpus,
                         const std::vector<Document>& docs) {
  TablePrinter t({"Unit-norm floor (x collection avg)", "mean precision",
                  "zero-lists"});
  for (double floor : {0.0, 0.5, 1.0}) {
    MethodConfig config;
    config.matcher.min_norm_fraction = floor;
    auto method =
        build_method(MethodKind::kIntentIntentMR, docs, config, nullptr);
    auto s = bench::evaluate_method(*method, corpus, docs.size());
    t.add_row({floor == 0.0 ? "off (Eq. 8 as printed)"
                            : str_format("%.1f", floor),
               str_format("%.3f", s.mean),
               str_format("%.0f%%", 100.0 * s.zero_fraction)});
  }
  std::printf("\n== Ablation D: Eq. 7/8 short-unit norm floor ==\n");
  std::printf("(Eq. 8's denominator shrinks with segment length; the floor"
              " keeps 1-3-term segments from dominating rankings.)\n\n");
  t.print(std::cout);
}

void ablation_scorer(const SyntheticCorpus& corpus,
                     const std::vector<Document>& docs) {
  TablePrinter t({"Segment comparator", "IntentIntent-MR", "FullText"});
  struct Case {
    const char* name;
    ScoringFunction fn;
  };
  for (Case c : {Case{"Eq. 9 (paper)", ScoringFunction::kPaperTfIdf},
                 Case{"Okapi BM25", ScoringFunction::kBm25},
                 Case{"Query-likelihood LM", ScoringFunction::kQueryLikelihood}}) {
    MethodConfig config;
    config.matcher.scoring.function = c.fn;
    auto intent =
        build_method(MethodKind::kIntentIntentMR, docs, config, nullptr);
    double ii = bench::evaluate_method(*intent, corpus, docs.size()).mean;
    Vocabulary vocab;
    ScoringOptions scoring;
    scoring.function = c.fn;
    FullTextMatcher ft = FullTextMatcher::build(docs, vocab, scoring);
    double ft_total = 0.0;
    size_t queries = 0;
    for (DocId q = 0; q < docs.size(); q += 2) {
      auto related = ft.find_related(q, 5);
      std::vector<DocId> ids;
      for (const ScoredDoc& sd : related) ids.push_back(sd.doc);
      int scenario = corpus.posts[q].scenario_id;
      ft_total += list_precision(ids, [&](DocId d) {
        return corpus.posts[d].scenario_id == scenario;
      });
      ++queries;
    }
    t.add_row({c.name, str_format("%.3f", ii),
               str_format("%.3f", ft_total / queries)});
  }
  std::printf("\n== Ablation E: pluggable segment comparators (Sec. 7: 'any"
              " text comparison may be employed') ==\n\n");
  t.print(std::cout);
}

}  // namespace
}  // namespace ibseg

int main() {
  ibseg::SyntheticCorpus corpus = ibseg::the_corpus();
  std::vector<ibseg::Document> docs = ibseg::analyze_corpus(corpus);
  ibseg::ablation_feature_selection(corpus, docs);
  ibseg::ablation_topn(corpus, docs);
  ibseg::ablation_grouping(corpus, docs);
  ibseg::ablation_norm_floor(corpus, docs);
  ibseg::ablation_scorer(corpus, docs);
  return 0;
}
