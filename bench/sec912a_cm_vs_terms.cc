// Reproduces paper Sec. 9.1.2.A: CM-feature representation vs term-based
// representation under the same (Hearst-style tiling) border selection
// mechanism. The paper reports the CM variant reducing multWinDiff error
// by 18% on HP Forum and 26% on TripAdvisor.

#include <cstdio>
#include <iostream>
#include <vector>

#include "bench/bench_common.h"
#include "eval/annotator_sim.h"
#include "eval/window_diff.h"
#include "seg/c99.h"
#include "seg/segmenter.h"
#include "util/strings.h"
#include "util/table_printer.h"

namespace ibseg {
namespace {

void run() {
  TablePrinter table({"Dataset", "Hearst (terms)", "C99 (terms)",
                      "Tile (CMs)", "error reduction vs Hearst"});
  for (ForumDomain domain :
       {ForumDomain::kTechSupport, ForumDomain::kTravel}) {
    size_t posts = domain == ForumDomain::kTechSupport
                       ? static_cast<size_t>(500 * bench::bench_scale())
                       : static_cast<size_t>(100 * bench::bench_scale());
    SyntheticCorpus corpus =
        generate_corpus(bench::eval_profile(domain, posts));
    std::vector<Document> docs = analyze_corpus(corpus);

    // References: 5 simulated annotators per post (the paper compares
    // against its human study segmentations).
    Rng rng(31);
    std::vector<std::vector<Segmentation>> refs(docs.size());
    for (size_t d = 0; d < docs.size(); ++d) {
      auto anns = simulate_annotators(
          docs[d], corpus.posts[d].true_segmentation,
          corpus.posts[d].segment_intents,
          static_cast<int>(corpus.profile().intentions.size()), 5,
          AnnotatorNoise{}, rng);
      for (const HumanAnnotation& a : anns) refs[d].push_back(a.segmentation);
    }

    auto avg_error = [&](const Segmenter& segmenter) {
      Vocabulary vocab;
      double total = 0.0;
      for (size_t d = 0; d < docs.size(); ++d) {
        Segmentation hyp = segmenter.segment(docs[d], vocab);
        total += mult_win_diff(refs[d], hyp);
      }
      return total / static_cast<double>(docs.size());
    };

    double terms = avg_error(Segmenter::topical());
    double cms = avg_error(Segmenter::cm_tiling());
    // C99, the second term-based comparator.
    double c99 = 0.0;
    {
      Vocabulary vocab;
      for (size_t d = 0; d < docs.size(); ++d) {
        c99 += mult_win_diff(refs[d], c99_segment(docs[d], vocab));
      }
      c99 /= static_cast<double>(docs.size());
    }
    table.add_row({bench::paper_dataset_name(domain),
                   str_format("%.3f", terms), str_format("%.3f", c99),
                   str_format("%.3f", cms),
                   str_format("%+.0f%%", 100.0 * (cms - terms) / terms)});
  }
  std::printf("== Sec. 9.1.2.A: CM features vs terms for border detection ==\n");
  std::printf("(multWinDiff vs simulated human references; lower is better."
              " Paper: 0.64 -> 0.46 on HP (-18%%) and -26%% on TripAdvisor)\n\n");
  table.print(std::cout);
}

}  // namespace
}  // namespace ibseg

int main() {
  ibseg::run();
  return 0;
}
