// Reproduces paper Table 2: inter-annotator agreement on the segmentation
// task (Fleiss' kappa and observed agreement percentage) at character-offset
// tolerances of +-10, +-25 and +-40, for the product-support and travel
// samples (500 and 100 posts, 5 simulated annotators each; the paper used
// 30 human participants — see DESIGN.md substitution table).

#include <cstdio>
#include <iostream>
#include <vector>

#include "bench/bench_common.h"
#include "eval/agreement.h"
#include "eval/annotator_sim.h"
#include "util/strings.h"
#include "util/table_printer.h"

namespace ibseg {
namespace {

struct Sample {
  ForumDomain domain;
  size_t posts;
};

void run() {
  const std::vector<Sample> samples = {
      {ForumDomain::kTechSupport,
       static_cast<size_t>(500 * bench::bench_scale())},
      {ForumDomain::kTravel, static_cast<size_t>(100 * bench::bench_scale())},
  };
  const std::vector<double> offsets = {10.0, 25.0, 40.0};
  const size_t annotators = 5;

  TablePrinter table({"Offset", "TechSupport k/agree%", "Travel k/agree%"});
  std::vector<std::vector<std::string>> cells(
      offsets.size(), std::vector<std::string>(samples.size()));
  std::vector<double> mean_segments(samples.size(), 0.0);

  for (size_t si = 0; si < samples.size(); ++si) {
    SyntheticCorpus corpus = generate_corpus(
        bench::eval_profile(samples[si].domain, samples[si].posts));
    std::vector<Document> docs = analyze_corpus(corpus);
    Rng rng(2024 + si);
    std::vector<std::vector<std::vector<double>>> per_post(docs.size());
    double seg_total = 0.0;
    size_t ann_total = 0;
    for (size_t d = 0; d < docs.size(); ++d) {
      auto anns = simulate_annotators(
          docs[d], corpus.posts[d].true_segmentation,
          corpus.posts[d].segment_intents,
          static_cast<int>(corpus.profile().intentions.size()), annotators,
          AnnotatorNoise{}, rng);
      for (const HumanAnnotation& a : anns) {
        per_post[d].push_back(a.border_chars);
        seg_total += static_cast<double>(a.segmentation.num_segments());
        ++ann_total;
      }
    }
    mean_segments[si] = seg_total / static_cast<double>(ann_total);
    for (size_t oi = 0; oi < offsets.size(); ++oi) {
      BorderAgreementAccumulator acc(offsets[oi]);
      for (const auto& post : per_post) acc.add_post(post);
      AgreementResult r = acc.result();
      cells[oi][si] =
          str_format("%.2f / %.0f%%", r.fleiss_kappa, r.observed_percent);
    }
  }
  for (size_t oi = 0; oi < offsets.size(); ++oi) {
    table.add_row({str_format("+-%d chars", static_cast<int>(offsets[oi])),
                   cells[oi][0], cells[oi][1]});
  }
  std::printf("== Table 2: user agreement on the segmentation task ==\n");
  std::printf(
      "(5 simulated annotators per post; paper: kappa 0.20-0.71 and 64%%-83%%"
      " observed agreement, both rising with the offset tolerance)\n\n");
  table.print(std::cout);
  std::printf(
      "\nMean segments per annotated post: TechSupport=%.1f Travel=%.1f"
      " (paper: 4.2 HP Forum, 5.2 TripAdvisor)\n",
      mean_segments[0], mean_segments[1]);
}

}  // namespace
}  // namespace ibseg

int main() {
  ibseg::run();
  return 0;
}
