// Reproduces paper Table 3: the distribution of per-post segment counts
// BEFORE the grouping step (raw intention segmentation) and AFTER it
// (segmentation refinement merges same-intention segments), for the three
// domains, plus the number of intention clusters found.

#include <cstdio>
#include <iostream>
#include <map>
#include <vector>

#include "bench/bench_common.h"
#include "cluster/intention_clusters.h"
#include "seg/segmenter.h"
#include "util/strings.h"
#include "util/table_printer.h"

namespace ibseg {
namespace {

void run() {
  const size_t max_bucket = 8;
  std::map<ForumDomain, std::vector<double>> before;
  std::map<ForumDomain, std::vector<double>> after;
  std::map<ForumDomain, int> clusters;

  for (ForumDomain domain : bench::all_domains()) {
    SyntheticCorpus corpus = generate_corpus(
        bench::eval_profile(domain, bench::eval_corpus_size()));
    std::vector<Document> docs = analyze_corpus(corpus);
    Segmenter segmenter = Segmenter::cm_tiling();
    Vocabulary vocab;
    std::vector<Segmentation> segs(docs.size());
    std::vector<double> b(max_bucket + 1, 0.0);
    for (size_t d = 0; d < docs.size(); ++d) {
      segs[d] = segmenter.segment(docs[d], vocab);
      size_t n = std::min(segs[d].num_segments(), max_bucket);
      ++b[n];
    }
    IntentionClustering clustering = IntentionClustering::build(docs, segs);
    clusters[domain] = clustering.num_clusters();
    std::vector<double> a(max_bucket + 1, 0.0);
    for (const auto& doc_segments : clustering.doc_segments()) {
      size_t n = std::min(doc_segments.size(), max_bucket);
      ++a[n];
    }
    double total = static_cast<double>(docs.size());
    for (double& v : b) v = 100.0 * v / total;
    for (double& v : a) v = 100.0 * v / total;
    before[domain] = b;
    after[domain] = a;
  }

  TablePrinter table({"#segments", "BEFORE Tech", "BEFORE Travel",
                      "BEFORE Prog", "AFTER Tech", "AFTER Travel",
                      "AFTER Prog"});
  for (size_t n = 1; n <= max_bucket; ++n) {
    std::vector<std::string> row;
    row.push_back(n == max_bucket ? str_format("%zu+", n)
                                  : str_format("%zu", n));
    for (auto* dist : {&before, &after}) {
      for (ForumDomain domain : bench::all_domains()) {
        double v = (*dist)[domain][n];
        row.push_back(v > 0.0 ? str_format("%.1f%%", v) : "");
      }
    }
    table.add_row(row);
  }
  std::printf("== Table 3: segment granularity before/after grouping ==\n");
  std::printf("(Paper: after grouping 30.7%%/25.1%%/53.6%% of posts remain"
              " undivided; before, granularity spans 1-8 segments)\n\n");
  table.print(std::cout);
  std::printf("\nIntention clusters found: Tech=%d Travel=%d Programming=%d"
              " (paper: 4 / 5 / 3)\n",
              clusters[ForumDomain::kTechSupport],
              clusters[ForumDomain::kTravel],
              clusters[ForumDomain::kProgramming]);
}

}  // namespace
}  // namespace ibseg

int main() {
  ibseg::run();
  return 0;
}
