// Multi-tenant fairness under mixed load: one "heavy" tenant saturating
// the server with many closed-loop clients next to one "light" tenant
// issuing the occasional query — the noisy-neighbor scenario the
// per-tenant admission cap and the deficit-round-robin dispatcher
// (docs/ARCHITECTURE.md §11) exist to contain.
//
// Two phases over the same registry-mode net::Server:
//   solo   — the light tenant runs alone; its latencies are the baseline.
//   mixed  — the heavy tenant's clients flood their namespace while the
//            light tenant repeats the solo workload unchanged.
//
// The STARVATION GATE asserts the light tenant's mixed-phase p99 stays
// within a documented multiple of its solo p99 (plus a small absolute
// slack for scheduler noise): without fair dispatch the heavy tenant's
// queue depth would be the light tenant's queue depth and the ratio
// explodes. A violation prints GATE FAILED and exits non-zero, failing
// scripts/reproduce.sh (same contract as bench/drift_over_time and
// bench/graded_eval). Results land in BENCH_tenant_fairness.json;
// reproduce.sh checks the schema. IBSEG_BENCH_SCALE scales the corpora,
// IBSEG_QPS_WINDOW_MS the measurement window.

#include <algorithm>
#include <atomic>
#include <chrono>
#include <cstdint>
#include <cstdio>
#include <cstdlib>
#include <iostream>
#include <memory>
#include <string>
#include <thread>
#include <vector>

#include "bench/bench_common.h"
#include "core/tenant_registry.h"
#include "net/client.h"
#include "net/server.h"
#include "util/rng.h"
#include "util/stopwatch.h"
#include "util/table_printer.h"

namespace ibseg {
namespace {

constexpr const char* kHeavy = "heavy";
constexpr const char* kLight = "light";
constexpr int kHeavyClients = 8;
constexpr int kLightClients = 2;
// The documented bound (docs/ARCHITECTURE.md §11): mixed-phase light p99
// may grow to the fair share's queueing delay but not to the heavy
// tenant's backlog. Calibrated against the DRR dispatcher; the absolute
// slack absorbs scheduler noise on loaded CI hosts.
constexpr double kP99Multiple = 8.0;
constexpr double kP99SlackMs = 25.0;

int window_ms() {
  const char* env = std::getenv("IBSEG_QPS_WINDOW_MS");
  if (env == nullptr) return 1200;
  int v = std::atoi(env);
  return v > 0 ? v : 1200;
}

double percentile(std::vector<double>& sorted_ms, double q) {
  if (sorted_ms.empty()) return 0.0;
  size_t idx = static_cast<size_t>(q * static_cast<double>(sorted_ms.size()));
  if (idx >= sorted_ms.size()) idx = sorted_ms.size() - 1;
  return sorted_ms[idx];
}

struct TenantRow {
  std::string tenant;
  std::string phase;
  int clients = 0;
  double qps = 0.0;
  uint64_t queries = 0;
  uint64_t errors = 0;
  double p50_ms = 0.0;
  double p95_ms = 0.0;
  double p99_ms = 0.0;
};

/// One closed-loop client: TENANT_OPEN once, then send-QUERY /
/// wait-for-RELATED until the window closes. Overload/timeout rejections
/// count as errors, not latencies — under admission control a rejected
/// request IS the latency story, and hiding it in the percentile would
/// flatter the gate.
void client_loop(uint16_t port, const std::string& tenant, size_t num_docs,
                 uint64_t seed, const std::atomic<bool>& go,
                 const std::atomic<bool>& stop, std::vector<double>* out_ms,
                 uint64_t* out_errors) {
  std::unique_ptr<net::Client> client =
      net::Client::connect("127.0.0.1", port);
  if (client == nullptr) {
    ++*out_errors;
    return;
  }
  net::TenantOpenedResponse opened;
  if (!client->tenant_open(tenant, &opened).ok()) {
    ++*out_errors;
    return;
  }
  Rng rng(seed);
  while (!go.load(std::memory_order_acquire)) std::this_thread::yield();
  while (!stop.load(std::memory_order_acquire)) {
    const DocId doc = static_cast<DocId>(rng.next_below(num_docs));
    net::RelatedResponse related;
    Stopwatch one;
    if (client->query(doc, 5, &related).ok()) {
      out_ms->push_back(one.elapsed_seconds() * 1000.0);
    } else {
      ++*out_errors;
    }
  }
}

TenantRow summarize(const std::string& tenant, const std::string& phase,
                    int clients, std::vector<std::vector<double>> latencies,
                    const std::vector<uint64_t>& errors, double elapsed_sec) {
  std::vector<double> all_ms;
  uint64_t total_errors = 0;
  for (const auto& v : latencies) {
    all_ms.insert(all_ms.end(), v.begin(), v.end());
  }
  for (uint64_t e : errors) total_errors += e;
  std::sort(all_ms.begin(), all_ms.end());
  TenantRow row;
  row.tenant = tenant;
  row.phase = phase;
  row.clients = clients;
  row.queries = all_ms.size();
  row.errors = total_errors;
  row.qps = elapsed_sec > 0.0
                ? static_cast<double>(all_ms.size()) / elapsed_sec
                : 0.0;
  row.p50_ms = percentile(all_ms, 0.50);
  row.p95_ms = percentile(all_ms, 0.95);
  row.p99_ms = percentile(all_ms, 0.99);
  return row;
}

/// Runs one phase: `spec` is (tenant, client count) pairs, all clients
/// run concurrently for the window. Returns one row per tenant.
std::vector<TenantRow> run_phase(
    uint16_t port, const std::string& phase,
    const std::vector<std::pair<std::string, int>>& spec,
    const std::vector<std::pair<std::string, size_t>>& corpus_sizes) {
  std::atomic<bool> go{false};
  std::atomic<bool> stop{false};

  struct TenantClients {
    std::string tenant;
    int clients;
    std::vector<std::vector<double>> latencies;
    std::vector<uint64_t> errors;
  };
  std::vector<TenantClients> groups;
  for (const auto& [tenant, clients] : spec) {
    TenantClients g;
    g.tenant = tenant;
    g.clients = clients;
    g.latencies.resize(static_cast<size_t>(clients));
    g.errors.resize(static_cast<size_t>(clients), 0);
    groups.push_back(std::move(g));
  }

  std::vector<std::thread> threads;
  uint64_t seed = 5000;
  for (TenantClients& g : groups) {
    size_t num_docs = 0;
    for (const auto& [tenant, size] : corpus_sizes) {
      if (tenant == g.tenant) num_docs = size;
    }
    for (int t = 0; t < g.clients; ++t) {
      threads.emplace_back(client_loop, port, g.tenant, num_docs, seed++,
                           std::cref(go), std::cref(stop),
                           &g.latencies[static_cast<size_t>(t)],
                           &g.errors[static_cast<size_t>(t)]);
    }
  }

  Stopwatch watch;
  go.store(true, std::memory_order_release);
  std::this_thread::sleep_for(
      std::chrono::milliseconds(window_ms()));
  stop.store(true, std::memory_order_release);
  for (std::thread& th : threads) th.join();
  const double elapsed = watch.elapsed_seconds();

  std::vector<TenantRow> rows;
  for (TenantClients& g : groups) {
    rows.push_back(summarize(g.tenant, phase, g.clients,
                             std::move(g.latencies), g.errors, elapsed));
  }
  return rows;
}

}  // namespace
}  // namespace ibseg

int main() {
  using namespace ibseg;
  using namespace ibseg::bench;

  // Two seeded tenants plus the implicit default; no persistence (the
  // fairness story is pure scheduling).
  const size_t corpus_size = static_cast<size_t>(160 * bench_scale());
  TenantRegistryOptions registry_options;
  registry_options.serving.num_shards = 2;
  std::unique_ptr<TenantRegistry> tenants = TenantRegistry::open(
      registry_options, {kHeavy, kLight},
      [corpus_size](const std::string& name) {
        // Distinct seeds per tenant — isolation means nothing if every
        // namespace serves the same corpus.
        uint64_t seed = name == kHeavy ? 71 : (name == kLight ? 72 : 73);
        GeneratorOptions gen =
            eval_profile(ForumDomain::kTechSupport, corpus_size);
        gen.seed = seed;
        return analyze_corpus(generate_corpus(gen));
      });
  if (tenants == nullptr) {
    std::fprintf(stderr, "tenant_fairness_qps: registry open failed\n");
    return 1;
  }

  net::ServerOptions options;
  options.port = 0;
  options.num_workers = 2;  // scarce workers — contention is the point
  options.max_in_flight = 64;
  // The fairness levers under test: a per-tenant admission cap well below
  // the global one, and DRR dispatch at the default quantum.
  options.tenant_max_in_flight = 8;
  net::Server server(tenants.get(), options);
  if (!server.start()) {
    std::fprintf(stderr, "tenant_fairness_qps: server start failed\n");
    return 1;
  }

  const std::vector<std::pair<std::string, size_t>> corpus_sizes = {
      {kHeavy, tenants->find(kHeavy)->num_docs()},
      {kLight, tenants->find(kLight)->num_docs()}};

  std::vector<TenantRow> rows =
      run_phase(server.port(), "solo", {{kLight, kLightClients}},
                corpus_sizes);
  std::vector<TenantRow> mixed = run_phase(
      server.port(), "mixed",
      {{kHeavy, kHeavyClients}, {kLight, kLightClients}}, corpus_sizes);
  rows.insert(rows.end(), mixed.begin(), mixed.end());
  server.drain();

  TablePrinter table({"tenant", "phase", "clients", "queries/sec", "p50 ms",
                      "p95 ms", "p99 ms", "errors"});
  auto fmt = [](double v, int precision) {
    char buf[64];
    std::snprintf(buf, sizeof(buf), "%.*f", precision, v);
    return std::string(buf);
  };
  for (const TenantRow& row : rows) {
    table.add_row({row.tenant, row.phase, std::to_string(row.clients),
                   fmt(row.qps, 1), fmt(row.p50_ms, 3), fmt(row.p95_ms, 3),
                   fmt(row.p99_ms, 3), std::to_string(row.errors)});
  }
  std::printf(
      "tenant_fairness_qps: closed-loop mixed-tenant load over loopback"
      " TCP (%d heavy / %d light clients, per-tenant cap %zu)\n",
      kHeavyClients, kLightClients, options.tenant_max_in_flight);
  table.print(std::cout);

  double light_solo_p99 = 0.0;
  double light_mixed_p99 = 0.0;
  uint64_t light_mixed_queries = 0;
  for (const TenantRow& row : rows) {
    if (row.tenant != kLight) continue;
    if (row.phase == "solo") light_solo_p99 = row.p99_ms;
    if (row.phase == "mixed") {
      light_mixed_p99 = row.p99_ms;
      light_mixed_queries = row.queries;
    }
  }
  const double bound_ms = kP99Multiple * light_solo_p99 + kP99SlackMs;
  const bool starved = light_mixed_queries == 0;
  const bool pass = !starved && light_mixed_p99 <= bound_ms;

  FILE* out = std::fopen("BENCH_tenant_fairness.json", "w");
  if (out != nullptr) {
    std::fprintf(out, "{\n  \"bench\": \"tenant_fairness\",\n");
    std::fprintf(out, "  \"window_ms\": %d,\n", window_ms());
    std::fprintf(out, "  \"heavy_clients\": %d,\n", kHeavyClients);
    std::fprintf(out, "  \"light_clients\": %d,\n", kLightClients);
    std::fprintf(out, "  \"tenant_max_in_flight\": %zu,\n",
                 options.tenant_max_in_flight);
    std::fprintf(out, "  \"tenants\": [\n");
    for (size_t i = 0; i < rows.size(); ++i) {
      const TenantRow& row = rows[i];
      std::fprintf(out,
                   "    {\"tenant\": \"%s\", \"phase\": \"%s\", "
                   "\"clients\": %d, \"qps\": %.1f, \"queries\": %llu, "
                   "\"errors\": %llu, \"p50_ms\": %.3f, \"p95_ms\": %.3f, "
                   "\"p99_ms\": %.3f}%s\n",
                   row.tenant.c_str(), row.phase.c_str(), row.clients,
                   row.qps, static_cast<unsigned long long>(row.queries),
                   static_cast<unsigned long long>(row.errors), row.p50_ms,
                   row.p95_ms, row.p99_ms,
                   i + 1 < rows.size() ? "," : "");
    }
    std::fprintf(out, "  ],\n");
    std::fprintf(out,
                 "  \"gate\": {\"light_solo_p99_ms\": %.3f, "
                 "\"light_mixed_p99_ms\": %.3f, \"bound_ms\": %.3f, "
                 "\"pass\": %s}\n",
                 light_solo_p99, light_mixed_p99, bound_ms,
                 pass ? "true" : "false");
    std::fprintf(out, "}\n");
    std::fclose(out);
    std::printf("wrote BENCH_tenant_fairness.json\n");
  }

  if (!pass) {
    std::fprintf(stderr,
                 "GATE FAILED: light tenant %s under mixed load (solo p99"
                 " %.3f ms, mixed p99 %.3f ms, bound %.1f x solo + %.0f ms"
                 " = %.3f ms)\n",
                 starved ? "completed zero queries" : "p99 over bound",
                 light_solo_p99, light_mixed_p99, kP99Multiple, kP99SlackMs,
                 bound_ms);
    return 1;
  }
  std::printf("GATE PASSED: light p99 %.3f ms <= %.3f ms under mixed"
              " load\n",
              light_mixed_p99, bound_ms);
  return 0;
}
