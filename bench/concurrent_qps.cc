// Concurrent serving throughput: aggregate queries/sec against the
// ServingPipeline at 1, 4 and 8 query threads while ingest writers
// continuously publish new posts — the ingest-heavy serving scenario the
// ROADMAP's "millions of users" north star implies. Queries run under the
// serving layer's shared lock; writers prepare posts lock-free and take
// the exclusive lock only to publish, so query throughput should scale
// with reader count. Note the fairness tradeoff the rows make visible:
// std::shared_mutex is reader-preferring on glibc, so under sustained
// read pressure writers starve and the corpus barely grows, while a lone
// reader leaves gaps that let writers balloon the corpus (the final-docs
// column reports the corpus size each configuration ended at).
//
// Results print as a table and are recorded in BENCH_concurrent_qps.json
// (written to the current working directory, like the reproduce.sh
// outputs). IBSEG_BENCH_SCALE scales the corpus; IBSEG_QPS_WINDOW_MS
// overrides the per-configuration measurement window.

#include <atomic>
#include <cstdint>
#include <cstdio>
#include <cstdlib>
#include <iostream>
#include <string>
#include <thread>
#include <vector>

#include "bench/bench_common.h"
#include "core/serving.h"
#include "util/rng.h"
#include "util/stopwatch.h"
#include "util/sync.h"
#include "util/table_printer.h"

namespace ibseg {
namespace {

struct QpsRow {
  size_t query_threads = 0;
  size_t ingest_threads = 0;
  double qps = 0.0;
  double ingests_per_sec = 0.0;
  uint64_t queries = 0;
  uint64_t ingests = 0;
  size_t final_docs = 0;  // corpus size at window end (growth differs per
                          // config: sustained read pressure starves writers
                          // on the reader-preferring shared_mutex)
};

std::string fmt(double v, int precision) {
  char buf[64];
  std::snprintf(buf, sizeof(buf), "%.*f", precision, v);
  return buf;
}

int window_ms() {
  const char* env = std::getenv("IBSEG_QPS_WINDOW_MS");
  if (env == nullptr) return 1500;
  int v = std::atoi(env);
  return v > 0 ? v : 1500;
}

QpsRow run_config(const SyntheticCorpus& corpus,
                  const PipelineSnapshot& snapshot, size_t query_threads,
                  size_t ingest_threads,
                  const std::vector<std::string>& ingest_texts,
                  const std::vector<Document>& externals) {
  // Each configuration serves a fresh pipeline restored from the shared
  // offline snapshot (segmentation + clustering are skipped, so per-config
  // setup is just index construction).
  ServingPipeline serving(RelatedPostPipeline::build_from_snapshot(
      analyze_corpus(corpus), snapshot, {}));
  const size_t num_docs = serving.seed_docs();

  std::atomic<bool> stop{false};
  std::atomic<uint64_t> queries{0};
  std::atomic<uint64_t> ingests{0};
  CyclicBarrier barrier(query_threads + ingest_threads + 1);

  ScopedThreads threads;
  for (size_t w = 0; w < ingest_threads; ++w) {
    threads.spawn([&, w] {
      barrier.arrive_and_wait();
      size_t i = 0;
      while (!stop.load(std::memory_order_relaxed)) {
        // Cycle through the ingest pool; ids stay fresh automatically.
        serving.add_post(ingest_texts[(w + i++) % ingest_texts.size()]);
        ingests.fetch_add(1, std::memory_order_relaxed);
      }
    });
  }
  for (size_t t = 0; t < query_threads; ++t) {
    threads.spawn([&, t] {
      barrier.arrive_and_wait();
      Rng rng(10 + t);
      while (!stop.load(std::memory_order_relaxed)) {
        if (rng.next_bool(0.25)) {
          serving.find_related_external(
              externals[rng.next_below(externals.size())], 5);
        } else {
          serving.find_related(
              static_cast<DocId>(rng.next_below(num_docs)), 5);
        }
        queries.fetch_add(1, std::memory_order_relaxed);
      }
    });
  }

  barrier.arrive_and_wait();  // release the whole fleet at once
  Stopwatch watch;
  std::this_thread::sleep_for(std::chrono::milliseconds(window_ms()));
  stop.store(true, std::memory_order_relaxed);
  threads.join_all();
  double elapsed = watch.elapsed_seconds();

  QpsRow row;
  row.query_threads = query_threads;
  row.ingest_threads = ingest_threads;
  row.queries = queries.load();
  row.ingests = ingests.load();
  row.qps = static_cast<double>(row.queries) / elapsed;
  row.ingests_per_sec = static_cast<double>(row.ingests) / elapsed;
  row.final_docs = serving.num_docs();
  return row;
}

}  // namespace
}  // namespace ibseg

int main() {
  using namespace ibseg;
  using namespace ibseg::bench;

  const size_t corpus_size =
      static_cast<size_t>(240 * bench_scale());
  GeneratorOptions gen = eval_profile(ForumDomain::kTechSupport, corpus_size);
  SyntheticCorpus corpus = generate_corpus(gen);

  // One shared offline build; per-config pipelines restore from its
  // snapshot so every configuration serves identical state.
  PipelineOptions build_options;
  RelatedPostPipeline offline =
      RelatedPostPipeline::build(analyze_corpus(corpus), build_options);
  PipelineSnapshot snapshot = offline.snapshot();

  GeneratorOptions ingest_gen =
      eval_profile(ForumDomain::kTechSupport, 64, /*seed=*/555);
  SyntheticCorpus ingest_corpus = generate_corpus(ingest_gen);
  std::vector<std::string> ingest_texts;
  for (const auto& post : ingest_corpus.posts) {
    ingest_texts.push_back(post.text);
  }
  std::vector<Document> externals;
  for (size_t i = 0; i < 16; ++i) {
    externals.push_back(Document::analyze(
        static_cast<DocId>((1u << 30) + i),
        ingest_corpus.posts[i % ingest_corpus.posts.size()].text));
  }

  // Ingest-heavy serving mix: two continuous writers against 1/4/8 query
  // threads (the paper's forums see a constant influx of new posts).
  const size_t kIngestThreads = 2;
  std::vector<QpsRow> rows;
  for (size_t query_threads : {1u, 4u, 8u}) {
    rows.push_back(run_config(corpus, snapshot, query_threads,
                              kIngestThreads, ingest_texts, externals));
  }

  TablePrinter table({"query threads", "ingest threads", "queries/sec",
                      "ingests/sec", "final docs", "speedup vs 1"});
  for (const QpsRow& row : rows) {
    double speedup = rows[0].qps > 0.0 ? row.qps / rows[0].qps : 0.0;
    table.add_row({std::to_string(row.query_threads),
                   std::to_string(row.ingest_threads), fmt(row.qps, 1),
                   fmt(row.ingests_per_sec, 1),
                   std::to_string(row.final_docs), fmt(speedup, 2)});
  }
  std::printf("concurrent_qps: serving throughput under continuous ingest\n");
  table.print(std::cout);

  FILE* out = std::fopen("BENCH_concurrent_qps.json", "w");
  if (out != nullptr) {
    std::fprintf(out, "{\n  \"bench\": \"concurrent_qps\",\n");
    std::fprintf(out, "  \"corpus_posts\": %zu,\n", corpus_size);
    std::fprintf(out, "  \"window_ms\": %d,\n", window_ms());
    std::fprintf(out, "  \"hardware_threads\": %u,\n",
                 std::thread::hardware_concurrency());
    std::fprintf(out, "  \"configs\": [\n");
    for (size_t i = 0; i < rows.size(); ++i) {
      const QpsRow& row = rows[i];
      std::fprintf(out,
                   "    {\"query_threads\": %zu, \"ingest_threads\": %zu, "
                   "\"qps\": %.1f, \"ingests_per_sec\": %.1f, "
                   "\"queries\": %llu, \"ingests\": %llu, "
                   "\"final_docs\": %zu}%s\n",
                   row.query_threads, row.ingest_threads, row.qps,
                   row.ingests_per_sec,
                   static_cast<unsigned long long>(row.queries),
                   static_cast<unsigned long long>(row.ingests),
                   row.final_docs, i + 1 < rows.size() ? "," : "");
    }
    std::fprintf(out, "  ]\n}\n");
    std::fclose(out);
    std::printf("wrote BENCH_concurrent_qps.json\n");
  }
  return 0;
}
