// Observability overhead: proves the metrics layer is cheap enough to
// leave on in production. Runs the concurrent_qps serving scenario (4
// query threads + 2 continuous ingest writers over a snapshot-restored
// pipeline) in interleaved windows with timing instrumentation enabled
// (obs::set_enabled(true)) and disabled, and reports the median-QPS
// delta. The target is <2% regression — TraceScope costs two steady-clock
// reads plus a short bucket scan and three relaxed atomic RMWs per
// sample, against queries that cost tens of microseconds to milliseconds.
//
// What "disabled" means: set_enabled(false) turns every TraceScope into a
// no-op (no clock reads, no histogram writes). Raw counter increments
// (queries_total etc.) stay on in both modes — a relaxed fetch_add costs
// about as much as checking the flag would, so gating them would not make
// the disabled mode measurably faster.
//
// Windows run in an ABBA order (off-on-on-off, repeated) so linear drift
// (thermal, page cache) cancels instead of biasing one mode; medians
// rather than means drop scheduler outliers. Results are written to
// BENCH_obs_overhead.json. IBSEG_BENCH_SCALE scales the corpus;
// IBSEG_OBS_WINDOW_MS overrides the per-window measurement time.

#include <algorithm>
#include <atomic>
#include <cstdint>
#include <cstdio>
#include <cstdlib>
#include <iostream>
#include <string>
#include <thread>
#include <vector>

#include "bench/bench_common.h"
#include "core/serving.h"
#include "obs/trace.h"
#include "util/rng.h"
#include "util/stopwatch.h"
#include "util/sync.h"
#include "util/table_printer.h"

namespace ibseg {
namespace {

constexpr size_t kQueryThreads = 4;
constexpr size_t kIngestThreads = 2;

std::string fmt(double v, int precision) {
  char buf[64];
  std::snprintf(buf, sizeof(buf), "%.*f", precision, v);
  return buf;
}

int window_ms() {
  const char* env = std::getenv("IBSEG_OBS_WINDOW_MS");
  if (env == nullptr) return 600;
  int v = std::atoi(env);
  return v > 0 ? v : 600;
}

struct WindowResult {
  bool metrics_on = false;
  double qps = 0.0;
  double ingests_per_sec = 0.0;
};

WindowResult run_window(const SyntheticCorpus& corpus,
                        const PipelineSnapshot& snapshot, bool metrics_on,
                        const std::vector<std::string>& ingest_texts,
                        const std::vector<Document>& externals) {
  // A fresh snapshot-restored pipeline per window keeps corpus growth from
  // earlier windows out of this one's query costs.
  obs::set_enabled(metrics_on);
  ServingPipeline serving(RelatedPostPipeline::build_from_snapshot(
      analyze_corpus(corpus), snapshot, {}));
  const size_t num_docs = serving.seed_docs();

  std::atomic<bool> stop{false};
  std::atomic<uint64_t> queries{0};
  std::atomic<uint64_t> ingests{0};
  CyclicBarrier barrier(kQueryThreads + kIngestThreads + 1);

  ScopedThreads threads;
  for (size_t w = 0; w < kIngestThreads; ++w) {
    threads.spawn([&, w] {
      barrier.arrive_and_wait();
      size_t i = 0;
      while (!stop.load(std::memory_order_relaxed)) {
        serving.add_post(ingest_texts[(w + i++) % ingest_texts.size()]);
        ingests.fetch_add(1, std::memory_order_relaxed);
      }
    });
  }
  for (size_t t = 0; t < kQueryThreads; ++t) {
    threads.spawn([&, t] {
      barrier.arrive_and_wait();
      Rng rng(10 + t);
      while (!stop.load(std::memory_order_relaxed)) {
        if (rng.next_bool(0.25)) {
          serving.find_related_external(
              externals[rng.next_below(externals.size())], 5);
        } else {
          serving.find_related(static_cast<DocId>(rng.next_below(num_docs)),
                               5);
        }
        queries.fetch_add(1, std::memory_order_relaxed);
      }
    });
  }

  barrier.arrive_and_wait();
  Stopwatch watch;
  std::this_thread::sleep_for(std::chrono::milliseconds(window_ms()));
  stop.store(true, std::memory_order_relaxed);
  threads.join_all();
  double elapsed = watch.elapsed_seconds();
  obs::set_enabled(true);  // leave the process in the default state

  WindowResult r;
  r.metrics_on = metrics_on;
  r.qps = static_cast<double>(queries.load()) / elapsed;
  r.ingests_per_sec = static_cast<double>(ingests.load()) / elapsed;
  return r;
}

double median(std::vector<double> values) {
  std::sort(values.begin(), values.end());
  size_t n = values.size();
  if (n == 0) return 0.0;
  return n % 2 == 1 ? values[n / 2]
                    : 0.5 * (values[n / 2 - 1] + values[n / 2]);
}

}  // namespace
}  // namespace ibseg

int main() {
  using namespace ibseg;
  using namespace ibseg::bench;

  const size_t corpus_size = static_cast<size_t>(200 * bench_scale());
  GeneratorOptions gen = eval_profile(ForumDomain::kTechSupport, corpus_size);
  SyntheticCorpus corpus = generate_corpus(gen);

  RelatedPostPipeline offline =
      RelatedPostPipeline::build(analyze_corpus(corpus), {});
  PipelineSnapshot snapshot = offline.snapshot();

  GeneratorOptions ingest_gen =
      eval_profile(ForumDomain::kTechSupport, 64, /*seed=*/555);
  SyntheticCorpus ingest_corpus = generate_corpus(ingest_gen);
  std::vector<std::string> ingest_texts;
  for (const auto& post : ingest_corpus.posts) {
    ingest_texts.push_back(post.text);
  }
  std::vector<Document> externals;
  for (size_t i = 0; i < 16; ++i) {
    externals.push_back(Document::analyze(
        static_cast<DocId>((1u << 30) + i),
        ingest_corpus.posts[i % ingest_corpus.posts.size()].text));
  }

  // ABBA ordering: any drift that is monotone over the run contributes
  // equally to both modes.
  const bool kSchedule[] = {false, true, true, false, false, true, true, false};
  std::vector<WindowResult> windows;
  for (bool metrics_on : kSchedule) {
    windows.push_back(
        run_window(corpus, snapshot, metrics_on, ingest_texts, externals));
  }

  std::vector<double> qps_off, qps_on;
  for (const WindowResult& w : windows) {
    (w.metrics_on ? qps_on : qps_off).push_back(w.qps);
  }
  double med_off = median(qps_off);
  double med_on = median(qps_on);
  double overhead_pct =
      med_off > 0.0 ? (med_off - med_on) / med_off * 100.0 : 0.0;

  TablePrinter table({"window", "metrics", "queries/sec", "ingests/sec"});
  for (size_t i = 0; i < windows.size(); ++i) {
    table.add_row({std::to_string(i + 1),
                   windows[i].metrics_on ? "on" : "off",
                   fmt(windows[i].qps, 1), fmt(windows[i].ingests_per_sec, 1)});
  }
  std::printf(
      "obs_overhead: serving QPS with timing instrumentation on vs off\n");
  table.print(std::cout);
  std::printf("median QPS off=%.1f on=%.1f -> overhead %.2f%% (target <2%%)\n",
              med_off, med_on, overhead_pct);

  FILE* out = std::fopen("BENCH_obs_overhead.json", "w");
  if (out != nullptr) {
    std::fprintf(out, "{\n  \"bench\": \"obs_overhead\",\n");
    std::fprintf(out, "  \"corpus_posts\": %zu,\n", corpus_size);
    std::fprintf(out, "  \"window_ms\": %d,\n", window_ms());
    std::fprintf(out, "  \"query_threads\": %zu,\n", kQueryThreads);
    std::fprintf(out, "  \"ingest_threads\": %zu,\n", kIngestThreads);
    std::fprintf(out, "  \"hardware_threads\": %u,\n",
                 std::thread::hardware_concurrency());
    std::fprintf(out, "  \"windows\": [\n");
    for (size_t i = 0; i < windows.size(); ++i) {
      std::fprintf(out,
                   "    {\"metrics\": \"%s\", \"qps\": %.1f, "
                   "\"ingests_per_sec\": %.1f}%s\n",
                   windows[i].metrics_on ? "on" : "off", windows[i].qps,
                   windows[i].ingests_per_sec,
                   i + 1 < windows.size() ? "," : "");
    }
    std::fprintf(out, "  ],\n");
    std::fprintf(out, "  \"median_qps_disabled\": %.1f,\n", med_off);
    std::fprintf(out, "  \"median_qps_enabled\": %.1f,\n", med_on);
    std::fprintf(out, "  \"overhead_pct\": %.2f,\n", overhead_pct);
    std::fprintf(out, "  \"target_pct\": 2.0,\n");
    std::fprintf(out, "  \"within_target\": %s\n",
                 overhead_pct < 2.0 ? "true" : "false");
    std::fprintf(out, "}\n");
    std::fclose(out);
    std::printf("wrote BENCH_obs_overhead.json\n");
  }
  return 0;
}
