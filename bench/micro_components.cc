// google-benchmark microbenchmarks for the per-component costs behind the
// paper's timing discussion (Sec. 9.2.4): document analysis (tokenize +
// POS + CM annotation), each border selection strategy, DBSCAN grouping,
// index construction and top-k retrieval.

#include <benchmark/benchmark.h>

#include "bench/bench_common.h"
#include "cluster/intention_clusters.h"
#include "index/fulltext_matcher.h"
#include "index/intention_matcher.h"
#include "seg/segmenter.h"

namespace ibseg {
namespace {

const SyntheticCorpus& corpus() {
  static const SyntheticCorpus* kCorpus =
      new SyntheticCorpus(generate_corpus(
          bench::eval_profile(ForumDomain::kTechSupport, 400)));
  return *kCorpus;
}

const std::vector<Document>& docs() {
  static const std::vector<Document>* kDocs =
      new std::vector<Document>(analyze_corpus(corpus()));
  return *kDocs;
}

void BM_DocumentAnalyze(benchmark::State& state) {
  const std::string& text = corpus().posts[0].text;
  for (auto _ : state) {
    Document d = Document::analyze(0, text);
    benchmark::DoNotOptimize(d.num_units());
  }
}
BENCHMARK(BM_DocumentAnalyze);

void BM_Segment(benchmark::State& state, Segmenter segmenter) {
  Vocabulary vocab;
  size_t i = 0;
  for (auto _ : state) {
    const Document& d = docs()[i++ % docs().size()];
    Segmentation s = segmenter.segment(d, vocab);
    benchmark::DoNotOptimize(s.borders.size());
  }
}
BENCHMARK_CAPTURE(BM_Segment, greedy,
                  Segmenter::intention(BorderStrategyKind::kGreedy));
BENCHMARK_CAPTURE(BM_Segment, tile,
                  Segmenter::intention(BorderStrategyKind::kTile));
BENCHMARK_CAPTURE(BM_Segment, stepbystep,
                  Segmenter::intention(BorderStrategyKind::kStepByStep));
BENCHMARK_CAPTURE(BM_Segment, cm_tiling, Segmenter::cm_tiling());
BENCHMARK_CAPTURE(BM_Segment, texttiling, Segmenter::topical());

void BM_Grouping(benchmark::State& state) {
  Segmenter segmenter = Segmenter::cm_tiling();
  Vocabulary vocab;
  std::vector<Segmentation> segs(docs().size());
  for (size_t d = 0; d < docs().size(); ++d) {
    segs[d] = segmenter.segment(docs()[d], vocab);
  }
  for (auto _ : state) {
    IntentionClustering c = IntentionClustering::build(docs(), segs);
    benchmark::DoNotOptimize(c.num_clusters());
  }
}
BENCHMARK(BM_Grouping);

void BM_IndexBuildAndQuery(benchmark::State& state) {
  Segmenter segmenter = Segmenter::cm_tiling();
  Vocabulary scratch;
  std::vector<Segmentation> segs(docs().size());
  for (size_t d = 0; d < docs().size(); ++d) {
    segs[d] = segmenter.segment(docs()[d], scratch);
  }
  IntentionClustering clustering = IntentionClustering::build(docs(), segs);
  Vocabulary vocab;
  IntentionMatcher matcher =
      IntentionMatcher::build(docs(), clustering, vocab);
  DocId q = 0;
  for (auto _ : state) {
    auto r = matcher.find_related(q++ % docs().size(), 5);
    benchmark::DoNotOptimize(r.size());
  }
}
BENCHMARK(BM_IndexBuildAndQuery);

void BM_FullTextQuery(benchmark::State& state) {
  Vocabulary vocab;
  FullTextMatcher matcher = FullTextMatcher::build(docs(), vocab);
  DocId q = 0;
  for (auto _ : state) {
    auto r = matcher.find_related(q++ % docs().size(), 5);
    benchmark::DoNotOptimize(r.size());
  }
}
BENCHMARK(BM_FullTextQuery);

}  // namespace
}  // namespace ibseg

BENCHMARK_MAIN();
